"""Modular arithmetic: the RSA/DH engine and the timing side channel.

Section 3.4 explains that "computations performed in some of the
cryptographic algorithms often take different amounts of time on
different inputs" (Kocher's timing attack, paper ref. [47]).  The
canonical source of that leak is the conditional final subtraction in
Montgomery modular multiplication.  This module implements:

* :class:`MontgomeryContext` — Montgomery multiplication with the
  data-dependent *extra reduction*, metered by an
  :class:`OperationTimer` so the attack observes realistic timing;
* :func:`modexp_sqm` — leaky left-to-right square-and-multiply, the
  implementation a naive handset would ship;
* :func:`modexp_ladder` — a Montgomery-ladder exponentiation whose
  operation sequence is independent of the exponent bits (the
  constant-time countermeasure of §3.4);
* :func:`invmod`, :func:`egcd`, :func:`crt_combine` — the number
  theory RSA-CRT needs (and that the Bellcore fault attack abuses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..observability import probe
from .errors import ParameterError


@dataclass
class OperationTimer:
    """Accumulates simulated time for modular operations.

    Costs are expressed in abstract "cycles".  A plain Montgomery
    multiplication costs :attr:`mul_cost`; when the conditional final
    subtraction fires, :attr:`extra_reduction_cost` is added — this is
    the data-dependent component the timing attack measures.  Optional
    jitter models measurement noise.
    """

    mul_cost: int = 100
    extra_reduction_cost: int = 7
    total: int = 0
    extra_reductions: int = 0
    per_operation: List[int] = field(default_factory=list)

    def charge(self, extra_reduction: bool) -> None:
        """Charge one modular multiplication."""
        cost = self.mul_cost + (self.extra_reduction_cost if extra_reduction else 0)
        self.total += cost
        if extra_reduction:
            self.extra_reductions += 1
        self.per_operation.append(cost)

    def reset(self) -> None:
        """Zero all counters."""
        self.total = 0
        self.extra_reductions = 0
        self.per_operation.clear()


def egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended Euclid: returns (g, x, y) with a*x + b*y = g = gcd(a, b)."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def invmod(a: int, m: int) -> int:
    """Modular inverse of ``a`` mod ``m``; raises if not invertible."""
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ParameterError(f"{a} is not invertible modulo {m}")
    return x % m


def crt_combine(residues: List[int], moduli: List[int]) -> int:
    """Chinese Remainder Theorem for pairwise-coprime moduli."""
    if len(residues) != len(moduli):
        raise ValueError("residue/modulus count mismatch")
    total_modulus = 1
    for m in moduli:
        total_modulus *= m
    result = 0
    for residue, modulus in zip(residues, moduli):
        partial = total_modulus // modulus
        result += residue * partial * invmod(partial, modulus)
    return result % total_modulus


class MontgomeryContext:
    """Montgomery multiplication modulo an odd modulus.

    The context precomputes ``R = 2**k > n`` and ``n' = -n^{-1} mod R``.
    :meth:`mul` performs REDC with the classic conditional final
    subtraction; when a timer is attached the subtraction's occurrence
    is charged, making total execution time a function of the data —
    the physical basis of the timing attack in
    :mod:`repro.attacks.timing`.
    """

    def __init__(self, modulus: int, timer: Optional[OperationTimer] = None) -> None:
        if modulus % 2 == 0 or modulus < 3:
            raise ParameterError("Montgomery modulus must be odd and >= 3")
        self.n = modulus
        self.k = modulus.bit_length()
        self.r = 1 << self.k
        self.r_mask = self.r - 1
        self.n_prime = (-invmod(modulus, self.r)) % self.r
        self.r2 = (self.r * self.r) % modulus
        self.timer = timer

    def to_mont(self, x: int) -> int:
        """Map ``x`` into Montgomery representation ``x*R mod n``."""
        return self.mul(x % self.n, self.r2)

    def from_mont(self, x_mont: int) -> int:
        """Map back out of Montgomery representation."""
        return self.mul(x_mont, 1)

    def mul(self, a: int, b: int) -> int:
        """Montgomery product ``a*b*R^{-1} mod n`` with REDC."""
        t = a * b
        m = (t * self.n_prime) & self.r_mask
        u = (t + m * self.n) >> self.k
        extra = u >= self.n
        if extra:
            u -= self.n
        if self.timer is not None:
            self.timer.charge(extra)
        return u


def modexp_sqm(base: int, exponent: int, modulus: int,
               timer: Optional[OperationTimer] = None) -> int:
    """Left-to-right square-and-multiply via Montgomery multiplication.

    This is the *leaky* exponentiation: a multiply only happens for
    exponent bits equal to 1, and each Montgomery operation's time
    depends on whether the final subtraction fired.  Both effects are
    visible to an attacker holding ``timer.total`` across many inputs.
    """
    if modulus == 1:
        return 0
    ctx = MontgomeryContext(modulus, timer)
    acc = ctx.to_mont(1)
    base_m = ctx.to_mont(base)
    for shift in range(exponent.bit_length() - 1, -1, -1):
        acc = ctx.mul(acc, acc)
        if (exponent >> shift) & 1:
            acc = ctx.mul(acc, base_m)
    return ctx.from_mont(acc)


def modexp_ladder(base: int, exponent: int, modulus: int,
                  timer: Optional[OperationTimer] = None) -> int:
    """Montgomery-ladder exponentiation: fixed operation sequence.

    Every exponent bit costs exactly one squaring and one multiply
    regardless of its value, so the *sequence* of operations leaks
    nothing.  (The REDC extra-reduction still fires data-dependently;
    combine with blinding — :mod:`repro.attacks.countermeasures` — for
    full protection, as the paper's layered-defence view suggests.)
    """
    if modulus == 1:
        return 0
    ctx = MontgomeryContext(modulus, timer)
    r0 = ctx.to_mont(1)
    r1 = ctx.to_mont(base)
    for shift in range(exponent.bit_length() - 1, -1, -1):
        if (exponent >> shift) & 1:
            r0 = ctx.mul(r0, r1)
            r1 = ctx.mul(r1, r1)
        else:
            r1 = ctx.mul(r0, r1)
            r0 = ctx.mul(r0, r0)
    return ctx.from_mont(r0)


def modexp(base: int, exponent: int, modulus: int) -> int:
    """Fast un-instrumented modular exponentiation (CPython ``pow``).

    Used wherever side-channel realism is not needed (tests,
    protocol-functional paths), keeping the simulation responsive.
    With telemetry active, each call becomes a ``modexp`` span charged
    with the §3.2 square-and-multiply cycle model.
    """
    telemetry = probe.active
    if telemetry is None:              # hot path: one read, one branch
        return pow(base, exponent, modulus)
    # Lazy import: attribution pulls in repro.hardware, which imports
    # back into repro.crypto — resolvable at call time, not load time.
    from ..observability.attribution import modexp_cycles
    with telemetry.span("modexp", bits=modulus.bit_length()):
        telemetry.add_cycles(
            modexp_cycles(exponent, modulus.bit_length()), kind="modexp")
        return pow(base, exponent, modulus)
