"""Bit- and byte-level helpers shared by the cipher implementations.

The paper (Section 4.2.1) singles out bit-level permutations, rotates,
and sub-word operations as the expensive inner loops of symmetric
ciphers on word-oriented processors — precisely the operations that
SmartMIPS/SecurCore-style ISA extensions accelerate.  This module
collects reference implementations of those operations; the hardware
cost models in :mod:`repro.hardware.cycles` charge them differently
depending on whether the modelled processor has the extensions.
"""

from __future__ import annotations

from hmac import compare_digest
from typing import Iterable, List, Sequence

from . import fastpath

MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF


def rotl32(value: int, amount: int) -> int:
    """Rotate a 32-bit word left by ``amount`` bits."""
    amount %= 32
    value &= MASK32
    return ((value << amount) | (value >> (32 - amount))) & MASK32 if amount else value


def rotr32(value: int, amount: int) -> int:
    """Rotate a 32-bit word right by ``amount`` bits."""
    return rotl32(value, (32 - amount) % 32)


def rotl16(value: int, amount: int) -> int:
    """Rotate a 16-bit word left by ``amount`` bits (RC2 uses these)."""
    amount %= 16
    value &= 0xFFFF
    return ((value << amount) | (value >> (16 - amount))) & 0xFFFF if amount else value


def rotr16(value: int, amount: int) -> int:
    """Rotate a 16-bit word right by ``amount`` bits."""
    return rotl16(value, (16 - amount) % 16)


def bytes_to_int(data: bytes) -> int:
    """Interpret ``data`` as a big-endian unsigned integer."""
    return int.from_bytes(data, "big")


def int_to_bytes(value: int, length: int) -> bytes:
    """Encode ``value`` big-endian into exactly ``length`` bytes."""
    return value.to_bytes(length, "big")


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings.

    Runs as one big-int XOR rather than a per-byte loop — CPython's
    word-at-a-time arbitrary-precision XOR is the closest software
    analogue to the wide datapath Section 4.2.1 argues for.
    """
    length = len(a)
    if length != len(b):
        raise ValueError(f"xor_bytes: length mismatch ({length} vs {len(b)})")
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(
        length, "big"
    )


def permute_bits(block: int, table: Sequence[int], in_width: int) -> int:
    """Apply a DES-style bit permutation.

    ``table`` lists, for each *output* bit (MSB first), the 1-indexed
    position of the *input* bit (MSB first) that supplies it, exactly as
    FIPS 46-3 prints its permutation tables.  The output width equals
    ``len(table)``.

    This is the canonical "expensive on word-oriented CPUs" operation
    from Section 4.2.1 of the paper.
    """
    out = 0
    for position in table:
        out = (out << 1) | ((block >> (in_width - position)) & 1)
    return out


def hamming_weight(value: int) -> int:
    """Number of set bits — the side-channel leakage model's observable.

    The power-analysis simulator (:mod:`repro.attacks.power`) assumes
    instantaneous power consumption proportional to the Hamming weight
    of the data being manipulated, the standard CMOS leakage model
    behind Kocher's DPA (paper reference [44]).
    """
    return bin(value).count("1")


def hamming_distance(a: int, b: int) -> int:
    """Number of differing bits between two words."""
    return hamming_weight(a ^ b)


def bytes_hamming_weight(data: bytes) -> int:
    """Total Hamming weight of a byte string."""
    return sum(bin(byte).count("1") for byte in data)


def split_blocks(data: bytes, block_size: int) -> List[bytes]:
    """Split ``data`` into consecutive ``block_size``-byte blocks.

    Raises :class:`ValueError` if the data is not block-aligned;
    callers that accept ragged tails should pad first.
    """
    if len(data) % block_size:
        raise ValueError(
            f"data length {len(data)} not a multiple of block size {block_size}"
        )
    return [data[i : i + block_size] for i in range(0, len(data), block_size)]


def iter_bits_msb(value: int, width: int) -> Iterable[int]:
    """Yield the bits of ``value`` most-significant first."""
    for shift in range(width - 1, -1, -1):
        yield (value >> shift) & 1


def constant_time_compare(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without data-dependent early exit.

    The timing-attack countermeasure (Section 3.4 / paper ref. [47]):
    a naive ``==`` short-circuits at the first mismatch, leaking the
    length of the matching prefix through execution time.  Like
    :func:`xor_bytes`, the comparison runs as one wide big-int XOR —
    every limb is combined before the zero test, so there is no
    per-byte branch to leak through (and the record layers verify one
    MAC per record on their hot path, so the width matters).  On the
    fast dispatch path this delegates to :func:`hmac.compare_digest`
    (the same reference-loop-plus-stdlib-delegate split as
    :func:`repro.crypto.crc.crc32`).
    """
    if fastpath.enabled():
        return compare_digest(a, b)
    if len(a) != len(b):
        return False
    return not int.from_bytes(a, "big") ^ int.from_bytes(b, "big")
