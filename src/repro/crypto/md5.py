"""MD5 (RFC 1321) implemented from scratch.

MD5 is the second MAC hash named by Section 3.1's SSL flexibility
example ("SHA-1 or MD5") and appears throughout the WTLS/SSL suite
matrix.  Kept for interoperability with the paper's 2003-era protocol
landscape — the registry marks it legacy.
"""

from __future__ import annotations

import math
import struct

from . import fastpath

DIGEST_SIZE = 16
BLOCK_SIZE = 64

_WORDS = struct.Struct("<16I")

_S = (
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
)

# Constants derived per RFC 1321: K[i] = floor(2^32 * |sin(i + 1)|).
_K = tuple(int(abs(math.sin(i + 1)) * 2 ** 32) & 0xFFFFFFFF for i in range(64))

_H0 = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)


def _compress(state: tuple, block: bytes) -> tuple:
    # Hot loop: the four RFC 1321 stages are unrolled, the rotate is
    # inlined against a local mask, and K/S are bound to locals.
    mask = 0xFFFFFFFF
    m = _WORDS.unpack(block)
    k = _K
    s = _S
    a, b, c, d = state
    for i in range(0, 16):
        f = (((b & c) | (~b & d)) + a + k[i] + m[i]) & mask
        r = s[i]
        a, d, c = d, c, b
        b = (b + (((f << r) | (f >> (32 - r))) & mask)) & mask
    for i in range(16, 32):
        f = (((d & b) | (~d & c)) + a + k[i] + m[(5 * i + 1) % 16]) & mask
        r = s[i]
        a, d, c = d, c, b
        b = (b + (((f << r) | (f >> (32 - r))) & mask)) & mask
    for i in range(32, 48):
        f = ((b ^ c ^ d) + a + k[i] + m[(3 * i + 5) % 16]) & mask
        r = s[i]
        a, d, c = d, c, b
        b = (b + (((f << r) | (f >> (32 - r))) & mask)) & mask
    for i in range(48, 64):
        f = ((c ^ (b | (~d & mask))) + a + k[i] + m[(7 * i) % 16]) & mask
        r = s[i]
        a, d, c = d, c, b
        b = (b + (((f << r) | (f >> (32 - r))) & mask)) & mask
    return (
        (state[0] + a) & mask,
        (state[1] + b) & mask,
        (state[2] + c) & mask,
        (state[3] + d) & mask,
    )


class MD5:
    """Incremental MD5 with the hashlib-style update/digest interface.

    Like :class:`~repro.crypto.sha1.SHA1`, instances are backed by the
    platform's optimised MD5 when the fast path is enabled (and the
    build permits MD5 at all); the reference compression function
    above remains the ground truth.
    """

    name = "MD5"
    digest_size = DIGEST_SIZE
    block_size = BLOCK_SIZE

    def __init__(self, data: bytes = b"") -> None:
        self._impl = fastpath.hashlib_md5() if fastpath.enabled() else None
        self._state = _H0
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> "MD5":
        """Absorb more message bytes; returns self for chaining."""
        if self._impl is not None:
            self._impl.update(data)
            return self
        self._length += len(data)
        self._buffer += data
        while len(self._buffer) >= BLOCK_SIZE:
            self._state = _compress(self._state, self._buffer[:BLOCK_SIZE])
            self._buffer = self._buffer[BLOCK_SIZE:]
        return self

    def digest(self) -> bytes:
        """Return the 16-byte digest without disturbing internal state."""
        if self._impl is not None:
            return self._impl.digest()
        state, buffer = self._state, self._buffer
        bit_length = (self._length * 8) & 0xFFFFFFFFFFFFFFFF
        padding = b"\x80" + b"\x00" * ((55 - self._length) % 64)
        tail = buffer + padding + bit_length.to_bytes(8, "little")
        for offset in range(0, len(tail), BLOCK_SIZE):
            state = _compress(state, tail[offset : offset + BLOCK_SIZE])
        return b"".join(word.to_bytes(4, "little") for word in state)

    def hexdigest(self) -> str:
        """Digest as lowercase hex."""
        return self.digest().hex()

    def copy(self) -> "MD5":
        """Independent copy of the running hash state."""
        clone = object.__new__(MD5)
        clone._impl = self._impl.copy() if self._impl is not None else None
        clone._state = self._state
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


def md5(data: bytes) -> bytes:
    """One-shot MD5 digest."""
    return MD5(data).digest()
