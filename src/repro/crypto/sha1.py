"""SHA-1 (FIPS 180-1) implemented from scratch.

SHA-1 is the message-authentication hash in the paper's 651.3-MIPS
workload (Section 3.2: "3DES for encryption/decryption and SHA for
message authentication at 10 Mbps") and one of the two MAC hashes an
SSL cipher suite must offer (Section 3.1).  The implementation follows
the FIPS 180-1 80-round compression function and supports incremental
hashing so the record layers can MAC streaming data.
"""

from __future__ import annotations

from .bitops import rotl32

DIGEST_SIZE = 20
BLOCK_SIZE = 64

_H0 = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)


def _compress(state: tuple, block: bytes) -> tuple:
    w = [int.from_bytes(block[4 * i : 4 * i + 4], "big") for i in range(16)]
    for i in range(16, 80):
        w.append(rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1))
    a, b, c, d, e = state
    for i in range(80):
        if i < 20:
            f = (b & c) | ((~b) & d)
            k = 0x5A827999
        elif i < 40:
            f = b ^ c ^ d
            k = 0x6ED9EBA1
        elif i < 60:
            f = (b & c) | (b & d) | (c & d)
            k = 0x8F1BBCDC
        else:
            f = b ^ c ^ d
            k = 0xCA62C1D6
        temp = (rotl32(a, 5) + f + e + k + w[i]) & 0xFFFFFFFF
        e, d, c, b, a = d, c, rotl32(b, 30), a, temp
    return (
        (state[0] + a) & 0xFFFFFFFF,
        (state[1] + b) & 0xFFFFFFFF,
        (state[2] + c) & 0xFFFFFFFF,
        (state[3] + d) & 0xFFFFFFFF,
        (state[4] + e) & 0xFFFFFFFF,
    )


class SHA1:
    """Incremental SHA-1 with the hashlib-style update/digest interface."""

    name = "SHA1"
    digest_size = DIGEST_SIZE
    block_size = BLOCK_SIZE

    def __init__(self, data: bytes = b"") -> None:
        self._state = _H0
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> "SHA1":
        """Absorb more message bytes; returns self for chaining."""
        self._length += len(data)
        self._buffer += data
        while len(self._buffer) >= BLOCK_SIZE:
            self._state = _compress(self._state, self._buffer[:BLOCK_SIZE])
            self._buffer = self._buffer[BLOCK_SIZE:]
        return self

    def digest(self) -> bytes:
        """Return the 20-byte digest without disturbing internal state."""
        state, buffer = self._state, self._buffer
        bit_length = self._length * 8
        padding = b"\x80" + b"\x00" * ((55 - self._length) % 64)
        tail = buffer + padding + bit_length.to_bytes(8, "big")
        for offset in range(0, len(tail), BLOCK_SIZE):
            state = _compress(state, tail[offset : offset + BLOCK_SIZE])
        return b"".join(word.to_bytes(4, "big") for word in state)

    def hexdigest(self) -> str:
        """Digest as lowercase hex."""
        return self.digest().hex()

    def copy(self) -> "SHA1":
        """Independent copy of the running hash state."""
        clone = SHA1()
        clone._state = self._state
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


def sha1(data: bytes) -> bytes:
    """One-shot SHA-1 digest."""
    return SHA1(data).digest()
