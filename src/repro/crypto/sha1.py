"""SHA-1 (FIPS 180-1) implemented from scratch.

SHA-1 is the message-authentication hash in the paper's 651.3-MIPS
workload (Section 3.2: "3DES for encryption/decryption and SHA for
message authentication at 10 Mbps") and one of the two MAC hashes an
SSL cipher suite must offer (Section 3.1).  The implementation follows
the FIPS 180-1 80-round compression function and supports incremental
hashing so the record layers can MAC streaming data.
"""

from __future__ import annotations

import struct

from . import fastpath

DIGEST_SIZE = 20
BLOCK_SIZE = 64

_H0 = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)

_WORDS = struct.Struct(">16I")


def _compress(state: tuple, block: bytes) -> tuple:
    # Hot loop: rotates are inlined against a local mask and the four
    # FIPS 180-1 stages are unrolled so the per-round stage test goes away.
    mask = 0xFFFFFFFF
    w = list(_WORDS.unpack(block))
    append = w.append
    for i in range(16, 80):
        x = w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]
        append(((x << 1) | (x >> 31)) & mask)
    a, b, c, d, e = state
    for i in range(0, 20):
        t = ((((a << 5) | (a >> 27)) & mask)
             + ((b & c) | (~b & d)) + e + 0x5A827999 + w[i]) & mask
        a, b, c, d, e = t, a, ((b << 30) | (b >> 2)) & mask, c, d
    for i in range(20, 40):
        t = ((((a << 5) | (a >> 27)) & mask)
             + (b ^ c ^ d) + e + 0x6ED9EBA1 + w[i]) & mask
        a, b, c, d, e = t, a, ((b << 30) | (b >> 2)) & mask, c, d
    for i in range(40, 60):
        t = ((((a << 5) | (a >> 27)) & mask)
             + ((b & c) | (b & d) | (c & d)) + e + 0x8F1BBCDC + w[i]) & mask
        a, b, c, d, e = t, a, ((b << 30) | (b >> 2)) & mask, c, d
    for i in range(60, 80):
        t = ((((a << 5) | (a >> 27)) & mask)
             + (b ^ c ^ d) + e + 0xCA62C1D6 + w[i]) & mask
        a, b, c, d, e = t, a, ((b << 30) | (b >> 2)) & mask, c, d
    return (
        (state[0] + a) & mask,
        (state[1] + b) & mask,
        (state[2] + c) & mask,
        (state[3] + d) & mask,
        (state[4] + e) & mask,
    )


class SHA1:
    """Incremental SHA-1 with the hashlib-style update/digest interface.

    When the fast path is enabled (see :mod:`repro.crypto.fastpath`)
    the instance is backed by the platform's optimised SHA-1; the
    from-scratch compression function above stays the reference, and
    the differential tests pin the two bit-for-bit.  The backend is
    chosen at construction time, so objects remain consistent across
    switch toggles.
    """

    name = "SHA1"
    digest_size = DIGEST_SIZE
    block_size = BLOCK_SIZE

    def __init__(self, data: bytes = b"") -> None:
        self._impl = fastpath.hashlib_sha1() if fastpath.enabled() else None
        self._state = _H0
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> "SHA1":
        """Absorb more message bytes; returns self for chaining."""
        if self._impl is not None:
            self._impl.update(data)
            return self
        self._length += len(data)
        self._buffer += data
        while len(self._buffer) >= BLOCK_SIZE:
            self._state = _compress(self._state, self._buffer[:BLOCK_SIZE])
            self._buffer = self._buffer[BLOCK_SIZE:]
        return self

    def digest(self) -> bytes:
        """Return the 20-byte digest without disturbing internal state."""
        if self._impl is not None:
            return self._impl.digest()
        state, buffer = self._state, self._buffer
        bit_length = self._length * 8
        padding = b"\x80" + b"\x00" * ((55 - self._length) % 64)
        tail = buffer + padding + bit_length.to_bytes(8, "big")
        for offset in range(0, len(tail), BLOCK_SIZE):
            state = _compress(state, tail[offset : offset + BLOCK_SIZE])
        return b"".join(word.to_bytes(4, "big") for word in state)

    def hexdigest(self) -> str:
        """Digest as lowercase hex."""
        return self.digest().hex()

    def copy(self) -> "SHA1":
        """Independent copy of the running hash state."""
        clone = object.__new__(SHA1)
        clone._impl = self._impl.copy() if self._impl is not None else None
        clone._state = self._state
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


def sha1(data: bytes) -> bytes:
    """One-shot SHA-1 digest."""
    return SHA1(data).digest()
