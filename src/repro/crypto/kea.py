"""KEA — the Key Exchange Algorithm (§3.1's RSA alternative).

"For key exchange, cryptographic algorithms such as RSA and KEA are
possible choices."  KEA (declassified by NSA in 1998, of Fortezza/
Skipjack lineage) is a *dual* Diffie–Hellman: each party contributes a
**static** key pair (certified, giving authentication) and an
**ephemeral** pair (fresh, giving key freshness), and the shared
secret combines both mixed pairings::

    t1 = peer_ephemeral ^ own_static
    t2 = peer_static    ^ own_ephemeral
    w  = (t1 + t2) mod p     ->  KDF

Compared with plain ephemeral DH (no authentication without extra
signatures) and plain static DH (no freshness), KEA gets both from two
exponentiations — which is exactly why a constrained handset's suite
matrix carried it.  Degenerate public values are rejected on both
pairings, as in :mod:`repro.crypto.dh`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .dh import DHGroup
from .errors import ParameterError
from .modmath import modexp
from .rng import DeterministicDRBG
from .sha1 import sha1


@dataclass
class KEAKeyPair:
    """A (private, public) pair in the group."""

    private: int
    public: int

    @classmethod
    def generate(cls, group: DHGroup, rng: DeterministicDRBG) -> "KEAKeyPair":
        """Fresh key pair."""
        private = rng.randrange(2, group.p - 2)
        return cls(private=private, public=modexp(group.g, private, group.p))


class KEAParty:
    """One side of a KEA exchange.

    The static pair persists (it would be bound into the party's
    certificate); a fresh ephemeral pair is made per exchange via
    :meth:`new_exchange`.
    """

    def __init__(self, group: DHGroup, rng: DeterministicDRBG) -> None:
        self.group = group
        self._rng = rng
        self.static = KEAKeyPair.generate(group, rng)
        self.ephemeral = KEAKeyPair.generate(group, rng)

    def new_exchange(self) -> int:
        """Refresh the ephemeral pair; returns the new public value."""
        self.ephemeral = KEAKeyPair.generate(self.group, self._rng)
        return self.ephemeral.public

    def _check(self, value: int, label: str) -> None:
        if value in (0, 1, self.group.p - 1) or not 0 < value < self.group.p:
            raise ParameterError(f"peer {label} public value is degenerate")

    def shared_secret(self, peer_static_public: int,
                      peer_ephemeral_public: int) -> int:
        """The combined KEA secret w = t1 + t2 mod p."""
        self._check(peer_static_public, "static")
        self._check(peer_ephemeral_public, "ephemeral")
        t1 = modexp(peer_ephemeral_public, self.static.private, self.group.p)
        t2 = modexp(peer_static_public, self.ephemeral.private, self.group.p)
        w = (t1 + t2) % self.group.p
        if w == 0:
            raise ParameterError("KEA combined secret degenerated to zero")
        return w

    def shared_key(self, peer_static_public: int,
                   peer_ephemeral_public: int, length: int = 16) -> bytes:
        """Derive key bytes from the combined secret."""
        secret = self.shared_secret(peer_static_public,
                                    peer_ephemeral_public)
        raw = secret.to_bytes((self.group.p.bit_length() + 7) // 8, "big")
        out = b""
        counter = 0
        while len(out) < length:
            out += sha1(b"KEA" + raw + counter.to_bytes(4, "big"))
            counter += 1
        return out[:length]
