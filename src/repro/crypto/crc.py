"""CRC-32 (IEEE 802.3 polynomial) — WEP's integrity check value.

WEP protects frame integrity with a plain CRC-32 "ICV" encrypted under
RC4.  Because CRC-32 is linear over GF(2), an attacker can flip
plaintext bits and patch the ICV without knowing the key — one of the
WEP breaks the paper cites ([21]-[23]).  We implement CRC-32 from
scratch so :mod:`repro.attacks.wep_attacks` can demonstrate exactly
that forgery against our own WEP stack.
"""

from __future__ import annotations

import zlib
from typing import List

from . import fastpath

_POLY = 0xEDB88320


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY
            else:
                crc >>= 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32(data: bytes, initial: int = 0) -> int:
    """Compute the IEEE CRC-32 of ``data``.

    Matches :func:`zlib.crc32` (same polynomial, reflection, and final
    XOR) so the implementation can be cross-checked, but is built from
    first principles because WEP's weakness lives in the algorithm's
    linear structure, not in any library binding.  On the fast path the
    whole-message computation is delegated to :func:`zlib.crc32` (same
    pattern as the hashlib SHA-1/MD5 delegation): the table loop below
    stays the instrumentable ground truth, and the differential tests
    pin the two bit-for-bit.  The reliable transport checksums every
    frame, so this is a record-plane hot spot.
    """
    if fastpath.enabled():
        return zlib.crc32(data, initial)
    crc = initial ^ 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def crc32_bytes(data: bytes) -> bytes:
    """CRC-32 of ``data``, little-endian encoded as WEP transmits it."""
    return crc32(data).to_bytes(4, "little")


def crc32_combine_xor(crc_a: int, crc_b: int, crc_zero: int) -> int:
    """Exploit CRC linearity: ``crc(a ^ b) == crc(a) ^ crc(b) ^ crc(0...)``.

    For equal-length messages ``a``, ``b`` and ``crc_zero`` the CRC of
    the all-zero message of that length.  This identity is the engine of
    the WEP bit-flipping forgery.
    """
    return crc_a ^ crc_b ^ crc_zero
