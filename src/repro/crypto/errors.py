"""Exception hierarchy for the cryptographic substrate.

Every failure mode in :mod:`repro.crypto` raises a subclass of
:class:`CryptoError` so callers (protocol stacks, the secure execution
environment) can distinguish cryptographic failures from programming
errors and react per the paper's threat model (Section 3.4).
"""

from __future__ import annotations


class CryptoError(Exception):
    """Base class for all cryptographic errors."""


class KeyError_(CryptoError):
    """A key has the wrong length, parity, or structure.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`KeyError`.
    """


class InvalidKeyLength(KeyError_):
    """A key's byte length is not accepted by the algorithm."""

    def __init__(self, algorithm: str, got: int, expected: str) -> None:
        super().__init__(
            f"{algorithm}: key length {got} bytes invalid (expected {expected})"
        )
        self.algorithm = algorithm
        self.got = got
        self.expected = expected


class InvalidBlockSize(CryptoError):
    """Input is not a whole number of cipher blocks."""

    def __init__(self, algorithm: str, got: int, block_size: int) -> None:
        super().__init__(
            f"{algorithm}: input length {got} is not a multiple of the "
            f"{block_size}-byte block size"
        )
        self.algorithm = algorithm
        self.got = got
        self.block_size = block_size


class PaddingError(CryptoError):
    """Padding bytes are malformed after decryption."""


class SignatureError(CryptoError):
    """A digital signature failed verification."""


class IntegrityError(CryptoError):
    """A MAC or checksum failed verification."""


class DecryptionError(CryptoError):
    """Decryption failed structurally (e.g. RSA payload out of range)."""


class ParameterError(CryptoError):
    """A public parameter (modulus, generator, IV) is invalid."""


class RandomnessError(CryptoError):
    """The randomness source could not satisfy a request."""
