"""A5/1-class LFSR stream cipher — the GSM legacy suite's engine.

Pourghasem et al. ("Light Weight Implementation of Stream Ciphers for
M-Commerce", PAPERS.md) motivate LFSR-class designs as the cheapest
point on the energy/throughput curve for handset bulk protection; A5/1
is *the* deployed example of the class, shipping in every GSM handset
of the paper's era.  This module implements the standard three-register
majority-clocked generator (19/22/23-bit registers, as published by
Briceno, Goldberg and Wagner's pedagogical implementation) in two
forms:

* the GSM frame discipline — :meth:`A51.burst` yields the authentic
  228-bit dual burst (114 bits A→B, 114 bits B→A) for a (key, frame)
  pair, pinned against the published pedagogical test vector in the
  conformance corpus; and
* a continuous record-layer keystream — after the same key/frame/mix
  schedule the generator simply keeps majority-clocking, so the first
  114 bits of the continuous stream equal the A→B burst and the suite
  can protect arbitrary-length records.

The 11-byte suite key blob is ``key[8] || frame_tag[3]``: the record
layers never pass stream ciphers an IV, so the per-record WTLS rekey
(``key XOR sequence``) lands in the trailing frame-tag bytes — exactly
GSM's frame-number re-keying, recreated by the suite plumbing.

Keystream bits leave the generator MSB-first within each byte (the
convention of the published vector).  Both dispatch paths produce
bytes whole-byte-at-a-time from the same register representation, so
:meth:`save_state` snapshots are byte-identical across paths.
"""

from __future__ import annotations

from typing import Tuple

from . import fastpath
from .errors import InvalidKeyLength

# Register widths/masks and feedback taps, MSB = output bit.
_R1_MASK = 0x07FFFF            # 19 bits
_R2_MASK = 0x3FFFFF            # 22 bits
_R3_MASK = 0x7FFFFF            # 23 bits
_R1_TAPS = 0x072000            # bits 18, 17, 16, 13
_R2_TAPS = 0x300000            # bits 21, 20
_R3_TAPS = 0x700080            # bits 22, 21, 20, 7
_R1_CLOCK = 0x000100           # clocking bit 8
_R2_CLOCK = 0x000400           # clocking bit 10
_R3_CLOCK = 0x000400           # clocking bit 10
_R1_OUT = 18
_R2_OUT = 21
_R3_OUT = 22

_FRAME_MASK = 0x3FFFFF         # GSM frame numbers are 22 bits


def _parity(word: int) -> int:
    """Parity of the set bits — the LFSR feedback function."""
    return bin(word).count("1") & 1


class A51:
    """A5/1 keystream generator with the RC4-compatible interface.

    The key blob is either 8 bytes (key alone, frame tag 0) or the
    suite's 11 bytes (``key || frame_tag``, frame tag big-endian,
    truncated to 22 bits).  One instance per direction per key, as
    with :class:`~repro.crypto.rc4.RC4`.
    """

    name = "A51"
    block_size = 1
    key_size = 11

    def __init__(self, key: bytes) -> None:
        key = bytes(key)
        if len(key) == 8:
            frame = 0
        elif len(key) == 11:
            frame = int.from_bytes(key[8:], "big") & _FRAME_MASK
            key = key[:8]
        else:
            raise InvalidKeyLength("A51", len(key), "8 or 11")
        self.recorder = None
        self._r1, self._r2, self._r3 = self._schedule(key, frame)

    # -- key/frame schedule -------------------------------------------------

    @staticmethod
    def _clock_all(r1: int, r2: int, r3: int) -> Tuple[int, int, int]:
        """Clock every register (key/frame loading ignores majority)."""
        r1 = ((r1 << 1) & _R1_MASK) | _parity(r1 & _R1_TAPS)
        r2 = ((r2 << 1) & _R2_MASK) | _parity(r2 & _R2_TAPS)
        r3 = ((r3 << 1) & _R3_MASK) | _parity(r3 & _R3_TAPS)
        return r1, r2, r3

    @staticmethod
    def _clock_majority(r1: int, r2: int, r3: int) -> Tuple[int, int, int]:
        """Clock the registers agreeing with the majority clocking bit."""
        c1 = r1 & _R1_CLOCK
        c2 = r2 & _R2_CLOCK
        c3 = r3 & _R3_CLOCK
        majority1 = bool(c1) + bool(c2) + bool(c3) >= 2
        if bool(c1) == majority1:
            r1 = ((r1 << 1) & _R1_MASK) | _parity(r1 & _R1_TAPS)
        if bool(c2) == majority1:
            r2 = ((r2 << 1) & _R2_MASK) | _parity(r2 & _R2_TAPS)
        if bool(c3) == majority1:
            r3 = ((r3 << 1) & _R3_MASK) | _parity(r3 & _R3_TAPS)
        return r1, r2, r3

    @classmethod
    def _schedule(cls, key: bytes, frame: int) -> Tuple[int, int, int]:
        """64 key clocks + 22 frame clocks (all-clocked, bit XORed into
        the LSB after the shift, bits taken LSB-first per byte) + 100
        majority-clocked mixing rounds — the published A5/1 schedule."""
        r1 = r2 = r3 = 0
        for i in range(64):
            r1, r2, r3 = cls._clock_all(r1, r2, r3)
            bit = (key[i >> 3] >> (i & 7)) & 1
            r1 ^= bit
            r2 ^= bit
            r3 ^= bit
        for i in range(22):
            r1, r2, r3 = cls._clock_all(r1, r2, r3)
            bit = (frame >> i) & 1
            r1 ^= bit
            r2 ^= bit
            r3 ^= bit
        for _ in range(100):
            r1, r2, r3 = cls._clock_majority(r1, r2, r3)
        return r1, r2, r3

    # -- continuous keystream ----------------------------------------------

    def keystream(self, length: int) -> bytes:
        """Produce the next ``length`` keystream bytes (8 majority
        clocks per byte, output bits MSB-first)."""
        if self.recorder is None and fastpath.enabled():
            return self._keystream_fast(length)
        out = bytearray()
        r1, r2, r3 = self._r1, self._r2, self._r3
        for _ in range(length):
            byte = 0
            for _ in range(8):
                r1, r2, r3 = self._clock_majority(r1, r2, r3)
                bit = ((r1 >> _R1_OUT) ^ (r2 >> _R2_OUT) ^ (r3 >> _R3_OUT)) & 1
                byte = (byte << 1) | bit
            out.append(byte)
        self._r1, self._r2, self._r3 = r1, r2, r3
        return bytes(out)

    def _keystream_fast(self, length: int) -> bytes:
        """The same clock loop with everything hoisted into locals and
        the tap parities taken with :meth:`int.bit_count`."""
        out = bytearray()
        r1, r2, r3 = self._r1, self._r2, self._r3
        for _ in range(length):
            byte = 0
            for _ in range(8):
                c1 = r1 & _R1_CLOCK
                c2 = r2 & _R2_CLOCK
                c3 = r3 & _R3_CLOCK
                majority = bool(c1) + bool(c2) + bool(c3) >= 2
                if bool(c1) == majority:
                    r1 = ((r1 << 1) & _R1_MASK) | ((r1 & _R1_TAPS).bit_count() & 1)
                if bool(c2) == majority:
                    r2 = ((r2 << 1) & _R2_MASK) | ((r2 & _R2_TAPS).bit_count() & 1)
                if bool(c3) == majority:
                    r3 = ((r3 << 1) & _R3_MASK) | ((r3 & _R3_TAPS).bit_count() & 1)
                byte = (byte << 1) | (
                    ((r1 >> _R1_OUT) ^ (r2 >> _R2_OUT) ^ (r3 >> _R3_OUT)) & 1
                )
            out.append(byte)
        self._r1, self._r2, self._r3 = r1, r2, r3
        return bytes(out)

    def process(self, data) -> bytes:
        """Encrypt or decrypt ``data`` (XOR with keystream)."""
        data = bytes(data)
        if not data:
            return b""
        stream = self.keystream(len(data))
        return (
            int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
        ).to_bytes(len(data), "big")

    # -- transactional state -----------------------------------------------

    def save_state(self):
        """Snapshot the register triple; the record decoder rewinds to
        it when a tampered record must not consume keystream."""
        return self._r1, self._r2, self._r3

    def restore_state(self, snapshot) -> None:
        """Rewind to a :meth:`save_state` snapshot."""
        self._r1, self._r2, self._r3 = snapshot

    # -- the authentic GSM frame discipline ---------------------------------

    @classmethod
    def burst(cls, key: bytes, frame: int) -> Tuple[bytes, bytes]:
        """The 228-bit GSM dual burst for one (key, frame) pair.

        Returns ``(a_to_b, b_to_a)``: two 114-bit bursts packed
        MSB-first into 15 bytes each (the last byte zero-padded) —
        the exact shape of the published pedagogical test vector.
        """
        if len(key) != 8:
            raise InvalidKeyLength("A51", len(key), "8")
        r1, r2, r3 = cls._schedule(key, frame & _FRAME_MASK)
        bits = []
        for _ in range(228):
            r1, r2, r3 = cls._clock_majority(r1, r2, r3)
            bits.append(((r1 >> _R1_OUT) ^ (r2 >> _R2_OUT) ^ (r3 >> _R3_OUT)) & 1)

        def pack(chunk):
            out = bytearray(15)
            for i, bit in enumerate(chunk):
                out[i >> 3] |= bit << (7 - (i & 7))
            return bytes(out)

        return pack(bits[:114]), pack(bits[114:])
