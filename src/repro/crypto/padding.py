"""Block-cipher padding schemes used by the protocol stacks.

PKCS#7 is used by the mini-TLS/WTLS record layers; zero padding by the
IPSec-style ESP trailer (which carries an explicit pad-length byte).
Padding validation failures raise :class:`~repro.crypto.errors.PaddingError`
so record layers can convert them into protocol alerts.
"""

from __future__ import annotations

from .errors import PaddingError


def pkcs7_pad(data: bytes, block_size: int) -> bytes:
    """Append PKCS#7 padding up to a multiple of ``block_size``.

    Always adds at least one byte, so the operation is unambiguous and
    invertible for any input.
    """
    if not 1 <= block_size <= 255:
        raise ValueError(f"block size {block_size} out of PKCS#7 range 1..255")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_size:
        raise PaddingError("padded data empty or not block-aligned")
    pad_len = data[-1]
    if not 1 <= pad_len <= block_size:
        raise PaddingError(f"pad length byte {pad_len} out of range")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise PaddingError("pad bytes inconsistent")
    return data[:-pad_len]


def esp_pad(data: bytes, block_size: int) -> bytes:
    """ESP-style monotonic pad ``01 02 03 ...`` plus a pad-length byte.

    RFC 2406 pads the payload with the monotone sequence and appends the
    pad-length count; our IPSec substrate follows the same layout (the
    next-header byte is handled by the ESP packet format itself).
    """
    pad_len = (block_size - (len(data) + 1) % block_size) % block_size
    padding = bytes(range(1, pad_len + 1))
    return data + padding + bytes([pad_len])


def esp_unpad(data: bytes) -> bytes:
    """Strip and validate an ESP-style trailer."""
    if not data:
        raise PaddingError("ESP payload empty")
    pad_len = data[-1]
    if pad_len + 1 > len(data):
        raise PaddingError(f"ESP pad length {pad_len} exceeds payload")
    body, padding = data[: -(pad_len + 1)], data[-(pad_len + 1) : -1]
    if padding != bytes(range(1, pad_len + 1)):
        raise PaddingError("ESP pad bytes not monotone sequence")
    return body
