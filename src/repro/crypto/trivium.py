"""Trivium — the eSTREAM hardware-profile stream cipher.

The second of the lightweight designs Pourghasem et al. (PAPERS.md)
motivate for m-commerce bulk protection: De Cannière and Preneel's
288-bit shift-register cascade, chosen for the eSTREAM hardware
portfolio precisely because its gate count and energy per bit are a
fraction of a block cipher's.

Implementation shape
--------------------

The 288-bit state lives in three Python ints — A (s1..s93),
B (s94..s177), C (s178..s288) — in *reflected* layout: spec bit
``s_x`` sits at int bit ``(93 - x)`` / ``(177 - x)`` / ``(288 - x)``,
so the spec's "shift everything toward higher indices" is a plain
``>> 1`` with the new bit inserted at the top.  That layout is what
makes the fast path work: 64 consecutive spec steps read windows of
original state bits (every tap index clears the 64-step validity
bound), so one batched step computes 64 keystream bits with a handful
of shifts, ANDs and XORs — the software expression of the unrolled
hardware Trivium would be.

Both dispatch paths advance the state in whole 64-bit (8-byte) chunks
and buffer leftover bytes, so :meth:`save_state` snapshots are
byte-identical whichever path produced them.

Conventions (documented because the KAT corpus freezes them): key and
IV bits load LSB-first within each byte (``K1`` is bit 0 of
``key[0]``), and keystream bits pack LSB-first within each output
byte (``z1`` is bit 0 of byte 0) — the eSTREAM C-reference style.
The suite key blob is ``key[10] || iv[10]``.
"""

from __future__ import annotations

from typing import Tuple

from . import fastpath
from .errors import InvalidKeyLength

_M64 = (1 << 64) - 1
_A_BITS = 93
_B_BITS = 84
_C_BITS = 111
_INIT_STEPS = 4 * 288


def _load_reflected(data: bytes, width: int) -> int:
    """Bits of ``data`` LSB-first as spec bits 1.., reflected so spec
    bit x lands at int bit (width - x)."""
    word = 0
    for x in range(8 * len(data)):
        bit = (data[x >> 3] >> (x & 7)) & 1
        word |= bit << (width - 1 - x)
    return word


class Trivium:
    """Trivium keystream generator with the RC4-compatible interface.

    The key blob is either 10 bytes (key alone, zero IV) or the
    suite's 20 bytes (``key || iv``).
    """

    name = "TRIVIUM"
    block_size = 1
    key_size = 20

    def __init__(self, key: bytes) -> None:
        key = bytes(key)
        if len(key) == 10:
            iv = b"\x00" * 10
        elif len(key) == 20:
            key, iv = key[:10], key[10:]
        else:
            raise InvalidKeyLength("TRIVIUM", len(key), "10 or 20")
        self.recorder = None
        # (s1..s93) = (K1..K80, 0^13); (s94..s177) = (IV1..IV80, 0^4);
        # (s178..s288) = (0^108, 1, 1, 1).
        self._a = _load_reflected(key, _A_BITS)
        self._b = _load_reflected(iv, _B_BITS)
        self._c = 0b111
        self._buffer = b""
        self._warm_up()

    # -- the cascade --------------------------------------------------------

    def _step_one(self) -> int:
        """One spec step; returns the keystream bit z."""
        a, b, c = self._a, self._b, self._c
        s = lambda reg, width, x: (reg >> (width - x)) & 1  # noqa: E731
        t1 = s(a, _A_BITS, 66) ^ s(a, _A_BITS, 93)
        t2 = s(b, _B_BITS, 162 - 93) ^ s(b, _B_BITS, 177 - 93)
        t3 = s(c, _C_BITS, 243 - 177) ^ s(c, _C_BITS, 288 - 177)
        z = t1 ^ t2 ^ t3
        t1 ^= (s(a, _A_BITS, 91) & s(a, _A_BITS, 92)) ^ s(b, _B_BITS, 171 - 93)
        t2 ^= (s(b, _B_BITS, 175 - 93) & s(b, _B_BITS, 176 - 93)) ^ s(
            c, _C_BITS, 264 - 177)
        t3 ^= (s(c, _C_BITS, 286 - 177) & s(c, _C_BITS, 287 - 177)) ^ s(
            a, _A_BITS, 69)
        self._a = (a >> 1) | (t3 << (_A_BITS - 1))
        self._b = (b >> 1) | (t1 << (_B_BITS - 1))
        self._c = (c >> 1) | (t2 << (_C_BITS - 1))
        return z

    def _step_64(self) -> int:
        """64 spec steps in one batch; returns the 64 keystream bits,
        step i at bit i.  Window shifts are ``register_width - x`` for
        each spec tap ``s_x``; all taps satisfy the 64-step validity
        bound (x >= 64 / 157 / 241), so every window reads pre-batch
        state bits only."""
        a, b, c = self._a, self._b, self._c
        t1 = ((a >> 27) ^ a) & _M64                      # s66 ^ s93
        t2 = ((b >> 15) ^ b) & _M64                      # s162 ^ s177
        t3 = ((c >> 45) ^ c) & _M64                      # s243 ^ s288
        z = t1 ^ t2 ^ t3
        f1 = t1 ^ (((a >> 2) & (a >> 1)) ^ (b >> 6)) & _M64   # + s91·s92 + s171
        f2 = t2 ^ (((b >> 2) & (b >> 1)) ^ (c >> 24)) & _M64  # + s175·s176 + s264
        f3 = t3 ^ (((c >> 2) & (c >> 1)) ^ (a >> 24)) & _M64  # + s286·s287 + s69
        self._a = (a >> 64) | ((f3 & _M64) << (_A_BITS - 64))
        self._b = (b >> 64) | ((f1 & _M64) << (_B_BITS - 64))
        self._c = (c >> 64) | ((f2 & _M64) << (_C_BITS - 64))
        return z

    def _warm_up(self) -> None:
        """The 4 x 288 initialisation steps, output discarded."""
        if self.recorder is None and fastpath.enabled():
            for _ in range(_INIT_STEPS // 64):
                self._step_64()
        else:
            for _ in range(_INIT_STEPS):
                self._step_one()

    def _chunk(self) -> bytes:
        """The next 8 keystream bytes (64 steps on either path)."""
        if self.recorder is None and fastpath.enabled():
            z = self._step_64()
        else:
            z = 0
            for i in range(64):
                z |= self._step_one() << i
        return z.to_bytes(8, "little")

    # -- the RC4-compatible surface -----------------------------------------

    def keystream(self, length: int) -> bytes:
        """Produce the next ``length`` keystream bytes."""
        buffered = self._buffer
        while len(buffered) < length:
            buffered += self._chunk()
        self._buffer = buffered[length:]
        return buffered[:length]

    def process(self, data) -> bytes:
        """Encrypt or decrypt ``data`` (XOR with keystream)."""
        data = bytes(data)
        if not data:
            return b""
        stream = self.keystream(len(data))
        return (
            int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
        ).to_bytes(len(data), "big")

    def save_state(self):
        """Snapshot (registers, leftover chunk bytes) for the record
        decoder's tamper rollback."""
        return self._a, self._b, self._c, self._buffer

    def restore_state(self, snapshot) -> None:
        """Rewind to a :meth:`save_state` snapshot."""
        self._a, self._b, self._c, self._buffer = snapshot
