"""RC4 stream cipher — the cipher inside WEP and many SSL suites.

Section 3.1 lists RC4 among the symmetric ciphers an SSL client must
support; Section 2's WEP discussion (paper refs. [21]-[23]) hinges on
RC4's keystream being reused when WEP's 24-bit IV wraps.  This module
provides the raw keystream generator; the WEP stack composes it with
the per-frame ``IV || key`` seeding whose weakness the attacks exploit.
"""

from __future__ import annotations

from typing import Iterator

from .errors import InvalidKeyLength


class RC4:
    """RC4 with the standard KSA/PRGA.

    The instance is a stateful keystream generator: calling
    :meth:`process` repeatedly continues the keystream, as a streaming
    transport would.  Use one instance per direction per key.
    """

    name = "RC4"
    block_size = 1
    key_size = 16

    def __init__(self, key: bytes) -> None:
        if not 1 <= len(key) <= 256:
            raise InvalidKeyLength("RC4", len(key), "1..256")
        state = list(range(256))
        j = 0
        for i in range(256):
            j = (j + state[i] + key[i % len(key)]) & 0xFF
            state[i], state[j] = state[j], state[i]
        self._state = state
        self._i = 0
        self._j = 0

    def keystream(self, length: int) -> bytes:
        """Produce the next ``length`` keystream bytes."""
        out = bytearray()
        state, i, j = self._state, self._i, self._j
        for _ in range(length):
            i = (i + 1) & 0xFF
            j = (j + state[i]) & 0xFF
            state[i], state[j] = state[j], state[i]
            out.append(state[(state[i] + state[j]) & 0xFF])
        self._i, self._j = i, j
        return bytes(out)

    def process(self, data: bytes) -> bytes:
        """Encrypt or decrypt ``data`` (XOR with keystream)."""
        stream = self.keystream(len(data))
        return bytes(d ^ s for d, s in zip(data, stream))

    def save_state(self):
        """Snapshot the keystream position (state permutation, i, j).

        The record decoder takes a snapshot before opening a record so
        a failed MAC can :meth:`restore_state` — a tampered record must
        not consume keystream, or every later genuine record would
        decrypt against the wrong stream position."""
        return self._state.copy(), self._i, self._j

    def restore_state(self, snapshot) -> None:
        """Rewind to a :meth:`save_state` snapshot."""
        state, i, j = snapshot
        self._state = state.copy()
        self._i = i
        self._j = j

    def __iter__(self) -> Iterator[int]:
        while True:
            yield self.keystream(1)[0]
