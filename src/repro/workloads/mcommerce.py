"""The m-commerce workload plane (§2): seeded handset traffic over
the sharded gateway fleet, with the lightweight suite family doing the
bulk work.

The paper's motivating scenario is a handset buying something: "a
secure transaction needs to be executed within a reasonable amount of
time, without exhausting the battery".  This module makes that
scenario a replayable experiment:

* **handset battery classes** — coin-cell, standard, extended — each
  with its own capacity and cipher-suite *policy* (coin cells insist
  on the lightweight stream family, extended packs can afford legacy
  block suites), negotiated per session through the real handshake;
* **session mixes** — browse / authenticate / purchase — where
  purchases run the full SET dual-signature flow
  (:mod:`repro.protocols.payment`) before the order ever crosses the
  airlink;
* **heavy-tailed arrivals** — Pareto inter-arrival gaps and lognormal
  payload sizes, both drawn by inverse-CDF / Box–Muller from the
  :class:`~repro.crypto.rng.DeterministicDRBG`, so two same-seed runs
  are byte-identical (the CI ``cmp`` gate);
* **an exact energy ledger** — radio energy is charged by the gateway
  runtime per airlink crossing, cipher/MAC compute energy is charged
  here per transaction from the §3 instruction-per-byte model
  (:data:`~repro.hardware.cycles.BULK_IPB`), purchases additionally
  pay the RSA dual signature; every drain reconciles through
  :func:`~repro.observability.attribution.reconcile_energy`.

The deliverable downstream (:mod:`repro.analysis.mcommerce`) is
millijoules *per transaction, per suite, per battery class* — the
paper's Table-1 style comparison, measured instead of asserted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..crypto.rng import DeterministicDRBG
from ..fleet.runtime import (
    ORIGIN_NAME,
    FleetConfig,
    FleetStats,
    ShardedFleet,
)
from ..hardware.battery import Battery, BatteryEmpty
from ..hardware.energy import EnergyModel
from ..observability import probe
from ..observability.attribution import EnergyReconciliation, reconcile_energy
from ..observability.metrics import export_fleet
from ..observability.scenario import classify_reply
from ..observability.spans import Telemetry
from ..protocols.ciphersuites import (
    ALL_SUITES,
    RSA_WITH_3DES_SHA,
    RSA_WITH_A51_228_SHA,
    RSA_WITH_AES_SHA,
    RSA_WITH_GRAIN_V1_SHA,
    RSA_WITH_RC4_SHA,
    RSA_WITH_TRIVIUM_SHA,
    CipherSuite,
)
from ..protocols.payment import (
    Merchant,
    OrderInfo,
    PaymentGateway,
    PaymentInfo,
    create_payment,
    non_repudiation_evidence,
)
from ..protocols.reliable import VirtualClock

MERCHANT_NAME = "shop.example"

#: Requests per session are capped so a heavy-tail draw cannot blow up
#: a CI run; the cap is reported, never silent.
MAX_REQUESTS_PER_SESSION = 10


@dataclass(frozen=True)
class BatteryClass:
    """A handset class: how much energy it carries and which suites
    its policy leads with (the rest of :data:`ALL_SUITES` rides behind
    as fallback, so a legacy gateway still converges)."""

    name: str
    capacity_j: float
    leads: Tuple[CipherSuite, ...]

    def preference(self, rotation: int) -> List[CipherSuite]:
        """The session's full preference list; ``rotation`` cycles the
        lead suite so one class still exercises its whole policy."""
        lead = self.leads[rotation % len(self.leads)]
        rest = [s for s in self.leads if s is not lead]
        tail = [s for s in ALL_SUITES if s is not lead and s not in rest]
        return [lead] + rest + tail


#: The 2003 handset population.  Coin cells cannot afford block
#: ciphers at all; the extended pack is the PDA-class device that
#: still runs the legacy matrix.
BATTERY_CLASSES: Tuple[BatteryClass, ...] = (
    BatteryClass("coin", 2.0, (RSA_WITH_A51_228_SHA,
                               RSA_WITH_GRAIN_V1_SHA,
                               RSA_WITH_TRIVIUM_SHA)),
    BatteryClass("standard", 5.0, (RSA_WITH_GRAIN_V1_SHA,
                                   RSA_WITH_TRIVIUM_SHA,
                                   RSA_WITH_RC4_SHA)),
    BatteryClass("extended", 9.0, (RSA_WITH_AES_SHA,
                                   RSA_WITH_3DES_SHA)),
)


@dataclass(frozen=True)
class SessionKind:
    """One slice of the session mix.

    ``weight`` is the mix fraction; payload sizes are lognormal with
    the given parameters (natural-log space), clamped to the WTLS
    record budget.
    """

    name: str
    weight: float
    min_requests: int
    payload_mu: float
    payload_sigma: float
    payload_cap: int


SESSION_KINDS: Tuple[SessionKind, ...] = (
    SessionKind("browse", 0.5, 2, math.log(48.0), 0.9, 600),
    SessionKind("authenticate", 0.3, 2, math.log(96.0), 0.5, 400),
    SessionKind("purchase", 0.2, 1, math.log(160.0), 0.4, 700),
)


def _pareto_gap(u: float, scale_s: float, alpha: float) -> float:
    """Inverse-CDF Pareto draw: the heavy tail of human think time."""
    return scale_s / ((1.0 - u) ** (1.0 / alpha))


def _lognormal_int(drbg: DeterministicDRBG, mu: float, sigma: float,
                   lo: int, hi: int) -> int:
    """A lognormal payload size (Box–Muller under the hood via
    :meth:`DeterministicDRBG.gauss`), clamped to ``[lo, hi]``."""
    return max(lo, min(hi, int(round(math.exp(drbg.gauss(mu, sigma))))))


@dataclass(frozen=True)
class HandsetPlan:
    """One handset's precomputed session: everything the fleet run
    needs, decided before any protocol byte moves (so the plan itself
    is a pure, fuzzable function of the seed)."""

    session_id: str
    battery_class: str
    kind: str
    suite_name: str
    suites: Tuple[CipherSuite, ...]
    arrivals_s: Tuple[float, ...]
    payload_sizes: Tuple[int, ...]
    truncated: bool  # heavy tail hit MAX_REQUESTS_PER_SESSION


def plan_workload(sessions: int, seed: int, duration_s: float,
                  arrival_scale_s: float = 0.12,
                  arrival_alpha: float = 1.5) -> List[HandsetPlan]:
    """Lay out the whole workload deterministically from the seed.

    Battery classes rotate round-robin (every class is always
    populated); session kinds are drawn by inverse CDF over the mix
    weights; arrivals accumulate Pareto gaps until ``duration_s`` or
    the request cap.
    """
    drbg = DeterministicDRBG(("mcommerce-plan", seed).__repr__())
    total_weight = sum(kind.weight for kind in SESSION_KINDS)
    plans: List[HandsetPlan] = []
    for index in range(sessions):
        session_id = f"handset-{index:02d}"
        klass = BATTERY_CLASSES[index % len(BATTERY_CLASSES)]
        suites = klass.preference(index // len(BATTERY_CLASSES))

        pick = drbg.random() * total_weight
        kind = SESSION_KINDS[-1]
        for candidate in SESSION_KINDS:
            pick -= candidate.weight
            if pick < 0.0:
                kind = candidate
                break

        arrivals: List[float] = []
        at = _pareto_gap(drbg.random(), arrival_scale_s, arrival_alpha)
        truncated = False
        while len(arrivals) < kind.min_requests or at < duration_s:
            if len(arrivals) >= MAX_REQUESTS_PER_SESSION:
                truncated = True
                break
            arrivals.append(round(at, 6))
            at += _pareto_gap(drbg.random(), arrival_scale_s, arrival_alpha)
        sizes = [
            _lognormal_int(drbg, kind.payload_mu, kind.payload_sigma,
                           16, kind.payload_cap)
            for _ in arrivals
        ]
        plans.append(HandsetPlan(
            session_id=session_id, battery_class=klass.name,
            kind=kind.name, suite_name=suites[0].name,
            suites=tuple(suites), arrivals_s=tuple(arrivals),
            payload_sizes=tuple(sizes), truncated=truncated))
    return plans


@dataclass
class MCommerceResult:
    """Everything one seeded m-commerce run produced."""

    fleet: ShardedFleet
    telemetry: Telemetry
    stats: FleetStats
    plans: List[HandsetPlan]
    counts: Dict[str, int]
    per_session_replies: Dict[str, int]
    batteries: Dict[str, Battery]
    payments: List[Dict[str, object]]
    compute_mj: Dict[str, float]        # bulk cipher+MAC, per suite name
    dual_signature_mj: float            # RSA purchase signatures, pooled
    brownouts: Dict[str, int]           # per battery class
    reconciliation: EnergyReconciliation
    params: Dict[str, object] = field(default_factory=dict)


def _purchase_payload(plan: HandsetPlan, order_seq: int, size: int,
                      cardholder, merchant: Merchant,
                      gateway: PaymentGateway, ca) -> Tuple[bytes, Dict]:
    """Run the SET dual-signature flow for one purchase and return the
    airlink payload (order + authorisation, padded to the drawn size)
    plus the audit record."""
    key, cert = cardholder
    order_id = f"ord-{plan.session_id}-{order_seq}"
    amount = 100 + (order_seq * 7919) % 9900
    order = OrderInfo(merchant=MERCHANT_NAME,
                      description=f"{plan.kind}-{order_seq}",
                      amount_cents=amount, order_id=order_id)
    payment = PaymentInfo(card_number=f"5105{order_seq:012d}",
                          expiry="12/05", amount_cents=amount,
                          order_id=order_id)
    purchase = create_payment(order, payment, key, cert)
    subject = merchant.process(purchase.merchant_view())
    auth_code = gateway.process(purchase.gateway_view())
    evidence = non_repudiation_evidence(purchase, ca)
    body = b"PAY|" + order.to_bytes() + b"|" + auth_code.encode()
    payload = body + b"." * max(0, size - len(body))
    record = {
        "order_id": order_id,
        "amount_cents": amount,
        "auth_code": auth_code,
        "cardholder": subject,
        "binding_holds": evidence["binding_holds"],
    }
    return payload, record


def run_mcommerce(sessions: int = 18, shards: int = 3, seed: int = 2003,
                  duration_s: float = 1.2,
                  config: Optional[FleetConfig] = None) -> MCommerceResult:
    """One seeded m-commerce run over a healthy fleet.

    No crash plan here — the failover scenario owns that axis; this
    run measures the *cost* axis: what each suite and battery class
    pays per transaction when everything works.
    """
    if config is None:
        config = FleetConfig(shards=shards)
    if config.shards != shards:
        raise ValueError("config.shards must match the shards argument")
    plans = plan_workload(sessions, seed, duration_s)
    clock = VirtualClock()
    telemetry = Telemetry(
        seed=("mcommerce", sessions, shards, duration_s, seed),
        clock=clock, label="mcommerce")
    batteries = {
        plan.session_id: Battery(capacity_j=next(
            k.capacity_j for k in BATTERY_CLASSES
            if k.name == plan.battery_class))
        for plan in plans
    }
    energy = EnergyModel()
    payments: List[Dict[str, object]] = []
    compute_mj: Dict[str, float] = {}
    dual_signature_mj = 0.0
    brownouts: Dict[str, int] = {}
    with probe.activate(telemetry):
        fleet = ShardedFleet(config=config, seed=seed, clock=clock)
        export_fleet(telemetry.registry, fleet)
        merchant = Merchant(name=MERCHANT_NAME, ca=fleet.ca)
        pay_gateway = PaymentGateway(ca=fleet.ca)
        cardholder = fleet.ca.issue(
            "cardholder.device",
            DeterministicDRBG(("mcommerce-cardholder", seed).__repr__()),
            key_bits=384)
        for plan in plans:
            fleet.attach_session(plan.session_id,
                                 battery=batteries[plan.session_id],
                                 suites=list(plan.suites))
            negotiated = fleet.handsets[plan.session_id].suite_name
            if negotiated != plan.suite_name:  # pragma: no cover
                raise RuntimeError(
                    f"{plan.session_id} negotiated {negotiated}, "
                    f"planned {plan.suite_name}")
        order_seq = 0
        for plan in plans:
            suite = plan.suites[0]
            battery = batteries[plan.session_id]
            for request_index, (when, size) in enumerate(
                    zip(plan.arrivals_s, plan.payload_sizes)):
                is_purchase = (plan.kind == "purchase"
                               and request_index == 0)
                if is_purchase:
                    order_seq += 1
                    payload, record = _purchase_payload(
                        plan, order_seq, size, cardholder, merchant,
                        pay_gateway, fleet.ca)
                    payments.append(record)
                else:
                    stamp = f"{plan.kind}|{plan.session_id}|{request_index}|"
                    payload = stamp.encode() + b"." * max(
                        0, size - len(stamp))
                fleet.submit_at(when, plan.session_id, ORIGIN_NAME,
                                payload)
                # The §3 compute ledger: cipher + MAC instructions for
                # one airlink crossing of this payload, plus the RSA
                # dual signature on a purchase.  Radio energy is the
                # runtime's job; compute energy is charged here, span-
                # attributed so reconciliation stays exact.
                kilobytes = len(payload) / 1024.0
                bulk_mj = (
                    energy.bulk_crypto_mj(suite.cipher, kilobytes)
                    + energy.bulk_crypto_mj(suite.mac, kilobytes))
                sign_mj = (energy.rsa_private_mj(384)
                           if is_purchase else 0.0)
                with probe.span("mcommerce.crypto", suite=suite.name,
                                handset_class=plan.battery_class,
                                session=plan.session_id):
                    try:
                        battery.drain_mj(bulk_mj + sign_mj)
                        compute_mj[suite.name] = (
                            compute_mj.get(suite.name, 0.0) + bulk_mj)
                        dual_signature_mj += sign_mj
                    except BatteryEmpty:
                        brownouts[plan.battery_class] = (
                            brownouts.get(plan.battery_class, 0) + 1)
        stats = fleet.run()
        counts = {"served": 0, "degraded": 0, "shed": 0}
        per_session: Dict[str, int] = {}
        for plan in plans:
            replies = fleet.collect_replies(plan.session_id)
            per_session[plan.session_id] = len(replies)
            for reply in replies:
                counts[classify_reply(reply)] += 1
    return MCommerceResult(
        fleet=fleet,
        telemetry=telemetry,
        stats=stats,
        plans=plans,
        counts=counts,
        per_session_replies=per_session,
        batteries=batteries,
        payments=payments,
        compute_mj=compute_mj,
        dual_signature_mj=dual_signature_mj,
        brownouts=brownouts,
        reconciliation=reconcile_energy(telemetry, batteries.values()),
        params={
            "sessions": sessions,
            "shards": shards,
            "seed": seed,
            "duration_s": duration_s,
            "max_requests_per_session": MAX_REQUESTS_PER_SESSION,
        },
    )
