"""Application workload planes driving the protocol stacks.

The paper frames the appliance problem around *workloads*: §2's
m-commerce transaction is the canonical one ("a secure transaction
needs to be executed within a reasonable amount of time, without
exhausting the battery").  This package turns that sentence into
seeded, replayable traffic — session mixes, heavy-tailed arrivals,
handset battery classes — aimed at the sharded gateway fleet.
"""

from .mcommerce import (
    BATTERY_CLASSES,
    SESSION_KINDS,
    BatteryClass,
    HandsetPlan,
    MCommerceResult,
    SessionKind,
    plan_workload,
    run_mcommerce,
)

__all__ = [
    "BATTERY_CLASSES",
    "SESSION_KINDS",
    "BatteryClass",
    "HandsetPlan",
    "MCommerceResult",
    "SessionKind",
    "plan_workload",
    "run_mcommerce",
]
