"""The complete secure mobile appliance — the paper's subject, composed.

:class:`MobileAppliance` wires every subsystem of this library into
one device model: the hardware platform (processor, battery, radio,
crypto engines), the measured boot chain, the two-world secure
execution environment with its key store, biometric user
identification, the DRM agent, and the protocol client configuration —
i.e., the full Figure 1 concern coverage standing on the Figure 5
layer stack, built over the Figure 6 base architecture.

The lifecycle mirrors a real handset: ``boot()`` must succeed before
the secure world opens; ``unlock(sample)`` gates user-facing secure
services; secure sessions charge the battery through the hardware
model, so examples can watch energy drain exactly as §3.3 describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..crypto.rng import DeterministicDRBG
from ..crypto.rsa import generate_keypair
from ..hardware.platform_builder import HardwarePlatform, phone_platform
from ..hardware.workloads import BulkWorkload, HandshakeWorkload, SessionWorkload
from ..protocols.certificates import Certificate, CertificateAuthority
from ..protocols.handshake import ClientConfig
from .base_architecture import ModularBaseArchitecture, reference_architecture
from .biometrics import BiometricMatcher, FingerSimulator
from .drm import DRMAgent
from .keystore import KeyPolicy, KeyUsage, SecureKeyStore
from .layers import default_stack, validate_stack
from .secure_boot import BootReport, BootStage, SecureBootROM, VendorSigner
from .secure_execution import SecureExecutionEnvironment
from .secure_storage import FlashDevice, SecureStorage
from .tamper_response import TamperMesh, TamperResponder


class ApplianceLocked(Exception):
    """A secure service was requested before boot/unlock."""


@dataclass
class MobileAppliance:
    """A secure handset/PDA instance.

    Build with :func:`provision_appliance` for a fully provisioned
    device (keys, certificates, boot chain, enrolled user).
    """

    device_id: str
    platform: HardwarePlatform
    architecture: ModularBaseArchitecture
    boot_rom: SecureBootROM
    boot_chain: List[BootStage]
    environment: SecureExecutionEnvironment
    biometrics: BiometricMatcher
    drm: Optional[DRMAgent] = None
    storage: Optional[SecureStorage] = None
    tamper: Optional[TamperResponder] = None
    certificate: Optional[Certificate] = None
    client_rng: Optional[DeterministicDRBG] = None
    booted: bool = False
    unlocked: bool = False
    boot_report: Optional[BootReport] = None

    @property
    def keystore(self) -> SecureKeyStore:
        """The device key store (inside the architecture boundary)."""
        return self.environment.keystore

    # -- lifecycle -----------------------------------------------------------

    def boot(self) -> BootReport:
        """Run the measured boot chain; opens the secure world."""
        report = self.boot_rom.boot(self.boot_chain)
        self.boot_report = report
        self.booted = report.succeeded
        if not report.succeeded:
            self.unlocked = False
        return report

    def unlock(self, subject: str, sample) -> bool:
        """Biometric user identification gate."""
        if not self.booted:
            raise ApplianceLocked("device has not booted successfully")
        self.unlocked = self.biometrics.verify(subject, sample)
        return self.unlocked

    def _require_ready(self) -> None:
        if not self.booted:
            raise ApplianceLocked("device has not booted successfully")
        if not self.unlocked:
            raise ApplianceLocked("no authenticated user present")

    # -- secure services -----------------------------------------------------

    def tls_client_config(self, ca: CertificateAuthority,
                          expected_server: Optional[str] = None
                          ) -> ClientConfig:
        """Protocol client configuration for a secure data session."""
        self._require_ready()
        if self.client_rng is None:
            raise ApplianceLocked("appliance has no provisioned client RNG")
        return ClientConfig(
            rng=self.client_rng, ca=ca, expected_server=expected_server,
        )

    def run_secure_transaction(self, kilobytes: float = 1.0,
                               packets: int = 1,
                               cipher: str = "3DES",
                               mac: str = "SHA1"):
        """One m-commerce-style transaction: handshake + protected data.

        Executes on the platform's best engine and drains the battery —
        the §3.3 energy path.
        """
        self._require_ready()
        workload = SessionWorkload(
            handshake=HandshakeWorkload(),
            bulk=BulkWorkload(cipher=cipher, mac=mac,
                              kilobytes=kilobytes, packets=packets),
        )
        report = self.platform.run_security_workload(workload)
        self.platform.transmit(kilobytes)
        self.platform.receive(kilobytes)
        return report

    def layer_stack_violations(self) -> List[str]:
        """Figure 5 self-check: the layered hierarchy must be sound."""
        return validate_stack(default_stack())


def provision_appliance(device_id: str = "handset-0001", seed: int = 0,
                        ca: Optional[CertificateAuthority] = None,
                        platform: Optional[HardwarePlatform] = None,
                        with_engine: bool = True) -> MobileAppliance:
    """Factory-provision a complete appliance.

    Generates the vendor signing key and boot chain, the device RSA
    key (installed into the key store), a device certificate when a CA
    is supplied, the DRM device key, and enrolls the default user
    ``owner`` on the biometric sensor.
    """
    vendor = VendorSigner.create(seed=seed)
    boot_rom = SecureBootROM(vendor_key=vendor.public_key)
    from .secure_boot import reference_chain

    chain = reference_chain(vendor)

    architecture = reference_architecture(with_engine=with_engine)
    keystore = architecture.keystore
    rng = DeterministicDRBG(("appliance", device_id, seed).__repr__())
    device_key = generate_keypair(512, rng)
    keystore.install(
        "device-identity-key", device_key,
        KeyPolicy(usages=frozenset({KeyUsage.SIGN, KeyUsage.DECRYPT}),
                  secure_world_only=True),
    )
    drm_key = generate_keypair(512, rng)
    DRMAgent.provision_device_key(keystore, drm_key)

    environment = SecureExecutionEnvironment(
        keystore=keystore, installer_key=vendor.public_key,
    )
    matcher = architecture.biometrics
    simulator = FingerSimulator(seed=seed)
    matcher.enroll("owner", [simulator.read("owner") for _ in range(5)])

    storage = SecureStorage(
        flash=FlashDevice(), keystore=keystore,
        rng=DeterministicDRBG(("flash", device_id, seed).__repr__()))
    tamper = TamperResponder(mesh=TamperMesh(), keystore=keystore)

    certificate = None
    if ca is not None:
        certificate = ca.sign_public_key(device_id, device_key.public)

    if platform is None:
        # Wire the Figure 6 crypto engine into the hardware platform so
        # secure transactions run on it (software remains the fallback).
        engines = (
            [architecture.crypto_engine]
            if architecture.crypto_engine is not None else []
        )
        platform = phone_platform(engines=engines)

    appliance = MobileAppliance(
        device_id=device_id,
        platform=platform,
        architecture=architecture,
        boot_rom=boot_rom,
        boot_chain=chain,
        environment=environment,
        biometrics=matcher,
        drm=DRMAgent(device_id=device_id, keystore=keystore,
                     provider_public=drm_key.public),  # placeholder provider
        storage=storage,
        tamper=tamper,
        certificate=certificate,
        client_rng=DeterministicDRBG(("client", device_id, seed).__repr__()),
    )
    appliance._finger_simulator = simulator
    appliance._device_key = device_key
    appliance._vendor = vendor
    return appliance
