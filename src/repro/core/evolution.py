"""Protocol evolution timeline — the Figure 2 dataset and analyses.

Figure 2 "tracks the evolution of popular security protocols in the
wired domain IPSec and SSL/TLS" and "also outlines the evolution of
the wireless security protocols, WTLS and MET", making the paper's
§3.1 point: protocols are revised constantly (the figure's called-out
example being TLS's June 2002 revision to accommodate AES), so a
security processing architecture must stay flexible.

The event data below are the protocols' public standardisation
milestones (RFC publications, specification releases).  The analyses
compute the series the figure plots: cumulative revisions per protocol
over time and inter-revision gaps, plus the wired-vs-wireless cadence
comparison the paper draws from them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ProtocolEvent:
    """One standardisation milestone."""

    protocol: str
    year: float   # fractional years encode months (June 2002 -> 2002.5)
    label: str
    domain: str   # "wired" or "wireless"
    adds_algorithms: Tuple[str, ...] = ()
    drops_algorithms: Tuple[str, ...] = ()


EVENTS: List[ProtocolEvent] = [
    # --- SSL / TLS (wired) ---------------------------------------------------
    ProtocolEvent("SSL/TLS", 1994.8, "SSL 2.0 released", "wired",
                  adds_algorithms=("RC4", "RC2", "DES", "3DES", "MD5")),
    ProtocolEvent("SSL/TLS", 1995.9, "SSL 3.0 released", "wired",
                  adds_algorithms=("SHA1", "DH")),
    ProtocolEvent("SSL/TLS", 1999.0, "TLS 1.0 (RFC 2246)", "wired"),
    ProtocolEvent("SSL/TLS", 2002.5, "TLS AES suites (RFC 3268)", "wired",
                  adds_algorithms=("AES",)),
    # --- IPSec (wired) ---------------------------------------------------------
    ProtocolEvent("IPSec", 1995.6, "RFC 1825-1829 (first IPSec)", "wired",
                  adds_algorithms=("DES", "MD5")),
    ProtocolEvent("IPSec", 1998.9, "RFC 2401-2412 (IKE, ESPbis)", "wired",
                  adds_algorithms=("3DES", "SHA1", "DH")),
    ProtocolEvent("IPSec", 2001.0, "AES draft ciphersuites", "wired",
                  adds_algorithms=("AES",)),
    # --- WTLS (wireless) ---------------------------------------------------------
    ProtocolEvent("WTLS", 1998.3, "WAP 1.0 WTLS", "wireless",
                  adds_algorithms=("RC4", "DES", "3DES", "SHA1", "MD5")),
    ProtocolEvent("WTLS", 1999.5, "WAP 1.1 WTLS revision", "wireless"),
    ProtocolEvent("WTLS", 2000.5, "WAP 1.2.1 WTLS revision", "wireless"),
    ProtocolEvent("WTLS", 2001.6, "WAP 2.0 (TLS profile)", "wireless",
                  adds_algorithms=("AES",), drops_algorithms=("RC2",)),
    # --- MET (wireless) ---------------------------------------------------------
    ProtocolEvent("MET", 2000.2, "MeT 1.0 framework", "wireless"),
    ProtocolEvent("MET", 2001.2, "MeT PTD definition 1.1", "wireless"),
    ProtocolEvent("MET", 2002.0, "MeT 2.0 core spec", "wireless"),
]


def protocols() -> List[str]:
    """Distinct protocol names in timeline order of first appearance."""
    seen: List[str] = []
    for event in sorted(EVENTS, key=lambda e: e.year):
        if event.protocol not in seen:
            seen.append(event.protocol)
    return seen


def events_for(protocol: str) -> List[ProtocolEvent]:
    """All milestones for one protocol, chronological."""
    return sorted(
        (e for e in EVENTS if e.protocol == protocol), key=lambda e: e.year
    )


def cumulative_revisions(protocol: str,
                         years: Optional[List[float]] = None
                         ) -> List[Tuple[float, int]]:
    """(year, revision count so far) — one line of Figure 2."""
    milestones = events_for(protocol)
    if years is None:
        years = [event.year for event in milestones]
    return [
        (year, sum(1 for e in milestones if e.year <= year)) for year in years
    ]


def mean_revision_interval(protocol: str) -> Optional[float]:
    """Average years between consecutive revisions."""
    milestones = events_for(protocol)
    if len(milestones) < 2:
        return None
    gaps = [
        later.year - earlier.year
        for earlier, later in zip(milestones, milestones[1:])
    ]
    return sum(gaps) / len(gaps)


def domain_cadence() -> Dict[str, float]:
    """Mean revision interval per domain — §3.1's 'the evolutionary
    trend is much more pronounced ... in the wireless domain'."""
    cadences: Dict[str, List[float]] = {"wired": [], "wireless": []}
    for protocol in protocols():
        interval = mean_revision_interval(protocol)
        if interval is None:
            continue
        domain = events_for(protocol)[0].domain
        cadences[domain].append(interval)
    return {
        domain: sum(values) / len(values)
        for domain, values in cadences.items()
        if values
    }


def algorithm_introduction(algorithm: str) -> Optional[ProtocolEvent]:
    """First event that added an algorithm (e.g. AES -> TLS June 2002)."""
    candidates = [
        e for e in sorted(EVENTS, key=lambda e: e.year)
        if algorithm in e.adds_algorithms
    ]
    return candidates[0] if candidates else None


def required_algorithms_by(year: float) -> List[str]:
    """Union of algorithms any tracked protocol requires by ``year`` —
    the §3.1 interoperability burden a flexible handset must carry."""
    required: set = set()
    for event in EVENTS:
        if event.year <= year:
            required |= set(event.adds_algorithms)
            required -= set(event.drops_algorithms)
    return sorted(required)
