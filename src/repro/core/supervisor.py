"""The appliance fault supervisor: hardware failures become degraded modes.

The paper's §3.3–§3.4 operating conditions — engines that die, batteries
that sag, glitch campaigns against the die — previously surfaced as
uncaught exceptions from whatever subsystem happened to be holding them
(:class:`~repro.hardware.faults.AcceleratorFailure` out of a workload
run, :class:`~repro.hardware.battery.BatteryEmpty` mid-handshake, a
silent :class:`~repro.core.tamper_response.TamperResponder` zeroisation
that left every later key access failing).  The
:class:`ApplianceSupervisor` is the watchdog that converts each of the
three failure classes into a *measured, recorded* degradation:

* **engine death** — the supervisor dispatches workloads down the §4.2
  :func:`~repro.hardware.accelerators.architecture_ladder` (most capable
  engine first, :class:`~repro.hardware.accelerators.SoftwareEngine`
  last); a raised failure marks the engine dead and the walk continues,
  with dead engines re-probed after ``probe_interval_s`` so transient
  faults heal;
* **battery brownout** — below the
  :class:`~repro.core.battery_aware.BatteryAwarePolicy` thresholds the
  advertised cipher suite steps down *before* a drain request can blow
  up mid-handshake, and :meth:`guarded_drain` turns
  :class:`~repro.hardware.battery.BatteryEmpty` into a clean refusal
  (the transactional battery guarantees no state was corrupted);
* **confirmed tamper** — a mesh trip zeroises the key store (the
  responder's job) and the supervisor then *re-provisions* the device
  through the caller-supplied factory (normally
  :func:`~repro.core.appliance.provision_appliance`), so the appliance
  returns to service with fresh keys instead of limping on with a
  zeroised store.

Every action lands in a :class:`DegradationReport` — the device-side
mirror of :class:`~repro.protocols.recovery.RecoveryReport` — so tests
and benches can assert exactly which degraded modes ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..hardware.accelerators import (
    ExecutionReport,
    SoftwareEngine,
    UnsupportedWorkload,
    architecture_ladder,
)
from ..hardware.battery import Battery, BatteryEmpty
from ..hardware.faults import AcceleratorFailure, FaultPlan
from ..observability import probe
from ..protocols.reliable import VirtualClock
from .battery_aware import BatteryAwarePolicy, SuiteChoice
from .tamper_response import EnvironmentEvent, TamperResponder


class SupervisorGaveUp(Exception):
    """Every engine on the ladder failed the same workload."""


@dataclass(frozen=True)
class DegradationEvent:
    """One supervisor action on the virtual timeline."""

    time_s: float
    action: str
    detail: str


@dataclass
class DegradationReport:
    """Ledger of every degradation the supervisor performed."""

    events: List[DegradationEvent] = field(default_factory=list)
    engine_fallbacks: int = 0
    engine_restorations: int = 0
    suite_downgrades: int = 0
    suite_restorations: int = 0
    brownout_refusals: int = 0
    tamper_zeroizations: int = 0
    reprovisions: int = 0

    def record(self, time_s: float, action: str, detail: str = "") -> None:
        """Append one action row (mirrored as a telemetry event)."""
        self.events.append(DegradationEvent(time_s, action, detail))
        telemetry = probe.active
        if telemetry is not None:
            telemetry.event(f"supervisor.{action}", detail=detail)
            telemetry.registry.counter(
                "repro_supervisor_actions_total",
                "supervisor degradations by action",
            ).inc(action=action)

    def actions(self) -> List[str]:
        """The actions taken, in order."""
        return [event.action for event in self.events]


@dataclass
class _EngineSlot:
    """One ladder rung and its health state."""

    engine: object
    dead: bool = False
    died_at: float = 0.0
    failures: int = 0


class ApplianceSupervisor:
    """Watchdog over one appliance's engines, battery, and tamper domain.

    ``engines`` is the dispatch preference order, most capable first;
    a plain :class:`SoftwareEngine` should close the list (use
    :meth:`for_processor` to get the reversed §4.2 ladder).  All times
    are virtual seconds on the shared ``clock`` — the same
    :class:`~repro.protocols.reliable.VirtualClock` the gateway runtime
    schedules on, so device faults and gateway load live on one
    timeline.
    """

    def __init__(self, engines: Sequence, battery: Optional[Battery] = None,
                 policy: Optional[BatteryAwarePolicy] = None,
                 clock: Optional[VirtualClock] = None,
                 responder: Optional[TamperResponder] = None,
                 reprovision: Optional[Callable[[], object]] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 probe_interval_s: float = 10.0) -> None:
        if not engines:
            raise ValueError("supervisor needs at least one engine")
        self._slots = [_EngineSlot(engine) for engine in engines]
        self.battery = battery
        self.policy = policy or BatteryAwarePolicy()
        self.clock = clock or VirtualClock()
        self.responder = responder
        self._reprovision = reprovision
        self.fault_plan = fault_plan
        self.probe_interval_s = probe_interval_s
        self.report = DegradationReport()
        self.reprovisioned: List[object] = []
        self._last_suite: Optional[SuiteChoice] = None

    @classmethod
    def for_processor(cls, processor, **kwargs) -> "ApplianceSupervisor":
        """Supervisor over the full §4.2 ladder, most capable first."""
        return cls(list(reversed(architecture_ladder(processor))), **kwargs)

    # -- engine dispatch -----------------------------------------------------

    @property
    def active_engine(self):
        """The engine the next workload will be offered first."""
        for slot in self._slots:
            if not slot.dead:
                return slot.engine
        return self._slots[-1].engine

    def _engine_name(self, engine) -> str:
        return getattr(engine, "name", type(engine).__name__)

    def execute(self, workload) -> ExecutionReport:
        """Run a workload on the best live engine, degrading down the
        ladder on failure; raises :class:`SupervisorGaveUp` only when
        every rung (software included) refused."""
        telemetry = probe.active
        if telemetry is None:
            return self._execute_inner(workload)
        with telemetry.span("supervisor.execute",
                            workload=type(workload).__name__) as span:
            try:
                result = self._execute_inner(workload)
            except Exception as exc:
                span.set(error=type(exc).__name__)
                raise
            span.set(engine=result.engine)
            telemetry.add_cycles(result.host_instructions, kind="engine")
            telemetry.add_energy_mj(result.energy_mj, kind="engine")
            return result

    def _execute_inner(self, workload) -> ExecutionReport:
        now = self.clock.now
        last_error: Optional[Exception] = None
        for slot in self._slots:
            if slot.dead:
                if now - slot.died_at < self.probe_interval_s:
                    continue
                # Probe: the outage may have been transient.
                slot.dead = False
            engine = slot.engine
            if not engine.supports(workload):
                continue
            try:
                result = engine.execute(workload)
            except (AcceleratorFailure, UnsupportedWorkload) as exc:
                last_error = exc
                slot.failures += 1
                was_probe = slot.died_at > 0.0
                slot.dead = True
                slot.died_at = now
                if not isinstance(engine, SoftwareEngine):
                    self.report.engine_fallbacks += 1
                    self.report.record(
                        now, "engine-fallback",
                        f"{self._engine_name(engine)} failed "
                        f"({type(exc).__name__}); walking down the ladder"
                        + (" [probe]" if was_probe else ""))
                continue
            if slot.died_at > 0.0 and not slot.dead:
                # A probe of a previously-dead engine just succeeded.
                slot.died_at = 0.0
                self.report.engine_restorations += 1
                self.report.record(
                    now, "engine-restored",
                    f"{self._engine_name(engine)} healthy again")
            return result
        raise SupervisorGaveUp(
            f"no engine could run {type(workload).__name__}: {last_error!r}")

    # -- battery management --------------------------------------------------

    def _ladder_rank(self, suite: SuiteChoice) -> int:
        """Position on the policy ladder (larger = cheaper/degraded)."""
        try:
            return self.policy.ladder.index(suite)
        except ValueError:
            return -1

    def choose_suite(self) -> SuiteChoice:
        """Battery-aware suite selection, with ledger entries on change."""
        if self.battery is None:
            fraction = 1.0
        else:
            fraction = self.battery.fraction_remaining
        suite = self.policy.choose_suite(fraction)
        previous = self._last_suite
        if previous is not None and suite != previous:
            # "Down" means further along the policy ladder (cheaper),
            # not lower strength_bits: the §3.3 ladder trades *energy*,
            # and AES (128-bit) is both cheaper and stronger than 3DES.
            if self._ladder_rank(suite) > self._ladder_rank(previous):
                self.report.suite_downgrades += 1
                self.report.record(
                    self.clock.now, "suite-downgrade",
                    f"{previous.cipher}+{previous.mac} -> "
                    f"{suite.cipher}+{suite.mac} at "
                    f"{fraction:.0%} charge")
            else:
                self.report.suite_restorations += 1
                self.report.record(
                    self.clock.now, "suite-restored",
                    f"{previous.cipher}+{previous.mac} -> "
                    f"{suite.cipher}+{suite.mac}")
        self._last_suite = suite
        return suite

    def guarded_drain(self, millijoules: float) -> bool:
        """Transactional battery drain: False (and a ledger entry)
        instead of a mid-operation :class:`BatteryEmpty`."""
        if self.battery is None:
            return True
        try:
            self.battery.drain_mj(millijoules)
        except BatteryEmpty as exc:
            self.report.brownout_refusals += 1
            self.report.record(
                self.clock.now, "brownout-refusal",
                f"requested {exc.requested_mj:.3f} mJ with "
                f"{exc.remaining_mj:.3f} mJ remaining")
            self.choose_suite()   # step the advertised suite down now
            return False
        return True

    # -- tamper response -----------------------------------------------------

    def deliver_environment(self, event: EnvironmentEvent) -> bool:
        """Feed one excursion to the tamper domain.

        A confirmed trip has already zeroised the key store (the
        responder's job); the supervisor records it and — when a
        re-provisioning factory was supplied — builds the replacement
        device so service continues with fresh keys.
        """
        if self.responder is None:
            return False
        responded = self.responder.deliver(event)
        if not responded:
            return False
        self.report.tamper_zeroizations += 1
        self.report.record(
            self.clock.now, "tamper-zeroize",
            f"{event.kind} magnitude {event.magnitude} tripped the mesh")
        if self._reprovision is not None:
            replacement = self._reprovision()
            self.reprovisioned.append(replacement)
            tamper = getattr(replacement, "tamper", None)
            if tamper is not None:
                self.responder = tamper
            self.report.reprovisions += 1
            self.report.record(
                self.clock.now, "reprovision",
                "fresh keys and boot chain provisioned after zeroise")
        return True

    # -- the watchdog tick ---------------------------------------------------

    def poll(self, now: Optional[float] = None) -> None:
        """One watchdog tick: apply due faults, react, update the suite.

        Safe to call at arbitrary cadence (e.g. from the gateway
        runtime's ticker hook): all actions are idempotent per fault.
        """
        if now is not None:
            self.clock.advance_to(now)
        if self.fault_plan is not None:
            for event in self.fault_plan.poll(self.clock.now):
                self.deliver_environment(event)
        self.choose_suite()


def supervise_appliance(appliance, clock: Optional[VirtualClock] = None,
                        policy: Optional[BatteryAwarePolicy] = None,
                        fault_plan: Optional[FaultPlan] = None,
                        reprovision: Optional[Callable[[], object]] = None
                        ) -> ApplianceSupervisor:
    """Build a supervisor over a provisioned
    :class:`~repro.core.appliance.MobileAppliance`: platform engines
    (software fallback appended), platform battery, and the appliance's
    tamper responder."""
    engines = list(appliance.platform.engines)
    engines.append(SoftwareEngine(appliance.platform.processor))
    return ApplianceSupervisor(
        engines,
        battery=appliance.platform.battery,
        policy=policy,
        clock=clock,
        responder=appliance.tamper,
        reprovision=reprovision,
        fault_plan=fault_plan,
    )
