"""The security-concern taxonomy of Figure 1.

Figure 1 enumerates the major security concerns "from the perspective
of a mobile appliance": user identification, secure storage, secure
software execution, tamper resistance, secure network access, secure
data communications, and content security.  This module encodes the
taxonomy, the threats behind each concern (§3.4's attack classes), and
the mapping from each concern to the platform mechanism of this
library that addresses it — so the Figure 1 bench can *verify* the
coverage instead of merely printing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Tuple


class Concern(Enum):
    """The seven concerns of Figure 1."""

    USER_IDENTIFICATION = "user identification"
    SECURE_STORAGE = "secure storage"
    SECURE_EXECUTION = "secure software execution environment"
    TAMPER_RESISTANCE = "tamper-resistant system implementation"
    NETWORK_ACCESS = "secure network access"
    DATA_COMMUNICATIONS = "secure data communications"
    CONTENT_SECURITY = "content security"


class AttackClass(Enum):
    """§3.4's attack taxonomy."""

    PHYSICAL_INVASIVE = "invasive physical (micro-probing)"
    SIDE_CHANNEL = "non-invasive side-channel (timing/power/EM)"
    FAULT_INDUCTION = "fault induction (glitching)"
    SOFTWARE_INTEGRITY = "software integrity attack"
    SOFTWARE_PRIVACY = "software privacy attack"
    SOFTWARE_AVAILABILITY = "software availability attack"
    EAVESDROPPING = "over-the-air eavesdropping"
    THEFT = "device theft or loss"


@dataclass(frozen=True)
class ConcernProfile:
    """One concern with its threats and this library's mechanism."""

    concern: Concern
    description: str
    threats: Tuple[AttackClass, ...]
    mechanism_modules: Tuple[str, ...]


PROFILES: Dict[Concern, ConcernProfile] = {
    profile.concern: profile
    for profile in (
        ConcernProfile(
            Concern.USER_IDENTIFICATION,
            "only authorized entities can use the appliance",
            (AttackClass.THEFT,),
            ("repro.core.biometrics",),
        ),
        ConcernProfile(
            Concern.SECURE_STORAGE,
            "passwords, PINs, keys and certificates in flash stay secret",
            (AttackClass.THEFT, AttackClass.SOFTWARE_PRIVACY,
             AttackClass.PHYSICAL_INVASIVE),
            ("repro.core.keystore",),
        ),
        ConcernProfile(
            Concern.SECURE_EXECUTION,
            "viruses and trojan horses cannot subvert execution",
            (AttackClass.SOFTWARE_INTEGRITY, AttackClass.SOFTWARE_PRIVACY,
             AttackClass.SOFTWARE_AVAILABILITY),
            ("repro.core.secure_execution", "repro.core.secure_boot"),
        ),
        ConcernProfile(
            Concern.TAMPER_RESISTANCE,
            "the hardware implementation resists physical and "
            "electrical attack",
            (AttackClass.SIDE_CHANNEL, AttackClass.FAULT_INDUCTION,
             AttackClass.PHYSICAL_INVASIVE),
            ("repro.attacks.countermeasures", "repro.crypto.trace"),
        ),
        ConcernProfile(
            Concern.NETWORK_ACCESS,
            "only authorized devices connect to a network or service",
            (AttackClass.EAVESDROPPING,),
            ("repro.protocols.bearer",),
        ),
        ConcernProfile(
            Concern.DATA_COMMUNICATIONS,
            "privacy and integrity of communicated data",
            (AttackClass.EAVESDROPPING,),
            ("repro.protocols.tls", "repro.protocols.wtls",
             "repro.protocols.ipsec"),
        ),
        ConcernProfile(
            Concern.CONTENT_SECURITY,
            "downloaded content is used per the provider's terms",
            (AttackClass.SOFTWARE_INTEGRITY, AttackClass.SOFTWARE_PRIVACY),
            ("repro.core.drm",),
        ),
    )
}


def coverage_table() -> List[Tuple[str, str, str]]:
    """(concern, threats, mechanisms) rows — the Figure 1 data."""
    rows = []
    for concern in Concern:
        profile = PROFILES[concern]
        rows.append((
            concern.value,
            "; ".join(t.value for t in profile.threats),
            ", ".join(profile.mechanism_modules),
        ))
    return rows


def verify_mechanisms_importable() -> List[str]:
    """Import every mechanism module; returns the list of failures.

    The Figure 1 bench asserts this is empty: each concern is backed
    by code that actually exists in the library.
    """
    import importlib

    failures = []
    for profile in PROFILES.values():
        for module_name in profile.mechanism_modules:
            try:
                importlib.import_module(module_name)
            except Exception as exc:  # pragma: no cover - defensive
                failures.append(f"{module_name}: {exc}")
    return failures
