"""The wireless security processing gap — Figure 3's demand surface.

Figure 3 plots the MIPS a security protocol (RSA connection setup +
3DES bulk encryption + SHA integrity) demands as a function of
connection latency and data rate, and slices the surface with a
processor-capability plane (the paper draws 300 MIPS).  Combinations
above the plane cannot be served — the *wireless security processing
gap*.

This module evaluates the surface from the calibrated cost model of
:mod:`repro.hardware.cycles` (whose anchors — 651.3 MIPS at 10 Mbps,
and SA-1100 handshake feasibility at 0.5/1 s but not 0.1 s — come
straight from the paper) and derives the gap analyses: feasible
frontier per processor, gap factor versus data-rate growth, and the
§3.2 observation that the gap *widens* as rates rise and key sizes
grow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..hardware.cycles import bulk_mips_demand, handshake_mips_demand
from ..hardware.processors import Processor

DEFAULT_DATA_RATES_MBPS = (0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 60.0)
DEFAULT_LATENCIES_S = (0.1, 0.5, 1.0)


@dataclass(frozen=True)
class GapPoint:
    """One cell of the Figure 3 surface."""

    data_rate_mbps: float
    latency_s: float
    demand_mips: float


@dataclass(frozen=True)
class GapSurface:
    """The evaluated demand surface plus its generation parameters."""

    points: Tuple[GapPoint, ...]
    cipher: str
    mac: str
    rsa_bits: int

    def demand(self, data_rate_mbps: float, latency_s: float) -> float:
        """Exact demand for a grid point."""
        for point in self.points:
            if (point.data_rate_mbps == data_rate_mbps
                    and point.latency_s == latency_s):
                return point.demand_mips
        raise KeyError((data_rate_mbps, latency_s))

    def infeasible_for(self, processor: Processor) -> List[GapPoint]:
        """Surface cells above the processor's capability plane."""
        return [p for p in self.points if p.demand_mips > processor.mips]

    def feasible_fraction(self, processor: Processor) -> float:
        """Share of the sampled design space the processor can serve."""
        feasible = sum(
            1 for p in self.points if p.demand_mips <= processor.mips
        )
        return feasible / len(self.points)


def compute_surface(
    data_rates_mbps: Sequence[float] = DEFAULT_DATA_RATES_MBPS,
    latencies_s: Sequence[float] = DEFAULT_LATENCIES_S,
    cipher: str = "3DES",
    mac: str = "SHA1",
    rsa_bits: int = 1024,
    use_crt: bool = False,
) -> GapSurface:
    """Evaluate the Figure 3 surface on a grid."""
    points = []
    for latency in latencies_s:
        handshake = handshake_mips_demand(latency, rsa_bits, use_crt)
        for rate in data_rates_mbps:
            points.append(GapPoint(
                data_rate_mbps=rate,
                latency_s=latency,
                demand_mips=handshake + bulk_mips_demand(rate, cipher, mac),
            ))
    return GapSurface(
        points=tuple(points), cipher=cipher, mac=mac, rsa_bits=rsa_bits
    )


def max_sustainable_rate_mbps(processor: Processor, latency_s: float,
                              cipher: str = "3DES", mac: str = "SHA1",
                              rsa_bits: int = 1024,
                              use_crt: bool = False) -> float:
    """The feasible frontier: highest data rate the processor serves
    while meeting the connection-latency target (0 if the handshake
    alone exceeds the budget)."""
    handshake = handshake_mips_demand(latency_s, rsa_bits, use_crt)
    residual = processor.mips - handshake
    if residual <= 0:
        return 0.0
    per_mbps = bulk_mips_demand(1.0, cipher, mac)
    return residual / per_mbps


def gap_factor(processor: Processor, data_rate_mbps: float,
               latency_s: float, **kwargs) -> float:
    """Demand / supply ratio: > 1 means the gap is open at this point."""
    demand = handshake_mips_demand(
        latency_s, kwargs.get("rsa_bits", 1024), kwargs.get("use_crt", False)
    ) + bulk_mips_demand(
        data_rate_mbps, kwargs.get("cipher", "3DES"), kwargs.get("mac", "SHA1")
    )
    return demand / processor.mips


def widening_gap_series(
    processor_mips_growth: float = 0.35,
    data_rate_growth: float = 0.6,
    years: int = 6,
    initial_processor_mips: float = 235.0,
    initial_rate_mbps: float = 2.0,
    latency_s: float = 0.5,
) -> List[Tuple[int, float]]:
    """Project the §3.2 claim that the gap widens over time.

    Embedded MIPS grow (Moore-ish, ~35 %/yr) slower than wireless data
    rates (2 -> 60 Mbps over the 2.5G->WLAN transition, ~60 %/yr);
    returns (year, gap factor) showing monotone widening.
    """
    series = []
    for year in range(years + 1):
        mips = initial_processor_mips * (1 + processor_mips_growth) ** year
        rate = initial_rate_mbps * (1 + data_rate_growth) ** year
        demand = (
            handshake_mips_demand(latency_s)
            + bulk_mips_demand(rate)
        )
        series.append((year, demand / mips))
    return series


def stronger_crypto_demand(rsa_sizes: Sequence[int] = (512, 768, 1024, 2048),
                           latency_s: float = 0.5) -> List[Tuple[int, float]]:
    """Handshake demand versus key size — 'the use of stronger
    cryptographic algorithms ... threaten to further widen the gap'."""
    return [
        (bits, handshake_mips_demand(latency_s, rsa_bits=bits))
        for bits in rsa_sizes
    ]
