"""Secure storage — Figure 1's second concern, implemented.

"Secure storage addresses the security of sensitive information such
as passwords, PINs, keys, certificates, etc., that may reside in
secondary storage (e.g., flash memory) of the mobile appliance."  The
threat is theft/loss (§1: appliances are "easily lost or stolen") plus
flash dump and tamper: an attacker with the bare flash image must
learn nothing and must not be able to modify records undetected.

Design (the standard sealed-storage construction):

* a :class:`FlashDevice` models raw NOR flash — fully readable by
  anyone holding the stolen device;
* :class:`SecureStorage` seals each record with AES-CBC under a
  storage key derived from the key store's die-unique root, then
  HMAC-SHA1 over ``name || iv || ciphertext`` (encrypt-then-MAC);
* per-record **anti-rollback counters**: re-flashing yesterday's
  (validly sealed) record is detected, the attack a thief mounts
  against a PIN-retry counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..crypto.aes import AES
from ..crypto.bitops import constant_time_compare
from ..crypto.hmac import hmac
from ..crypto.modes import CBC
from ..crypto.rng import DeterministicDRBG
from .keystore import SecureKeyStore


class StorageTampered(Exception):
    """A sealed record failed authentication or rolled back."""


@dataclass
class FlashDevice:
    """Raw secondary storage: a name -> blob map anyone can dump."""

    blobs: Dict[str, bytes] = field(default_factory=dict)

    def program(self, name: str, blob: bytes) -> None:
        """Write a record blob."""
        self.blobs[name] = blob

    def read(self, name: str) -> Optional[bytes]:
        """Read a record blob (no protection at this layer)."""
        return self.blobs.get(name)

    def dump(self) -> Dict[str, bytes]:
        """The thief's view: every raw blob."""
        return dict(self.blobs)


@dataclass
class SecureStorage:
    """Sealed records over a flash device.

    The storage keys never exist outside this object (derived at
    construction from the key store's root); version counters live in
    simulated on-die monotonic storage (``_versions``) so a flash-only
    attacker cannot reset them.
    """

    flash: FlashDevice
    keystore: SecureKeyStore
    rng: DeterministicDRBG
    _versions: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        root = self.keystore.root_key
        self._cipher_key = hmac(root, b"storage-cipher")[:16]
        self._mac_key = hmac(root, b"storage-mac")

    # -- sealing ---------------------------------------------------------------

    def _seal(self, name: str, version: int, plaintext: bytes) -> bytes:
        iv = self.rng.random_bytes(16)
        body = version.to_bytes(4, "big") + plaintext
        ciphertext = CBC(AES(self._cipher_key), iv).encrypt(body)
        tag = hmac(self._mac_key, name.encode() + iv + ciphertext)
        return iv + ciphertext + tag

    def _unseal(self, name: str, blob: bytes) -> Tuple[int, bytes]:
        if len(blob) < 16 + 16 + 20:
            raise StorageTampered(f"record {name!r} truncated")
        iv, ciphertext, tag = blob[:16], blob[16:-20], blob[-20:]
        expected = hmac(self._mac_key, name.encode() + iv + ciphertext)
        if not constant_time_compare(expected, tag):
            raise StorageTampered(f"record {name!r} failed authentication")
        body = CBC(AES(self._cipher_key), iv).decrypt(ciphertext)
        return int.from_bytes(body[:4], "big"), body[4:]

    # -- public API ---------------------------------------------------------------

    def store(self, name: str, plaintext: bytes) -> None:
        """Seal and program a record, bumping its version."""
        version = self._versions.get(name, 0) + 1
        self._versions[name] = version
        self.flash.program(name, self._seal(name, version, plaintext))

    def load(self, name: str) -> bytes:
        """Read, authenticate, and rollback-check a record."""
        blob = self.flash.read(name)
        if blob is None:
            raise StorageTampered(f"record {name!r} missing from flash")
        version, plaintext = self._unseal(name, blob)
        expected_version = self._versions.get(name)
        if expected_version is None:
            raise StorageTampered(f"record {name!r} unknown to this device")
        if version != expected_version:
            raise StorageTampered(
                f"record {name!r} rolled back (flash has v{version}, "
                f"device expects v{expected_version})"
            )
        return plaintext

    def names(self) -> List[str]:
        """Records this device manages."""
        return sorted(self._versions)


def theft_scenario(pin: bytes = b"4711",
                   seed: int = 0) -> Dict[str, object]:
    """The §1 theft story, computed.

    A device seals its PIN and a certificate; the device is stolen and
    its flash dumped.  Returns what the thief could and could not do:
    ``plaintext_visible`` (secret bytes present in the dump),
    ``forge_accepted`` (a modified record passing checks),
    ``rollback_accepted`` (an old record re-flashed and accepted).
    """
    keystore = SecureKeyStore.provision(f"stolen-device-{seed}")
    flash = FlashDevice()
    storage = SecureStorage(
        flash=flash, keystore=keystore,
        rng=DeterministicDRBG(("storage", seed).__repr__()))
    storage.store("user-pin", pin)
    storage.store("retry-counter", b"\x03")

    # Attack 1: read the dump.
    dump = flash.dump()
    plaintext_visible = any(pin in blob for blob in dump.values())

    # Attack 2: flip bits in the sealed PIN record.
    forged = bytearray(dump["user-pin"])
    forged[20] ^= 0xFF
    flash.program("user-pin", bytes(forged))
    try:
        storage.load("user-pin")
        forge_accepted = True
    except StorageTampered:
        forge_accepted = False
        flash.program("user-pin", dump["user-pin"])  # restore

    # Attack 3: burn retries, then re-flash the old counter record.
    old_counter = flash.dump()["retry-counter"]
    storage.store("retry-counter", b"\x00")  # retries exhausted
    flash.program("retry-counter", old_counter)
    try:
        storage.load("retry-counter")
        rollback_accepted = True
    except StorageTampered:
        rollback_accepted = False

    return {
        "plaintext_visible": plaintext_visible,
        "forge_accepted": forge_accepted,
        "rollback_accepted": rollback_accepted,
    }
