"""Battery-aware security adaptation (§3.3's closing call).

"It becomes very important to consider battery-aware system design
techniques while embedding security in a mobile appliance."  This
module implements the adaptation policies a battery-aware designer
reaches for, and a mission simulator that quantifies what they buy:

* **suite adaptation** — step down from 3DES+SHA1 to cheaper
  still-acceptable suites (AES, then RC4) as charge depletes;
* **session resumption** — amortise the RSA handshake over many
  transactions instead of paying it per transaction;
* **engine offload** — route crypto to an accelerator when present
  (energy per byte ~50x lower).

The mission simulator runs "transactions until the battery dies" under
a policy and reports the lifetime; the T9-adjacent bench compares
policies and shows resumption + adaptation extending mission life by
integer factors, which is the paper's argument for treating battery as
a first-class design axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..hardware.accelerators import CryptoAccelerator, SoftwareEngine
from ..hardware.battery import Battery, BatteryEmpty
from ..hardware.cycles import handshake_cost
from ..hardware.processors import ARM7, Processor
from ..hardware.radio import GSM_RADIO, Radio
from ..hardware.workloads import BulkWorkload, HandshakeWorkload


@dataclass(frozen=True)
class SuiteChoice:
    """A protection level the policy may select."""

    cipher: str
    mac: str
    strength_bits: int


FULL_STRENGTH = SuiteChoice("3DES", "SHA1", 112)
BALANCED = SuiteChoice("AES", "SHA1", 128)
ECONOMY = SuiteChoice("RC4", "MD5", 64)


@dataclass
class BatteryAwarePolicy:
    """Selects protection parameters from battery state.

    ``thresholds`` are battery fractions below which the policy steps
    down a level; ``minimum_strength_bits`` is the floor it will never
    cross (security requirements beat energy — the policy degrades
    *cost*, not below-minimum *strength*).
    """

    ladder: Tuple[SuiteChoice, ...] = (FULL_STRENGTH, BALANCED, ECONOMY)
    thresholds: Tuple[float, ...] = (0.5, 0.2)
    minimum_strength_bits: int = 64
    resume_sessions: bool = True
    transactions_per_session: int = 20

    def choose_suite(self, battery_fraction: float) -> SuiteChoice:
        """Suite for the current battery level."""
        level = sum(
            1 for threshold in self.thresholds
            if battery_fraction < threshold
        )
        level = min(level, len(self.ladder) - 1)
        choice = self.ladder[level]
        if choice.strength_bits < self.minimum_strength_bits:
            # Walk back up to the weakest acceptable choice.
            for candidate in reversed(self.ladder[: level + 1]):
                if candidate.strength_bits >= self.minimum_strength_bits:
                    return candidate
            return self.ladder[0]
        return choice


@dataclass
class MissionReport:
    """Outcome of a mission simulation."""

    transactions_completed: int
    handshakes_performed: int
    suite_history: List[str]

    @property
    def suites_used(self) -> List[str]:
        """Distinct suites in first-use order."""
        seen: List[str] = []
        for name in self.suite_history:
            if name not in seen:
                seen.append(name)
        return seen


@dataclass
class MissionSimulator:
    """Runs 1-KB secure transactions until the battery dies.

    Each *session* costs one handshake (full, or abbreviated when the
    policy resumes) plus ``transactions_per_session`` protected
    transactions; radio energy uses the platform's link constants.
    """

    battery: Battery
    processor: Processor = ARM7
    radio: Radio = GSM_RADIO
    accelerator: Optional[CryptoAccelerator] = None
    transaction_kb: float = 1.0

    def _engine_for(self, workload) -> object:
        if self.accelerator is not None and self.accelerator.supports(
                workload):
            return self.accelerator
        return SoftwareEngine(self.processor)

    def run(self, policy: BatteryAwarePolicy,
            max_transactions: int = 2_000_000) -> MissionReport:
        """Simulate until the battery dies or the cap is reached."""
        completed = 0
        handshakes = 0
        history: List[str] = []
        while completed < max_transactions:
            fraction = self.battery.fraction_remaining
            suite = policy.choose_suite(fraction)
            first_of_mission = handshakes == 0
            resumed = policy.resume_sessions and not first_of_mission
            handshake = HandshakeWorkload(count=1)
            handshake_mi = handshake_cost(resumed=resumed).total_mi \
                if resumed else handshake_cost().total_mi
            try:
                # Handshake compute energy.
                engine = self._engine_for(handshake)
                if resumed:
                    energy = (handshake_mi * 1e6
                              * self.processor.energy_per_instruction_nj
                              / 1e6)
                    self.battery.drain_mj(energy)
                else:
                    report = engine.execute(handshake)
                    self.battery.drain_mj(report.energy_mj)
                handshakes += 1
                # The session's transactions.
                for _ in range(policy.transactions_per_session):
                    bulk = BulkWorkload(
                        cipher=suite.cipher, mac=suite.mac,
                        kilobytes=self.transaction_kb, packets=1)
                    report = self._engine_for(bulk).execute(bulk)
                    self.battery.drain_mj(report.energy_mj)
                    self.battery.drain_mj(
                        self.radio.tx_energy_mj(self.transaction_kb)
                        + self.radio.rx_energy_mj(self.transaction_kb))
                    completed += 1
                    history.append(f"{suite.cipher}+{suite.mac}")
                    if completed >= max_transactions:
                        break
            except BatteryEmpty:
                break
        return MissionReport(
            transactions_completed=completed,
            handshakes_performed=handshakes,
            suite_history=history,
        )


def compare_policies(battery_kj: float = 0.2,
                     seedless: bool = True) -> dict:
    """Mission lifetime under naive vs battery-aware policies.

    Returns {policy name: transactions completed}; the battery-aware
    configuration must dominate (the module's headline claim).
    """
    def fresh() -> MissionSimulator:
        return MissionSimulator(battery=Battery(battery_kj * 1000.0))

    naive = BatteryAwarePolicy(
        ladder=(FULL_STRENGTH,), thresholds=(),
        resume_sessions=False, transactions_per_session=1)
    resumption_only = BatteryAwarePolicy(
        ladder=(FULL_STRENGTH,), thresholds=(),
        resume_sessions=True, transactions_per_session=20)
    adaptive = BatteryAwarePolicy()

    return {
        "naive (full handshake per transaction)":
            fresh().run(naive).transactions_completed,
        "resumption only":
            fresh().run(resumption_only).transactions_completed,
        "battery-aware (resumption + suite adaptation)":
            fresh().run(adaptive).transactions_completed,
    }
