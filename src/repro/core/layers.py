"""The layered security hierarchy of Figure 5.

"From a systems perspective, it is imperative to take a hierarchical
approach where each layer of security provides a foundation for the
one above it."  We model the stack as an ordered list of layers, each
declaring the services it *provides* and the services it *requires*
from below.  :func:`validate_stack` checks the foundation property —
every requirement is provided by a strictly lower layer — which is the
invariant the Figure 5 bench and the property-based tests exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple


@dataclass(frozen=True)
class SecurityLayer:
    """One stratum of the Figure 5 hierarchy."""

    name: str
    provides: FrozenSet[str]
    requires: FrozenSet[str]
    description: str = ""


def default_stack() -> List[SecurityLayer]:
    """The paper's hierarchy, hardware at the bottom.

    Bottom-up: tamper-resistant hardware -> crypto foundation (engine,
    TRNG, key storage) -> secure boot / secure execution -> protocol
    security -> application services (DRM, m-commerce, user auth).
    """
    return [
        SecurityLayer(
            name="tamper-resistant hardware",
            provides=frozenset({"physical-protection", "secure-ram",
                                "secure-rom", "trng-entropy"}),
            requires=frozenset(),
            description="secure RAM/ROM, shielding, sensors",
        ),
        SecurityLayer(
            name="crypto foundation",
            provides=frozenset({"crypto-primitives", "random-numbers",
                                "key-storage"}),
            requires=frozenset({"physical-protection", "trng-entropy",
                                "secure-ram"}),
            description="HW/SW crypto, TRNG conditioning, key registers",
        ),
        SecurityLayer(
            name="secure execution environment",
            provides=frozenset({"trusted-boot", "code-isolation",
                                "secure-mode"}),
            requires=frozenset({"crypto-primitives", "key-storage",
                                "secure-rom"}),
            description="measured boot, secure/normal worlds",
        ),
        SecurityLayer(
            name="protocol security",
            provides=frozenset({"authenticated-channels",
                                "network-access-control"}),
            requires=frozenset({"crypto-primitives", "random-numbers",
                                "code-isolation"}),
            description="WTLS/TLS/IPSec/bearer protocols",
        ),
        SecurityLayer(
            name="application services",
            provides=frozenset({"drm", "m-commerce", "user-authentication"}),
            requires=frozenset({"authenticated-channels", "trusted-boot",
                                "key-storage"}),
            description="DRM, payments, biometric login",
        ),
    ]


def validate_stack(stack: List[SecurityLayer]) -> List[str]:
    """Check the foundation property; returns violation descriptions.

    A valid hierarchy has every layer's requirements satisfied by the
    union of *strictly lower* layers' provisions (Figure 5's "each
    layer provides a foundation for the one above it").
    """
    violations = []
    provided: set = set()
    for layer in stack:
        missing = layer.requires - provided
        if missing:
            violations.append(
                f"layer {layer.name!r} requires {sorted(missing)} "
                "not provided below it"
            )
        provided |= layer.provides
    return violations


def dependency_edges(stack: List[SecurityLayer]) -> List[Tuple[str, str, str]]:
    """(consumer-layer, service, provider-layer) resolution — who
    supplies each requirement.  Used by the Figure 5 bench output."""
    edges = []
    for index, layer in enumerate(stack):
        for service in sorted(layer.requires):
            provider = next(
                (lower.name for lower in stack[:index]
                 if service in lower.provides),
                None,
            )
            edges.append((layer.name, service, provider or "<unsatisfied>"))
    return edges
