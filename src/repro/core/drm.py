"""Content security / DRM (Figure 1's seventh concern, §3.4 item iii).

"Content security refers to the problem of ensuring that any content
that is downloaded or stored in the appliance is used in accordance
with the terms set forth by the content provider (e.g., read only, no
copying, etc.)" — and §3.4 lists "enforcing that application content
can remain secret (digital rights management)" among the software
attack-resistance measures.

The model: a provider encrypts content under a content key and issues
a *signed license* binding (content id, device id, usage rules).  The
device's :class:`DRMAgent` — running in the secure world, with the
device private key in the key store — validates the license, unwraps
the content key, and enforces the rules (play-count, expiry,
no-copy/no-export).  Every enforcement path raises
:class:`RightsViolation` rather than leaking plaintext.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..crypto.aes import AES
from ..crypto.errors import SignatureError
from ..crypto.modes import CBC
from ..crypto.rng import DeterministicDRBG
from ..crypto.rsa import RSAPrivateKey, RSAPublicKey
from .keystore import KeyPolicy, KeyUsage, SecureKeyStore, World


class RightsViolation(Exception):
    """A usage request exceeded the license terms."""


class LicenseInvalid(Exception):
    """A license failed authenticity or binding checks."""


@dataclass(frozen=True)
class UsageRules:
    """The provider's terms."""

    max_plays: Optional[int] = None     # None = unlimited
    expires_at: Optional[int] = None    # simulation clock
    allow_export: bool = False


@dataclass(frozen=True)
class License:
    """A signed grant of rights over one content item to one device."""

    content_id: str
    device_id: str
    wrapped_content_key: bytes  # RSA-encrypted to the device public key
    rules: UsageRules
    signature: bytes

    def tbs_bytes(self) -> bytes:
        """Signed payload."""
        rules_blob = (
            str(self.rules.max_plays).encode()
            + b"|" + str(self.rules.expires_at).encode()
            + b"|" + str(self.rules.allow_export).encode()
        )
        return (
            self.content_id.encode() + b"\x00"
            + self.device_id.encode() + b"\x00"
            + self.wrapped_content_key + b"\x00" + rules_blob
        )


@dataclass(frozen=True)
class ProtectedContent:
    """Encrypted content as distributed."""

    content_id: str
    iv: bytes
    ciphertext: bytes


@dataclass
class ContentProvider:
    """The provider side: packages content and issues licenses."""

    signing_key: RSAPrivateKey
    rng: DeterministicDRBG
    _content_keys: Dict[str, bytes] = field(default_factory=dict)

    def package(self, content_id: str, plaintext: bytes) -> ProtectedContent:
        """Encrypt content under a fresh content key."""
        key = self.rng.random_bytes(16)
        self._content_keys[content_id] = key
        iv = self.rng.random_bytes(16)
        return ProtectedContent(
            content_id=content_id, iv=iv,
            ciphertext=CBC(AES(key), iv).encrypt(plaintext),
        )

    def issue_license(self, content_id: str, device_id: str,
                      device_public: RSAPublicKey,
                      rules: UsageRules) -> License:
        """Grant rights to a device, wrapping the content key to it."""
        key = self._content_keys[content_id]
        wrapped = device_public.encrypt(key, self.rng)
        unsigned = License(
            content_id=content_id, device_id=device_id,
            wrapped_content_key=wrapped, rules=rules, signature=b"",
        )
        return License(
            content_id=content_id, device_id=device_id,
            wrapped_content_key=wrapped, rules=rules,
            signature=self.signing_key.sign(unsigned.tbs_bytes()),
        )


@dataclass
class DRMAgent:
    """Device-side rights enforcement (secure world).

    The device private key lives in the key store under the name
    ``drm-device-key``; plays are counted per license.
    """

    device_id: str
    keystore: SecureKeyStore
    provider_public: RSAPublicKey
    clock: int = 0
    _play_counts: Dict[str, int] = field(default_factory=dict)

    DEVICE_KEY_NAME = "drm-device-key"

    @staticmethod
    def provision_device_key(keystore: SecureKeyStore,
                             key: RSAPrivateKey) -> None:
        """Install the device private key under DRM policy."""
        keystore.install(
            DRMAgent.DEVICE_KEY_NAME, key,
            KeyPolicy(usages=frozenset({KeyUsage.DECRYPT}),
                      secure_world_only=True),
        )

    def _validate(self, license_: License) -> None:
        try:
            self.provider_public.verify(
                license_.tbs_bytes(), license_.signature)
        except SignatureError as exc:
            raise LicenseInvalid(f"license signature invalid: {exc}") from exc
        if license_.device_id != self.device_id:
            raise LicenseInvalid(
                f"license bound to {license_.device_id!r}, this device is "
                f"{self.device_id!r}"
            )

    def _unwrap_key(self, license_: License) -> bytes:
        return self.keystore.decrypt(
            self.DEVICE_KEY_NAME, license_.wrapped_content_key, World.SECURE
        )

    def play(self, content: ProtectedContent, license_: License) -> bytes:
        """Render the content once, enforcing count and expiry rules."""
        self._validate(license_)
        if license_.content_id != content.content_id:
            raise LicenseInvalid("license does not cover this content")
        rules = license_.rules
        if rules.expires_at is not None and self.clock > rules.expires_at:
            raise RightsViolation("license expired")
        plays = self._play_counts.get(license_.content_id, 0)
        if rules.max_plays is not None and plays >= rules.max_plays:
            raise RightsViolation(
                f"play count exhausted ({plays}/{rules.max_plays})"
            )
        key = self._unwrap_key(license_)
        plaintext = CBC(AES(key), content.iv).decrypt(content.ciphertext)
        self._play_counts[license_.content_id] = plays + 1
        return plaintext

    def export_copy(self, content: ProtectedContent,
                    license_: License) -> bytes:
        """Export decrypted content — only if the license allows it."""
        self._validate(license_)
        if not license_.rules.allow_export:
            raise RightsViolation("license forbids copying/export")
        key = self._unwrap_key(license_)
        return CBC(AES(key), content.iv).decrypt(content.ciphertext)

    def plays_remaining(self, license_: License) -> Optional[int]:
        """Remaining plays, or None when unlimited."""
        if license_.rules.max_plays is None:
            return None
        return license_.rules.max_plays - self._play_counts.get(
            license_.content_id, 0
        )
