"""The modular base architecture of Figure 6.

"At the core is a powerful crypto engine surrounded by firmware and an
application-programming interface (API) which speeds the integration
of various security applications and peripherals."  Figure 6's blocks
— crypto engine, firmware API, TRNG, secure RAM/ROM, key storage,
biometric peripheral — are assembled here into one
:class:`ModularBaseArchitecture` whose :class:`SecurityFirmwareAPI` is
the single surface applications program against.

The Figure 6 bench routes an identical secure-transaction workload
through the architecture with the crypto engine enabled vs. software
fallback, reporting the speedup/energy gains the figure's design
argues for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..crypto.registry import AlgorithmRegistry, default_registry
from ..crypto.rng import HardwareTRNG
from ..hardware.accelerators import CryptoAccelerator, ExecutionReport, SoftwareEngine
from ..hardware.processors import ARM7, Processor
from ..hardware.workloads import BulkWorkload, HandshakeWorkload, SessionWorkload
from .biometrics import BiometricMatcher, FingerprintSample
from .keystore import SecureKeyStore, World


@dataclass
class SecureMemory:
    """Secure RAM/ROM regions readable only from the secure world."""

    size_bytes: int = 65536
    _data: dict = field(default_factory=dict)
    violations: int = 0

    def write(self, address: int, value: bytes, world: World) -> None:
        """Write (secure world only)."""
        if world is not World.SECURE:
            self.violations += 1
            raise PermissionError("secure memory write from normal world")
        if address + len(value) > self.size_bytes:
            raise ValueError("secure memory write out of range")
        self._data[address] = value

    def read(self, address: int, world: World) -> bytes:
        """Read (secure world only)."""
        if world is not World.SECURE:
            self.violations += 1
            raise PermissionError("secure memory read from normal world")
        return self._data.get(address, b"")


@dataclass
class SecurityFirmwareAPI:
    """Figure 6's firmware/API ring around the crypto engine.

    Applications request *services* (random bytes, user verification,
    protected sessions); the firmware decides whether the engine or
    host software executes the crypto and charges the right model.
    """

    architecture: "ModularBaseArchitecture"

    def random_bytes(self, count: int) -> bytes:
        """Conditioned TRNG output."""
        return self.architecture.trng.random_bytes(count)

    def verify_user(self, subject: str, sample: FingerprintSample) -> bool:
        """Biometric user identification (Figure 1's first concern)."""
        return self.architecture.biometrics.verify(subject, sample)

    def run_bulk(self, workload: BulkWorkload) -> ExecutionReport:
        """Protect bulk data on the best available engine."""
        return self.architecture.execute(workload)

    def run_handshake(self, workload: HandshakeWorkload) -> ExecutionReport:
        """Run connection setups on the best available engine."""
        return self.architecture.execute(workload)

    def run_session(self, workload: SessionWorkload) -> ExecutionReport:
        """Handshake + bulk as one service call."""
        return self.architecture.execute(workload)


@dataclass
class ModularBaseArchitecture:
    """The assembled Figure 6 platform."""

    processor: Processor = ARM7
    crypto_engine: Optional[CryptoAccelerator] = None
    registry: AlgorithmRegistry = field(default_factory=default_registry)
    keystore: SecureKeyStore = field(
        default_factory=lambda: SecureKeyStore.provision("fig6-device"))
    trng: HardwareTRNG = field(default_factory=lambda: HardwareTRNG(seed=6))
    secure_memory: SecureMemory = field(default_factory=SecureMemory)
    biometrics: BiometricMatcher = field(default_factory=BiometricMatcher)
    engine_executions: int = 0
    software_executions: int = 0

    def __post_init__(self) -> None:
        self._software = SoftwareEngine(self.processor)
        self.api = SecurityFirmwareAPI(architecture=self)

    def execute(self, workload) -> ExecutionReport:
        """Engine if present and capable, else host software.

        This fallback rule is the flexibility/efficiency compromise of
        §3.1/§4.2: fixed-function hardware covers the common suites,
        software covers everything else.
        """
        if self.crypto_engine is not None and self.crypto_engine.supports(
                workload):
            self.engine_executions += 1
            return self.crypto_engine.execute(workload)
        self.software_executions += 1
        return self._software.execute(workload)


def reference_architecture(with_engine: bool = True,
                           processor: Processor = ARM7
                           ) -> ModularBaseArchitecture:
    """A representative Figure 6 instantiation."""
    engine = CryptoAccelerator(processor) if with_engine else None
    return ModularBaseArchitecture(processor=processor, crypto_engine=engine)
