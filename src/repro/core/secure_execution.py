"""The secure execution environment (§4.1's secure mode / §3.4 defence).

"A secure execution mode can be used for critical security operations
such as key storage/management and run-time security."  This module is
the run-time half of the trusted-code story that
:mod:`repro.core.secure_boot` starts:

* two worlds — NORMAL for downloaded applications, SECURE for trusted
  services — with the key store reachable only from SECURE;
* *measured installation*: a trusted application is registered with a
  hash of its code payload and a vendor signature over it (the §3.4
  measure "ascertain the operational correctness of protected code and
  data, before and during run-time");
* *run-time re-measurement*: every invocation re-hashes the payload,
  so post-installation patching (an integrity attack) is caught;
* a per-application invocation budget, the simple watchdog that turns
  an availability attack (invoke flooding) into a contained failure;
* an audit log of violations — the observable the software-attack
  tests and the T-benches assert on.

Applications execute as Python callables over an explicit,
capability-style API object; nothing else of the environment is
reachable from application code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..crypto.errors import SignatureError
from ..crypto.rsa import RSAPrivateKey, RSAPublicKey
from ..crypto.sha1 import sha1
from .keystore import AccessDenied, SecureKeyStore, World


class SecurityViolation(Exception):
    """An application attempted a forbidden operation."""


class MeasurementMismatch(SecurityViolation):
    """Installed code no longer matches its measured hash."""


class InvocationBudgetExceeded(SecurityViolation):
    """The watchdog tripped: too many invocations (availability attack)."""


@dataclass
class TrustedApplication:
    """An application with a measured code payload.

    ``payload`` is the canonical code bytes that get measured (for a
    real device: the binary); ``entry`` is the executable behaviour.
    Keeping them separate lets attack code patch one without the other
    — exactly the desynchronisation run-time measurement catches.
    """

    name: str
    payload: bytes
    entry: Callable
    signature: bytes = b""

    def measure(self) -> bytes:
        """Current SHA-1 measurement of the payload."""
        return sha1(self.payload)


@dataclass
class SecureAPI:
    """The capability handed to an executing application.

    Wraps the key store with the caller's world fixed, so an
    application cannot lie about which world it runs in.
    """

    keystore: SecureKeyStore
    world: World
    app_name: str
    _env: "SecureExecutionEnvironment" = None

    def sign(self, key_name: str, message: bytes) -> bytes:
        """Sign via the key store under this app's world."""
        return self._audited(
            lambda: self.keystore.sign(key_name, message, self.world),
            f"sign with {key_name!r}",
        )

    def decrypt(self, key_name: str, ciphertext: bytes) -> bytes:
        """Decrypt via the key store under this app's world."""
        return self._audited(
            lambda: self.keystore.decrypt(key_name, ciphertext, self.world),
            f"decrypt with {key_name!r}",
        )

    def mac(self, key_name: str, message: bytes) -> bytes:
        """MAC via the key store under this app's world."""
        return self._audited(
            lambda: self.keystore.mac(key_name, message, self.world),
            f"mac with {key_name!r}",
        )

    def session_key(self, key_name: str, purpose: str) -> bytes:
        """Derive a session key via the key store."""
        return self._audited(
            lambda: self.keystore.unwrap_symmetric(
                key_name, self.world, purpose),
            f"derive session key from {key_name!r}",
        )

    def _audited(self, operation: Callable, description: str):
        try:
            return operation()
        except AccessDenied as exc:
            self._env._log_violation(self.app_name, description, str(exc))
            raise SecurityViolation(str(exc)) from exc


@dataclass
class ViolationRecord:
    """One audit-log entry."""

    app_name: str
    operation: str
    reason: str


@dataclass
class SecureExecutionEnvironment:
    """The two-world run-time.

    ``installer_key`` is the vendor public key used to authenticate
    secure-world applications; unsigned code can only ever run NORMAL.
    """

    keystore: SecureKeyStore
    installer_key: RSAPublicKey
    invocation_budget: int = 1000
    _apps: Dict[str, TrustedApplication] = field(default_factory=dict)
    _worlds: Dict[str, World] = field(default_factory=dict)
    _measurements: Dict[str, bytes] = field(default_factory=dict)
    _invocations: Dict[str, int] = field(default_factory=dict)
    audit_log: List[ViolationRecord] = field(default_factory=list)

    def _log_violation(self, app: str, operation: str, reason: str) -> None:
        self.audit_log.append(ViolationRecord(app, operation, reason))

    # -- installation -----------------------------------------------------------

    def install(self, app: TrustedApplication,
                world: World = World.NORMAL) -> None:
        """Install an application.

        SECURE-world installation requires a valid vendor signature
        over the payload; NORMAL-world code installs freely (it is the
        downloaded-application threat surface of §3.4).
        """
        if world is World.SECURE:
            try:
                self.installer_key.verify(app.payload, app.signature)
            except SignatureError as exc:
                self._log_violation(
                    app.name, "secure-world install", str(exc))
                raise SecurityViolation(
                    f"application {app.name!r} lacks a valid vendor "
                    "signature for the secure world"
                ) from exc
        self._apps[app.name] = app
        self._worlds[app.name] = world
        self._measurements[app.name] = app.measure()
        self._invocations[app.name] = 0

    # -- invocation -------------------------------------------------------------

    def invoke(self, app_name: str, *args, **kwargs):
        """Run an installed application under enforcement.

        Re-measures the payload, charges the invocation budget, and
        hands the application a :class:`SecureAPI` fixed to its world.
        """
        if app_name not in self._apps:
            raise SecurityViolation(f"no application named {app_name!r}")
        app = self._apps[app_name]
        if app.measure() != self._measurements[app_name]:
            self._log_violation(
                app_name, "invoke", "payload measurement mismatch")
            raise MeasurementMismatch(
                f"application {app_name!r} was modified after installation"
            )
        self._invocations[app_name] += 1
        if self._invocations[app_name] > self.invocation_budget:
            self._log_violation(
                app_name, "invoke", "invocation budget exceeded")
            raise InvocationBudgetExceeded(
                f"application {app_name!r} exceeded its invocation budget"
            )
        api = SecureAPI(
            keystore=self.keystore, world=self._worlds[app_name],
            app_name=app_name, _env=self,
        )
        return app.entry(api, *args, **kwargs)

    # -- introspection -----------------------------------------------------------

    def world_of(self, app_name: str) -> Optional[World]:
        """Which world an application runs in."""
        return self._worlds.get(app_name)

    def violations_by(self, app_name: str) -> List[ViolationRecord]:
        """Audit entries attributed to one application."""
        return [v for v in self.audit_log if v.app_name == app_name]


def sign_application(vendor_key: RSAPrivateKey, name: str, payload: bytes,
                     entry: Callable) -> TrustedApplication:
    """Vendor-side helper: produce a signed trusted application."""
    return TrustedApplication(
        name=name, payload=payload, entry=entry,
        signature=vendor_key.sign(payload),
    )
