"""Biometric user authentication (§4.1).

"Biometric technologies such as finger print recognition and voice
recognition are emerging as important elements in enabling a secure
wireless environment with minimal actions or understanding required
from end-users."

The sensor substitution: a fingerprint is a feature vector; enrolment
averages several noisy samples into a template; verification measures
Euclidean distance between a fresh sample and the template against a
threshold.  Genuine samples are the enrollee's ground-truth vector
plus per-reading noise; impostor samples come from other identities.
The model yields the standard trade-off machinery — FAR/FRR sweeps,
the equal error rate, and threshold selection — which is what a system
designer actually tunes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..crypto.rng import DeterministicDRBG

FEATURES = 16


@dataclass(frozen=True)
class FingerprintSample:
    """One sensor reading: a feature vector."""

    features: Tuple[float, ...]


@dataclass(frozen=True)
class Template:
    """An enrolled reference (mean of enrolment samples)."""

    subject: str
    features: Tuple[float, ...]


def distance(a: Tuple[float, ...], b: Tuple[float, ...]) -> float:
    """Euclidean distance between feature vectors."""
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


@dataclass
class FingerSimulator:
    """Generates readings for a population of synthetic fingers.

    ``noise_sigma`` is per-feature sensor noise; identities are
    well-separated random points, so genuine/impostor distance
    distributions overlap realistically as noise grows.
    """

    seed: int = 0
    noise_sigma: float = 0.35
    _identities: Dict[str, Tuple[float, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._rng = DeterministicDRBG(("fingers", self.seed).__repr__())

    def _identity(self, subject: str) -> Tuple[float, ...]:
        if subject not in self._identities:
            rng = DeterministicDRBG(("finger-id", self.seed, subject).__repr__())
            self._identities[subject] = tuple(
                rng.gauss(0.0, 1.0) for _ in range(FEATURES)
            )
        return self._identities[subject]

    def read(self, subject: str) -> FingerprintSample:
        """One noisy sensor reading of a subject's finger."""
        truth = self._identity(subject)
        return FingerprintSample(tuple(
            value + self._rng.gauss(0.0, self.noise_sigma) for value in truth
        ))


@dataclass
class BiometricMatcher:
    """Enrolment + verification with a distance threshold."""

    threshold: float = 2.5
    templates: Dict[str, Template] = field(default_factory=dict)
    attempts: int = 0
    rejections: int = 0

    def enroll(self, subject: str, samples: List[FingerprintSample]) -> Template:
        """Average enrolment samples into a stored template."""
        if not samples:
            raise ValueError("enrolment requires at least one sample")
        mean = tuple(
            sum(sample.features[i] for sample in samples) / len(samples)
            for i in range(len(samples[0].features))
        )
        template = Template(subject=subject, features=mean)
        self.templates[subject] = template
        return template

    def verify(self, subject: str, sample: FingerprintSample) -> bool:
        """Accept iff the sample is within threshold of the template."""
        self.attempts += 1
        template = self.templates.get(subject)
        if template is None:
            self.rejections += 1
            return False
        accepted = distance(template.features, sample.features) <= self.threshold
        if not accepted:
            self.rejections += 1
        return accepted


@dataclass(frozen=True)
class ErrorRates:
    """Operating point on the ROC curve."""

    threshold: float
    far: float  # false accept rate (impostor accepted)
    frr: float  # false reject rate (genuine rejected)


def evaluate_matcher(simulator: FingerSimulator, threshold: float,
                     genuine_trials: int = 200,
                     impostor_trials: int = 200,
                     subject: str = "alice") -> ErrorRates:
    """Empirical FAR/FRR for one threshold."""
    matcher = BiometricMatcher(threshold=threshold)
    matcher.enroll(subject, [simulator.read(subject) for _ in range(5)])
    false_rejects = sum(
        0 if matcher.verify(subject, simulator.read(subject)) else 1
        for _ in range(genuine_trials)
    )
    false_accepts = sum(
        1 if matcher.verify(subject, simulator.read(f"impostor-{i % 20}"))
        else 0
        for i in range(impostor_trials)
    )
    return ErrorRates(
        threshold=threshold,
        far=false_accepts / impostor_trials,
        frr=false_rejects / genuine_trials,
    )


def roc_sweep(simulator: FingerSimulator,
              thresholds: Optional[List[float]] = None) -> List[ErrorRates]:
    """FAR/FRR across thresholds (the designer's tuning curve)."""
    thresholds = thresholds or [0.5 + 0.25 * i for i in range(16)]
    return [evaluate_matcher(simulator, t) for t in thresholds]


def equal_error_rate(curve: List[ErrorRates]) -> ErrorRates:
    """The operating point where FAR and FRR are closest."""
    return min(curve, key=lambda point: abs(point.far - point.frr))
