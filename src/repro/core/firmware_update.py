"""Over-the-air firmware update — the mechanism behind §3.1 flexibility.

The paper's flexibility argument assumes deployed appliances can adopt
new algorithms and protocol revisions (Figure 2's churn).  This module
supplies the missing mechanism: a signed, versioned, atomic firmware
update pipeline that ties together three subsystems already built —

* authenticity via the **vendor signing key** (the same root the
  secure boot chain trusts);
* **anti-rollback** via a monotonic version floor held in the device
  (downgrade attacks reintroduce patched vulnerabilities — refused);
* on success the package's payloads replace boot-chain stages and its
  manifest can register new crypto algorithms
  (:func:`~repro.crypto.registry.aes_rollout`-style) — after which the
  *measured boot still passes*, because the stages are re-signed.

The tests drive the full loop: build a v2 package adding AES, deliver
it (optionally through a tampering channel), install, reboot, and
negotiate an AES suite that did not exist at ship time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..crypto.errors import SignatureError
from ..crypto.registry import AlgorithmRegistry
from ..crypto.sha1 import sha1
from .secure_boot import BootStage, VendorSigner


class UpdateRejected(Exception):
    """The package failed authenticity, version, or integrity checks."""


@dataclass(frozen=True)
class FirmwarePackage:
    """A signed update: new boot-stage images + algorithm manifest."""

    version: int
    stage_images: Tuple[Tuple[str, bytes], ...]  # (stage name, image)
    enables_algorithms: Tuple[str, ...]
    stage_signatures: Tuple[bytes, ...]
    package_signature: bytes

    def manifest_bytes(self) -> bytes:
        """The signed package manifest."""
        parts = [self.version.to_bytes(4, "big")]
        for (name, image), signature in zip(self.stage_images,
                                            self.stage_signatures):
            parts.append(name.encode() + b"\x00")
            parts.append(sha1(image))
            parts.append(sha1(signature))
        parts.append(",".join(self.enables_algorithms).encode())
        return b"".join(parts)


def build_package(vendor: VendorSigner, version: int,
                  stage_images: List[Tuple[str, bytes]],
                  enables_algorithms: Tuple[str, ...] = ()
                  ) -> FirmwarePackage:
    """Vendor side: sign each stage and the overall manifest."""
    stage_signatures = tuple(
        vendor.key.sign(image) for _, image in stage_images)
    unsigned = FirmwarePackage(
        version=version, stage_images=tuple(stage_images),
        enables_algorithms=enables_algorithms,
        stage_signatures=stage_signatures, package_signature=b"")
    return FirmwarePackage(
        version=version, stage_images=tuple(stage_images),
        enables_algorithms=enables_algorithms,
        stage_signatures=stage_signatures,
        package_signature=vendor.key.sign(unsigned.manifest_bytes()))


@dataclass
class UpdateAgent:
    """Device side: validates and atomically applies packages."""

    vendor_public: "RSAPublicKey"
    boot_chain: List[BootStage]
    registry: Optional[AlgorithmRegistry] = None
    installed_version: int = 1
    history: List[int] = field(default_factory=list)

    def apply(self, package: FirmwarePackage) -> None:
        """Verify and install; raises :class:`UpdateRejected` untouched
        on any failure (atomicity: no partial installs)."""
        try:
            self.vendor_public.verify(
                package.manifest_bytes(), package.package_signature)
        except SignatureError as exc:
            raise UpdateRejected(
                f"package signature invalid: {exc}") from exc
        if package.version <= self.installed_version:
            raise UpdateRejected(
                f"rollback refused: installed v{self.installed_version}, "
                f"package is v{package.version}")
        # Verify every stage before touching the chain.
        new_stages = []
        by_name = {stage.name: index
                   for index, stage in enumerate(self.boot_chain)}
        for (name, image), signature in zip(package.stage_images,
                                            package.stage_signatures):
            try:
                self.vendor_public.verify(image, signature)
            except SignatureError as exc:
                raise UpdateRejected(
                    f"stage {name!r} signature invalid: {exc}") from exc
            if name not in by_name:
                raise UpdateRejected(f"package targets unknown stage "
                                     f"{name!r}")
            new_stages.append((by_name[name], BootStage(
                name=name, image=image, signature=signature)))
        # Commit.
        for index, stage in new_stages:
            self.boot_chain[index] = stage
        if self.registry is not None:
            for algorithm in package.enables_algorithms:
                _register_algorithm(self.registry, algorithm)
        self.installed_version = package.version
        self.history.append(package.version)


def _register_algorithm(registry: AlgorithmRegistry, name: str) -> None:
    from ..crypto.registry import aes_rollout

    if name == "AES":
        aes_rollout(registry)
    # Other algorithms ship pre-registered in the 2003 baseline; the
    # hook exists so future packages can carry new entries.


from ..crypto.rsa import RSAPublicKey  # noqa: E402  (typing reference)
