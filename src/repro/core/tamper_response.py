"""Tamper detection and response — §3.4's invasive/fault-attack defence.

"Invasive attacks such as micro-probing techniques involve getting
access to the silicon" and "fault induction techniques manipulate the
environmental conditions of the system (voltage, clock, temperature,
radiation, light, eddy current, etc.)".  Smart-card-class hardware
answers with *sensors* and a *response policy* — most drastically,
zeroising key material before the attacker reaches it (the classic
Kömmerling–Kuhn design principles the paper cites as [40]).

:class:`TamperMesh` aggregates environmental sensors with thresholds;
:class:`TamperResponder` binds the mesh to a key store and executes
the response (zeroise + lockout).  The attack model delivers
:class:`EnvironmentEvent` streams — a glitching campaign is a sequence
of voltage/clock excursions; a probing attempt trips the mesh sensor —
and the tests check both directions: attacks inside the sensor
envelope survive, anything beyond it finds the keys already gone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class EnvironmentEvent:
    """One environmental excursion delivered to the device."""

    kind: str       # "voltage", "clock", "temperature", "light", "mesh"
    magnitude: float  # sensor-specific units (see SensorSpec)


@dataclass(frozen=True)
class SensorSpec:
    """One tamper sensor: trips when |magnitude| exceeds the threshold."""

    kind: str
    threshold: float
    description: str = ""


DEFAULT_SENSORS: Tuple[SensorSpec, ...] = (
    SensorSpec("voltage", 0.3, "supply excursion beyond ±30% nominal"),
    SensorSpec("clock", 0.5, "clock frequency excursion beyond ±50%"),
    SensorSpec("temperature", 60.0, "die temperature delta > 60 C"),
    SensorSpec("light", 1.0, "photodiode: die exposed (decapsulation)"),
    SensorSpec("mesh", 0.0, "active shield continuity broken (probing)"),
)


@dataclass
class TamperMesh:
    """The sensor suite; evaluates events against thresholds."""

    sensors: Tuple[SensorSpec, ...] = DEFAULT_SENSORS
    trips: List[EnvironmentEvent] = field(default_factory=list)

    def evaluate(self, event: EnvironmentEvent) -> bool:
        """True (and recorded) when any sensor trips on the event."""
        for sensor in self.sensors:
            if sensor.kind == event.kind and \
                    abs(event.magnitude) > sensor.threshold:
                self.trips.append(event)
                return True
        return False


@dataclass
class TamperResponder:
    """Binds a mesh to a key store: trip -> zeroise -> lockout."""

    mesh: TamperMesh
    keystore: "SecureKeyStore"
    zeroised: bool = False
    response_log: List[str] = field(default_factory=list)

    def deliver(self, event: EnvironmentEvent) -> bool:
        """Feed one event; returns True if the device responded."""
        if not self.mesh.evaluate(event):
            return False
        if not self.zeroised:
            self._zeroise()
        self.response_log.append(
            f"tamper response: {event.kind} magnitude {event.magnitude}"
        )
        return True

    def _zeroise(self) -> None:
        # Overwrite every stored key and the die root, then drop them.
        self.keystore._keys.clear()
        self.keystore.root_key = bytes(len(self.keystore.root_key))
        self.zeroised = True


@dataclass
class ProbingAttacker:
    """An invasive attacker working through decapsulation + probing.

    ``steps`` is the campaign: the physical actions needed before the
    probe lands on the key bus.  Against a meshed device the campaign
    trips sensors early; against an unprotected one it reaches the
    keys.  ``read_keys`` models the probe's payoff: whether any key
    material remains to steal.
    """

    campaign: Tuple[EnvironmentEvent, ...] = (
        EnvironmentEvent("temperature", 80.0),   # hot-air decapsulation
        EnvironmentEvent("light", 5.0),          # die exposed
        EnvironmentEvent("mesh", 1.0),           # shield cut
    )

    def run(self, responder: Optional[TamperResponder],
            keystore: "SecureKeyStore") -> Dict[str, object]:
        """Execute the campaign; returns what the probe obtained."""
        tripped = []
        for event in self.campaign:
            if responder is not None and responder.deliver(event):
                tripped.append(event.kind)
        remaining_keys = list(keystore._keys)
        return {
            "sensors_tripped": tripped,
            "keys_recovered": remaining_keys,
            "root_key_intact": any(keystore.root_key),
        }


def glitching_is_subthreshold(event: EnvironmentEvent,
                              mesh: Optional[TamperMesh] = None) -> bool:
    """Whether a fault-injection excursion evades the sensor envelope.

    The §3.4 tension: the *useful* glitches for the Bellcore attack are
    small, fast excursions — a mesh with tight thresholds catches big
    ones but sub-threshold glitching remains, which is why the
    algorithmic countermeasure (CRT verification) is still required.
    The tests assert both: big glitches zeroise, small ones get through
    the mesh but are caught by :func:`verified_crt_sign`.
    """
    mesh = mesh or TamperMesh()
    return not mesh.evaluate(event)


# Imported late to avoid a cycle at module load.
from .keystore import SecureKeyStore  # noqa: E402  (typing reference)
