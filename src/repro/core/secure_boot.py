"""Secure (measured) boot — the root of the §4.1 trusted-code chain.

"HW components such as secure RAM and secure ROM in conjunction with
HW-based key storage and appropriate firmware can enable an optimized
'secure execution' environment where only trusted code can execute."
The chain starts here: an immutable boot ROM holds the vendor's public
key; each boot stage is signature-verified before execution and its
hash is extended into a measurement register (TPM-PCR style), so the
final measurement attests exactly which software booted.

Tampering with any stage image or signature aborts the boot — the
integrity-attack tests flip single bits and assert exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..crypto.errors import SignatureError
from ..crypto.rng import DeterministicDRBG
from ..crypto.rsa import RSAPrivateKey, RSAPublicKey, generate_keypair
from ..crypto.sha1 import sha1


class BootFailure(Exception):
    """A boot stage failed verification; the chain halts."""


@dataclass(frozen=True)
class BootStage:
    """One link of the boot chain (bootloader, OS kernel, baseband...)."""

    name: str
    image: bytes
    signature: bytes

    def digest(self) -> bytes:
        """SHA-1 measurement of the stage image."""
        return sha1(self.image)


@dataclass
class BootReport:
    """Result of a boot attempt."""

    succeeded: bool
    stages_verified: List[str]
    measurement: bytes
    failure: Optional[str] = None


@dataclass
class SecureBootROM:
    """The immutable first-stage verifier.

    Holds only the vendor public key (in practice its hash in e-fuses);
    everything else is verified software.
    """

    vendor_key: RSAPublicKey
    measurement: bytes = field(default=b"\x00" * 20)

    def _extend(self, digest: bytes) -> None:
        # PCR-extend: measurement = H(measurement || digest).
        self.measurement = sha1(self.measurement + digest)

    def boot(self, chain: List[BootStage]) -> BootReport:
        """Verify and 'execute' the chain in order."""
        self.measurement = b"\x00" * 20
        verified: List[str] = []
        for stage in chain:
            try:
                self.vendor_key.verify(stage.image, stage.signature)
            except SignatureError as exc:
                return BootReport(
                    succeeded=False, stages_verified=verified,
                    measurement=self.measurement,
                    failure=f"stage {stage.name!r} rejected: {exc}",
                )
            self._extend(stage.digest())
            verified.append(stage.name)
        return BootReport(
            succeeded=True, stages_verified=verified,
            measurement=self.measurement,
        )


@dataclass
class VendorSigner:
    """The device vendor's signing authority (factory side)."""

    key: RSAPrivateKey

    @classmethod
    def create(cls, seed: int = 0, bits: int = 512) -> "VendorSigner":
        """Generate a vendor signing key."""
        rng = DeterministicDRBG(("vendor", seed).__repr__())
        return cls(key=generate_keypair(bits, rng))

    @property
    def public_key(self) -> RSAPublicKey:
        """The key burned into boot ROMs."""
        return self.key.public

    def sign_stage(self, name: str, image: bytes) -> BootStage:
        """Produce a signed boot stage."""
        return BootStage(name=name, image=image,
                         signature=self.key.sign(image))


def reference_chain(signer: VendorSigner) -> List[BootStage]:
    """A representative 3-stage handset chain."""
    return [
        signer.sign_stage("bootloader", b"BL1: init ram, verify next"),
        signer.sign_stage("os-kernel", b"KRN: scheduler, memory protection"),
        signer.sign_stage("baseband", b"BB: radio stack firmware"),
    ]


def expected_measurement(chain: List[BootStage]) -> bytes:
    """The measurement a genuine boot of ``chain`` must produce."""
    measurement = b"\x00" * 20
    for stage in chain:
        measurement = sha1(measurement + stage.digest())
    return measurement
