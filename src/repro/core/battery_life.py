"""Battery-life impact of security processing — Figure 4.

The §3.3 case study: a DragonBall MC68328 sensor node at 10 Kbps
spends 21.5 mJ/KB transmitting and 14.3 mJ/KB receiving; RSA-based
security adds 42 mJ/KB; the battery holds 26 KJ.  "The number of 1KB
transactions that can be completed in the secure mode by the sensor
node before the battery runs out of power is less than half the
corresponding number in the un-encrypted mode."

:func:`transactions_until_empty` computes the closed-form answer;
:func:`simulate_transactions` actually drains a
:class:`~repro.hardware.battery.Battery` ledger transaction by
transaction (in configurable strides) so the simulation path and the
closed form cross-validate, and :func:`battery_gap_series` projects
the §3.3 "battery gap" (demand growing faster than the 5–8 %/yr
capacity trend).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..hardware.battery import Battery, BatteryEmpty, battery_capacity_trend
from ..hardware.energy import EnergyModel


@dataclass(frozen=True)
class BatteryLifeReport:
    """Figure 4's two bars plus their ratio."""

    plain_transactions: int
    secure_transactions: int

    @property
    def ratio(self) -> float:
        """Secure-mode transactions as a fraction of plain-mode."""
        return self.secure_transactions / self.plain_transactions

    @property
    def less_than_half(self) -> bool:
        """The paper's headline claim."""
        return self.ratio < 0.5


def transactions_until_empty(model: EnergyModel, battery_kj: float = 26.0,
                             kilobytes: float = 1.0,
                             secure: bool = False) -> int:
    """Closed form: floor(battery / per-transaction energy)."""
    per_transaction_mj = model.transaction_mj(kilobytes, secure=secure)
    return math.floor(battery_kj * 1e6 / per_transaction_mj)


def figure4_report(model: EnergyModel = EnergyModel(),
                   battery_kj: float = 26.0) -> BatteryLifeReport:
    """The two Figure 4 bars from the paper's constants."""
    return BatteryLifeReport(
        plain_transactions=transactions_until_empty(
            model, battery_kj, secure=False),
        secure_transactions=transactions_until_empty(
            model, battery_kj, secure=True),
    )


def simulate_transactions(model: EnergyModel, battery_kj: float = 26.0,
                          kilobytes: float = 1.0, secure: bool = False,
                          stride: int = 1000) -> int:
    """Drain a battery ledger transaction by transaction.

    ``stride`` batches drains for speed (hundreds of thousands of
    single-mJ drains are slow in pure Python); the final partial
    stride is walked one transaction at a time so the count is exact.
    Cross-validates the closed form in the tests.
    """
    battery = Battery(capacity_j=battery_kj * 1000.0)
    per_transaction_mj = model.transaction_mj(kilobytes, secure=secure)
    completed = 0
    while True:
        try:
            battery.drain_mj(per_transaction_mj * stride)
            completed += stride
        except BatteryEmpty:
            if stride == 1:
                return completed
            stride = max(1, stride // 10)


def battery_gap_series(
    initial_capacity_kj: float = 26.0,
    capacity_growth: float = 0.065,
    workload_growth: float = 0.25,
    years: int = 8,
    model: EnergyModel = EnergyModel(),
) -> List[Tuple[int, float]]:
    """(year, secure transactions supported per battery charge at that
    year's workload intensity) — the widening §3.3 battery gap.

    Capacity grows in the paper's 5–8 % band (default 6.5 %); the
    energy cost per transaction grows with workload complexity
    (data volumes, richer services).  The series shows supported
    transaction volume *falling* despite growing batteries.
    """
    capacities = battery_capacity_trend(
        initial_capacity_kj * 1000.0, years, capacity_growth
    )
    series = []
    for year, capacity_j in enumerate(capacities):
        per_transaction_mj = (
            model.transaction_mj(1.0, secure=True)
            * (1 + workload_growth) ** year
        )
        series.append(
            (year, capacity_j * 1000.0 / per_transaction_mj)
        )
    return series
