"""Hardware-backed key storage (§4.1 "HW-based key storage").

Models the secure-element key store of a 2003-era secure handset: keys
live inside the boundary, are referenced by name, and every access is
policy-checked against the caller's execution world
(:class:`~repro.core.secure_execution.World`).  Plaintext key bytes
never leave the store — callers get *operations* (sign, decrypt, MAC)
or wrapped (encrypted) export blobs, which is precisely the property
the trojan-horse privacy attack of §3.4 tries and fails to violate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Union

from ..crypto.aes import AES
from ..crypto.hmac import hmac
from ..crypto.modes import CBC
from ..crypto.rng import DeterministicDRBG
from ..crypto.rsa import RSAPrivateKey


class World(Enum):
    """Execution worlds (the secure-mode split of §4.1)."""

    NORMAL = "normal"
    SECURE = "secure"


class KeyUsage(Enum):
    """What a stored key may be used for."""

    SIGN = "sign"
    DECRYPT = "decrypt"
    MAC = "mac"
    WRAP = "wrap"


class AccessDenied(Exception):
    """A key-store request violated policy."""


@dataclass(frozen=True)
class KeyPolicy:
    """Access policy attached to a stored key."""

    usages: frozenset
    secure_world_only: bool = True
    exportable: bool = False


@dataclass
class _StoredKey:
    material: Union[bytes, RSAPrivateKey]
    policy: KeyPolicy


@dataclass
class SecureKeyStore:
    """The tamper-resistant key vault.

    ``root_key`` models the die-unique hardware key (e-fused at
    manufacture) under which exports are wrapped.
    """

    root_key: bytes
    _keys: Dict[str, _StoredKey] = field(default_factory=dict)
    denied_accesses: int = 0

    @classmethod
    def provision(cls, device_serial: str, seed: int = 0) -> "SecureKeyStore":
        """Factory provisioning: derive the die-unique root key."""
        rng = DeterministicDRBG(("die-key", device_serial, seed).__repr__())
        return cls(root_key=rng.random_bytes(16))

    def install(self, name: str, material: Union[bytes, RSAPrivateKey],
                policy: KeyPolicy) -> None:
        """Install key material under a policy (secure-world setup)."""
        self._keys[name] = _StoredKey(material=material, policy=policy)

    def __contains__(self, name: str) -> bool:
        return name in self._keys

    # -- policy gate ------------------------------------------------------------

    def _check(self, name: str, usage: KeyUsage, world: World) -> _StoredKey:
        if name not in self._keys:
            raise AccessDenied(f"no key named {name!r}")
        stored = self._keys[name]
        if stored.policy.secure_world_only and world is not World.SECURE:
            self.denied_accesses += 1
            raise AccessDenied(
                f"key {name!r} requires the secure world; caller is "
                f"{world.value}"
            )
        if usage not in stored.policy.usages:
            self.denied_accesses += 1
            raise AccessDenied(
                f"key {name!r} does not permit {usage.value}"
            )
        return stored

    # -- key operations (material never leaves) -----------------------------------

    def sign(self, name: str, message: bytes, world: World) -> bytes:
        """RSA-sign with a stored private key."""
        stored = self._check(name, KeyUsage.SIGN, world)
        if not isinstance(stored.material, RSAPrivateKey):
            raise AccessDenied(f"key {name!r} is not an RSA private key")
        return stored.material.sign(message)

    def decrypt(self, name: str, ciphertext: bytes, world: World) -> bytes:
        """RSA-decrypt with a stored private key."""
        stored = self._check(name, KeyUsage.DECRYPT, world)
        if not isinstance(stored.material, RSAPrivateKey):
            raise AccessDenied(f"key {name!r} is not an RSA private key")
        return stored.material.decrypt(ciphertext)

    def mac(self, name: str, message: bytes, world: World) -> bytes:
        """HMAC-SHA1 with a stored symmetric key."""
        stored = self._check(name, KeyUsage.MAC, world)
        if not isinstance(stored.material, bytes):
            raise AccessDenied(f"key {name!r} is not symmetric material")
        return hmac(stored.material, message)

    def unwrap_symmetric(self, name: str, world: World,
                         purpose: str = "session") -> bytes:
        """Derive a *session* key from a stored key (never the key itself).

        This is how protocol stacks get bulk keys without the long-term
        secret ever crossing the boundary.
        """
        stored = self._check(name, KeyUsage.DECRYPT, world)
        if not isinstance(stored.material, bytes):
            raise AccessDenied(f"key {name!r} is not symmetric material")
        return hmac(stored.material, b"derive:" + purpose.encode())[:16]

    def export_wrapped(self, name: str, world: World) -> bytes:
        """Export a key encrypted under the die-unique root key.

        Only policy-exportable keys; the blob is useless off-device.
        """
        stored = self._check(name, KeyUsage.WRAP, world)
        if not stored.policy.exportable:
            self.denied_accesses += 1
            raise AccessDenied(f"key {name!r} is not exportable")
        if not isinstance(stored.material, bytes):
            raise AccessDenied("only symmetric keys support wrapped export")
        return CBC(AES(self.root_key), self._wrap_iv()).encrypt(
            stored.material)

    def _wrap_iv(self) -> bytes:
        # Fixed per-device wrap IV: the blob must re-import under any
        # name, so the IV cannot depend on the key's name.
        return hmac(self.root_key, b"wrap-iv")[:16]

    def import_wrapped(self, name: str, blob: bytes, policy: KeyPolicy,
                       world: World) -> None:
        """Re-import a wrapped blob produced by :meth:`export_wrapped`."""
        if world is not World.SECURE:
            self.denied_accesses += 1
            raise AccessDenied("wrapped import requires the secure world")
        material = CBC(AES(self.root_key), self._wrap_iv()).decrypt(blob)
        self.install(name, material, policy)
