"""The paper's core content: challenge models and the secure platform.

Quantitative challenge models (§3): the Figure 3 processing-gap
surface, the Figure 4 battery-life analysis, and the Figure 2 protocol
evolution timeline.  Platform architecture (§4): the Figure 1 concern
taxonomy, the Figure 5 layered hierarchy, the Figure 6 modular base
architecture, secure boot, key storage, the two-world secure execution
environment, biometric user identification, DRM, and the complete
:class:`~repro.core.appliance.MobileAppliance` composition.
"""

from .appliance import ApplianceLocked, MobileAppliance, provision_appliance
from .base_architecture import (
    ModularBaseArchitecture,
    SecureMemory,
    SecurityFirmwareAPI,
    reference_architecture,
)
from .battery_aware import (
    BatteryAwarePolicy,
    MissionReport,
    MissionSimulator,
    SuiteChoice,
    compare_policies,
)
from .battery_life import (
    BatteryLifeReport,
    battery_gap_series,
    figure4_report,
    simulate_transactions,
    transactions_until_empty,
)
from .biometrics import (
    BiometricMatcher,
    ErrorRates,
    FingerprintSample,
    FingerSimulator,
    Template,
    equal_error_rate,
    evaluate_matcher,
    roc_sweep,
)
from .concerns import (
    AttackClass,
    Concern,
    ConcernProfile,
    PROFILES,
    coverage_table,
    verify_mechanisms_importable,
)
from .drm import (
    ContentProvider,
    DRMAgent,
    License,
    LicenseInvalid,
    ProtectedContent,
    RightsViolation,
    UsageRules,
)
from .evolution import (
    EVENTS,
    ProtocolEvent,
    algorithm_introduction,
    cumulative_revisions,
    domain_cadence,
    events_for,
    mean_revision_interval,
    protocols,
    required_algorithms_by,
)
from .gap import (
    GapPoint,
    GapSurface,
    compute_surface,
    gap_factor,
    max_sustainable_rate_mbps,
    stronger_crypto_demand,
    widening_gap_series,
)
from .keystore import (
    AccessDenied,
    KeyPolicy,
    KeyUsage,
    SecureKeyStore,
    World,
)
from .firmware_update import (
    FirmwarePackage,
    UpdateAgent,
    UpdateRejected,
    build_package,
)
from .malware_filter import (
    MalwareDetected,
    MalwareFilter,
    ScanVerdict,
    Signature,
    install_with_scan,
)
from .layers import (
    SecurityLayer,
    default_stack,
    dependency_edges,
    validate_stack,
)
from .secure_storage import (
    FlashDevice,
    SecureStorage,
    StorageTampered,
    theft_scenario,
)
from .supervisor import (
    ApplianceSupervisor,
    DegradationEvent,
    DegradationReport,
    SupervisorGaveUp,
    supervise_appliance,
)
from .tamper_response import (
    EnvironmentEvent,
    ProbingAttacker,
    TamperMesh,
    TamperResponder,
)
from .secure_boot import (
    BootFailure,
    BootReport,
    BootStage,
    SecureBootROM,
    VendorSigner,
    expected_measurement,
    reference_chain,
)
from .secure_execution import (
    InvocationBudgetExceeded,
    MeasurementMismatch,
    SecureAPI,
    SecureExecutionEnvironment,
    SecurityViolation,
    TrustedApplication,
    sign_application,
)

__all__ = [
    "MobileAppliance", "provision_appliance", "ApplianceLocked",
    "ModularBaseArchitecture", "SecurityFirmwareAPI", "SecureMemory",
    "reference_architecture",
    "Concern", "AttackClass", "ConcernProfile", "PROFILES",
    "coverage_table", "verify_mechanisms_importable",
    "SecurityLayer", "default_stack", "validate_stack", "dependency_edges",
    "EVENTS", "ProtocolEvent", "protocols", "events_for",
    "cumulative_revisions", "mean_revision_interval", "domain_cadence",
    "algorithm_introduction", "required_algorithms_by",
    "GapPoint", "GapSurface", "compute_surface", "gap_factor",
    "max_sustainable_rate_mbps", "widening_gap_series",
    "stronger_crypto_demand",
    "BatteryLifeReport", "figure4_report", "transactions_until_empty",
    "simulate_transactions", "battery_gap_series",
    "SecureKeyStore", "KeyPolicy", "KeyUsage", "World", "AccessDenied",
    "SecureBootROM", "BootStage", "BootReport", "BootFailure",
    "VendorSigner", "reference_chain", "expected_measurement",
    "SecureExecutionEnvironment", "TrustedApplication", "SecureAPI",
    "SecurityViolation", "MeasurementMismatch", "InvocationBudgetExceeded",
    "sign_application",
    "BiometricMatcher", "FingerSimulator", "FingerprintSample", "Template",
    "ErrorRates", "evaluate_matcher", "roc_sweep", "equal_error_rate",
    "ContentProvider", "DRMAgent", "License", "ProtectedContent",
    "UsageRules", "RightsViolation", "LicenseInvalid",
    "BatteryAwarePolicy", "MissionSimulator", "MissionReport",
    "SuiteChoice", "compare_policies",
    "MalwareFilter", "MalwareDetected", "ScanVerdict", "Signature",
    "install_with_scan",
    "SecureStorage", "FlashDevice", "StorageTampered", "theft_scenario",
    "TamperMesh", "TamperResponder", "EnvironmentEvent", "ProbingAttacker",
    "ApplianceSupervisor", "DegradationReport", "DegradationEvent",
    "SupervisorGaveUp", "supervise_appliance",
    "FirmwarePackage", "UpdateAgent", "UpdateRejected", "build_package",
]
