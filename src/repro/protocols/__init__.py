"""Protocol substrate: the paper's §2 security-protocol landscape.

A mini-TLS stack (handshake + record layer with the §3.1 cipher-suite
matrix), its wireless twin WTLS, WEP link security (faithfully broken),
an IPSec-style ESP datapath, GSM-style bearer security, and the WAP
gateway architecture with its observable "WAP gap".
"""

from .aka import (
    AKAChallenge,
    AuthenticationCentre,
    FalseBaseStation,
    ServingNetwork3G,
    USIM,
    false_base_station_attack,
)
from .alerts import (
    BadRecordMAC,
    CertificateError,
    DecodeError,
    HandshakeFailure,
    ProtocolAlert,
    ReplayError,
    UnexpectedMessage,
)
from .bearer import SIM, BaseStation, Handset, HomeRegister, clone_sim
from .certificates import Certificate, CertificateAuthority
from .ciphersuites import (
    ALL_SUITES,
    SUITES_BY_NAME,
    CipherSuite,
    negotiate,
    suites_for_registry,
)
from .dos import CookieProtectedResponder, FloodReport, flood_experiment
from .faults import FaultModel, FaultStats, FaultyChannel, GilbertElliott
from .gateway_runtime import (
    BUSY_PREFIX,
    BreakerConfig,
    CircuitBreaker,
    GatewayRuntime,
    RuntimeConfig,
    RuntimeStats,
    TokenBucket,
    build_gateway_runtime_world,
    busy_reply,
)
from .handshake import (
    ClientConfig,
    HandshakeAttemptLog,
    ServerConfig,
    Session,
    run_handshake,
    run_handshake_with_fallback,
)
from .ipsec import SecurityAssociation, make_tunnel
from .payment import (
    DualSignedPayment,
    Merchant,
    OrderInfo,
    PaymentError,
    PaymentGateway,
    PaymentInfo,
    create_payment,
    non_repudiation_evidence,
)
from .kdf import derive_key_block, master_secret, prf
from .records import RecordDecoder, RecordEncoder, make_record_pair
from .recovery import ReconnectPolicy, RecoveryReport, ResilientSession
from .reliable import (
    ARQConfig,
    ReliableEndpoint,
    ReliableLink,
    ReliableStats,
    RetryBudgetExhausted,
    VirtualClock,
)
from .smartcard import APDU, CardResponse, SIMCard, kiosk_cloning_attack
from .resumption import (
    CachedSession,
    SessionCache,
    cache_session,
    resume,
)
from .tls import SecureConnection, connect, connect_with_fallback
from .transport import ChannelClosed, ChannelEmpty, DuplexChannel, Endpoint
from .wap import (
    DEGRADED_PREFIX,
    HandlerFailure,
    OriginServer,
    WAPGateway,
    build_wap_world,
)
from .wep import WEPFrame, WEPStation
from .wtls import WTLSConnection, wtls_connect

__all__ = [
    "ProtocolAlert", "HandshakeFailure", "BadRecordMAC", "DecodeError",
    "CertificateError", "ReplayError", "UnexpectedMessage",
    "Certificate", "CertificateAuthority",
    "CipherSuite", "ALL_SUITES", "SUITES_BY_NAME", "negotiate",
    "suites_for_registry",
    "ClientConfig", "ServerConfig", "Session", "run_handshake",
    "run_handshake_with_fallback", "HandshakeAttemptLog",
    "SecureConnection", "connect", "connect_with_fallback",
    "RecordEncoder", "RecordDecoder", "make_record_pair",
    "prf", "master_secret", "derive_key_block",
    "DuplexChannel", "Endpoint", "ChannelClosed", "ChannelEmpty",
    "FaultyChannel", "FaultModel", "FaultStats", "GilbertElliott",
    "ReliableLink", "ReliableEndpoint", "ReliableStats", "ARQConfig",
    "VirtualClock", "RetryBudgetExhausted",
    "ResilientSession", "RecoveryReport", "ReconnectPolicy",
    "WTLSConnection", "wtls_connect",
    "WEPStation", "WEPFrame",
    "SecurityAssociation", "make_tunnel",
    "SIM", "HomeRegister", "BaseStation", "Handset", "clone_sim",
    "WAPGateway", "OriginServer", "build_wap_world", "HandlerFailure",
    "DEGRADED_PREFIX",
    "GatewayRuntime", "RuntimeConfig", "RuntimeStats", "CircuitBreaker",
    "BreakerConfig", "TokenBucket", "build_gateway_runtime_world",
    "busy_reply", "BUSY_PREFIX",
    "SessionCache", "CachedSession", "cache_session", "resume",
    "USIM", "AuthenticationCentre", "ServingNetwork3G", "AKAChallenge",
    "FalseBaseStation", "false_base_station_attack",
    "CookieProtectedResponder", "FloodReport", "flood_experiment",
    "OrderInfo", "PaymentInfo", "DualSignedPayment", "create_payment",
    "Merchant", "PaymentGateway", "PaymentError",
    "non_repudiation_evidence",
    "SIMCard", "APDU", "CardResponse", "kiosk_cloning_attack",
]
