"""Handshake message encoding for mini-TLS/WTLS.

A deliberately small wire format: every message is ``msg_type(1) ||
fields``, each field length-prefixed with 2 bytes.  The format is
shared by TLS and WTLS (WTLS is, as the paper notes, "a close
resemblance to the SSL/TLS standards"); the WTLS profile differs in
parameters, not message grammar.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .alerts import DecodeError

MSG_CLIENT_HELLO = 1
MSG_SERVER_HELLO = 2
MSG_CLIENT_KEY_EXCHANGE = 3
MSG_FINISHED = 4
MSG_CERTIFICATE_REQUEST = 5
MSG_CLIENT_CERTIFICATE = 6
MSG_CERTIFICATE_VERIFY = 7


def encode_fields(msg_type: int, fields: List[bytes]) -> bytes:
    """Serialize a message as type byte + length-prefixed fields."""
    out = bytearray([msg_type])
    for item in fields:
        out += len(item).to_bytes(2, "big")
        out += item
    return bytes(out)


def decode_fields(blob: bytes, expected_type: int, count: int) -> List[bytes]:
    """Parse a message, checking its type and field count."""
    if not blob:
        raise DecodeError("empty handshake message")
    if blob[0] != expected_type:
        raise DecodeError(
            f"expected message type {expected_type}, got {blob[0]}"
        )
    fields = []
    offset = 1
    for _ in range(count):
        if offset + 2 > len(blob):
            raise DecodeError("handshake message truncated")
        length = int.from_bytes(blob[offset : offset + 2], "big")
        offset += 2
        if offset + length > len(blob):
            raise DecodeError("handshake field overruns message")
        fields.append(blob[offset : offset + length])
        offset += length
    if offset != len(blob):
        raise DecodeError("trailing bytes after handshake message")
    return fields


def decode_text(data: bytes, what: str) -> str:
    """Decode a textual field; malformed UTF-8 is a wire-format error,
    not a crash (an attacker controls these bytes)."""
    try:
        return data.decode()
    except UnicodeDecodeError as exc:
        raise DecodeError(f"{what} is not valid UTF-8: {exc}") from exc


@dataclass
class ClientHello:
    """Client's opening offer: nonce + cipher-suite preference list."""

    client_random: bytes
    suite_names: List[str] = field(default_factory=list)

    def to_bytes(self) -> bytes:
        """Serialize."""
        return encode_fields(
            MSG_CLIENT_HELLO,
            [self.client_random, ",".join(self.suite_names).encode()],
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ClientHello":
        """Parse."""
        random_bytes, suites = decode_fields(blob, MSG_CLIENT_HELLO, 2)
        names = (decode_text(suites, "suite list").split(",")
                 if suites else [])
        return cls(client_random=random_bytes, suite_names=names)


@dataclass
class ServerHello:
    """Server's response: nonce, chosen suite, certificate, key-exchange
    payload (empty for RSA, DH parameters + signed public for DH)."""

    server_random: bytes
    suite_name: str
    certificate: bytes
    key_exchange: bytes = b""
    request_client_auth: bool = False

    def to_bytes(self) -> bytes:
        """Serialize."""
        return encode_fields(
            MSG_SERVER_HELLO,
            [
                self.server_random,
                self.suite_name.encode(),
                self.certificate,
                self.key_exchange,
                b"\x01" if self.request_client_auth else b"\x00",
            ],
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ServerHello":
        """Parse."""
        random_bytes, name, cert, kex, auth = decode_fields(
            blob, MSG_SERVER_HELLO, 5
        )
        return cls(
            server_random=random_bytes,
            suite_name=decode_text(name, "suite name"),
            certificate=cert,
            key_exchange=kex,
            request_client_auth=auth == b"\x01",
        )


@dataclass
class ClientKeyExchange:
    """RSA-encrypted premaster secret, or the client's DH public value;
    optionally carries the client certificate + transcript signature
    when the server requested client authentication."""

    key_exchange: bytes
    client_certificate: bytes = b""
    certificate_verify: bytes = b""

    def to_bytes(self) -> bytes:
        """Serialize."""
        return encode_fields(
            MSG_CLIENT_KEY_EXCHANGE,
            [self.key_exchange, self.client_certificate, self.certificate_verify],
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ClientKeyExchange":
        """Parse."""
        kex, cert, verify = decode_fields(blob, MSG_CLIENT_KEY_EXCHANGE, 3)
        return cls(
            key_exchange=kex, client_certificate=cert, certificate_verify=verify
        )


@dataclass
class Finished:
    """PRF check value binding the entire handshake transcript."""

    verify_data: bytes

    def to_bytes(self) -> bytes:
        """Serialize."""
        return encode_fields(MSG_FINISHED, [self.verify_data])

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Finished":
        """Parse."""
        (verify_data,) = decode_fields(blob, MSG_FINISHED, 1)
        return cls(verify_data=verify_data)
