"""Key derivation (a TLS-PRF-style expansion) for the handshakes.

Mini-TLS and WTLS expand ``premaster -> master secret -> key block``
with an HMAC-SHA1 counter construction (P_hash from RFC 2246,
simplified to a single hash).  The derivation binds both parties'
random nonces, so neither side alone controls the session keys.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.hmac import hmac
from .ciphersuites import CipherSuite


def p_hash(secret: bytes, seed: bytes, length: int) -> bytes:
    """RFC 2246 P_hash over HMAC-SHA1: expand ``secret`` to ``length``."""
    out = b""
    a = seed
    while len(out) < length:
        a = hmac(secret, a)
        out += hmac(secret, a + seed)
    return out[:length]


def prf(secret: bytes, label: bytes, seed: bytes, length: int) -> bytes:
    """Labelled PRF: domain-separates the different derivations."""
    return p_hash(secret, label + seed, length)


def master_secret(premaster: bytes, client_random: bytes,
                  server_random: bytes) -> bytes:
    """Derive the 48-byte master secret."""
    return prf(premaster, b"master secret", client_random + server_random, 48)


@dataclass(frozen=True)
class KeyBlock:
    """Directional key material derived from the master secret."""

    client_mac_key: bytes
    server_mac_key: bytes
    client_cipher_key: bytes
    server_cipher_key: bytes
    client_iv: bytes
    server_iv: bytes


def derive_key_block(master: bytes, client_random: bytes,
                     server_random: bytes, suite: CipherSuite) -> KeyBlock:
    """Expand the master secret into the suite's directional keys.

    Layout follows TLS: MAC keys, then cipher keys, then IVs, client
    direction first.  Export-grade suites (the paper's RC2-40 example)
    truncate the effective cipher key to 5 bytes then re-expand, the
    historical key-weakening construction.
    """
    need = 2 * (suite.mac_key_bytes + suite.cipher_key_bytes + suite.iv_bytes)
    block = prf(master, b"key expansion", server_random + client_random, need)
    offset = 0

    def take(count: int) -> bytes:
        nonlocal offset
        chunk = block[offset : offset + count]
        offset += count
        return chunk

    client_mac = take(suite.mac_key_bytes)
    server_mac = take(suite.mac_key_bytes)
    client_key = take(suite.cipher_key_bytes)
    server_key = take(suite.cipher_key_bytes)
    client_iv = take(suite.iv_bytes)
    server_iv = take(suite.iv_bytes)
    if suite.export_grade:
        client_key = _export_weaken(client_key, client_random, server_random)
        server_key = _export_weaken(server_key, server_random, client_random)
    return KeyBlock(
        client_mac_key=client_mac, server_mac_key=server_mac,
        client_cipher_key=client_key, server_cipher_key=server_key,
        client_iv=client_iv, server_iv=server_iv,
    )


def _export_weaken(key: bytes, random_a: bytes, random_b: bytes) -> bytes:
    """Reduce entropy to 40 bits, then stretch back to the key length."""
    weak = key[:5]
    return prf(weak, b"export key", random_a + random_b, len(key))


def finished_verify_data(master: bytes, transcript_digest: bytes,
                         label: bytes) -> bytes:
    """The 12-byte Finished check binding the whole handshake."""
    return prf(master, label, transcript_digest, 12)
