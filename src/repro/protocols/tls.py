"""Mini-TLS: secure connection API over the handshake + record layer.

The "transport-layer security protocol" of the paper's §2 protocol
landscape.  :func:`connect` wires a client and server configuration
through a :class:`~repro.protocols.transport.DuplexChannel` (optionally
adversarial) and returns two :class:`SecureConnection` objects whose
``send``/``receive`` move authenticated, encrypted application data.

:func:`connect_with_fallback` is the robust variant: it retries failed
handshakes on fresh links, walking down the cipher-suite preference
list on repeated negotiation failures (see
:func:`~repro.protocols.handshake.run_handshake_with_fallback`).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

from ..observability import probe
from .alerts import ProtocolAlert, UnexpectedMessage
from .handshake import (
    ClientConfig,
    HandshakeAttemptLog,
    ServerConfig,
    Session,
    run_handshake,
    run_handshake_with_fallback,
)
from .records import CONTENT_APPLICATION
from .transport import DuplexChannel, Endpoint


class SecureConnection:
    """One endpoint of an established mini-TLS session."""

    def __init__(self, session: Session, endpoint: Endpoint) -> None:
        self.session = session
        self._endpoint = endpoint
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(self, data: bytes) -> None:
        """Protect and transmit application data."""
        self._endpoint.send(self.session.encoder.encode(CONTENT_APPLICATION, data))
        self.bytes_sent += len(data)

    def receive(self) -> bytes:
        """Receive and open the next application-data record."""
        content_type, payload = self.session.decoder.decode(
            self._endpoint.receive()
        )
        if content_type != CONTENT_APPLICATION:
            raise UnexpectedMessage(
                f"expected application data, got content type {content_type}"
            )
        self.bytes_received += len(payload)
        return payload

    def send_batch(self, payloads: Iterable[bytes]) -> None:
        """Protect N application payloads into one transmission.

        The records are framed by the batched record plane
        (:func:`~repro.protocols.records_batch.encode_batch` — one
        amortized MAC/cipher pipeline, automatic fragmentation above
        the 2^14 ceiling) and the whole batch rides a single transport
        message, so per-message transport overhead (ARQ framing, CRC,
        acks) is paid once per batch instead of once per record."""
        payloads = list(payloads)
        self._endpoint.send(self.session.encoder.encode_batch(
            [(CONTENT_APPLICATION, payload) for payload in payloads]))
        self.bytes_sent += sum(len(payload) for payload in payloads)

    def receive_batch(self) -> List[bytes]:
        """Receive one transmission and open every record in it.

        Returns the payloads in order.  A record that fails to verify
        raises :class:`~repro.protocols.records_batch.BatchRecordError`
        carrying the intact records decoded before it — the
        transactional decoder guarantees one bad record cannot poison
        its neighbours."""
        records = self.session.decoder.decode_batch(self._endpoint.receive())
        out: List[bytes] = []
        append = out.append
        received = 0
        for content_type, payload in records:
            if content_type != CONTENT_APPLICATION:
                raise UnexpectedMessage(
                    f"expected application data, got content type "
                    f"{content_type}"
                )
            received += len(payload)
            append(payload)
        self.bytes_received += received
        return out

    @property
    def suite_name(self) -> str:
        """Negotiated cipher-suite name."""
        return self.session.suite.name


def connect(client: ClientConfig, server: ServerConfig,
            channel: Optional[DuplexChannel] = None,
            endpoints: Optional[Tuple[Endpoint, Endpoint]] = None
            ) -> Tuple[SecureConnection, SecureConnection]:
    """Handshake and return (client_connection, server_connection).

    Any failure surfaces as a :class:`ProtocolAlert` subclass; the
    channel (with its interceptor) is the attack surface.  Pass
    ``endpoints=(client_ep, server_ep)`` to run over pre-built
    endpoints — e.g. a :class:`~repro.protocols.reliable.ReliableLink`
    pair riding a :class:`~repro.protocols.faults.FaultyChannel`.
    """
    if endpoints is not None:
        client_ep, server_ep = endpoints
    else:
        channel = channel or DuplexChannel()
        client_ep = channel.endpoint_a()
        server_ep = channel.endpoint_b()
    with probe.span("session", kind="tls",
                    server=server.certificate.subject):
        client_session, server_session = run_handshake(
            client, server, client_ep, server_ep
        )
    return (
        SecureConnection(client_session, client_ep),
        SecureConnection(server_session, server_ep),
    )


def connect_with_fallback(
        client: ClientConfig, server: ServerConfig,
        endpoint_factory: Optional[
            Callable[[], Tuple[Endpoint, Endpoint]]] = None,
        max_attempts: int = 4,
) -> Tuple[SecureConnection, SecureConnection, HandshakeAttemptLog]:
    """Connect with handshake retry and cipher-suite fallback.

    ``endpoint_factory`` supplies a fresh ``(client_ep, server_ep)``
    pair per attempt (a new link — leftover frames from a failed
    attempt must not leak into the next one); by default each attempt
    gets a fresh perfect :class:`DuplexChannel`.  Returns both
    connections plus the
    :class:`~repro.protocols.handshake.HandshakeAttemptLog` describing
    what the retry machinery had to do.
    """
    last: dict = {}

    def factory() -> Tuple[Endpoint, Endpoint]:
        if endpoint_factory is not None:
            pair = endpoint_factory()
        else:
            fresh = DuplexChannel()
            pair = (fresh.endpoint_a(), fresh.endpoint_b())
        last["pair"] = pair
        return pair

    client_session, server_session, log = run_handshake_with_fallback(
        client, server, factory, max_attempts=max_attempts)
    client_ep, server_ep = last["pair"]
    return (
        SecureConnection(client_session, client_ep),
        SecureConnection(server_session, server_ep),
        log,
    )


__all__ = ["SecureConnection", "connect", "connect_with_fallback",
           "ProtocolAlert"]
