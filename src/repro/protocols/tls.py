"""Mini-TLS: secure connection API over the handshake + record layer.

The "transport-layer security protocol" of the paper's §2 protocol
landscape.  :func:`connect` wires a client and server configuration
through a :class:`~repro.protocols.transport.DuplexChannel` (optionally
adversarial) and returns two :class:`SecureConnection` objects whose
``send``/``receive`` move authenticated, encrypted application data.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .alerts import ProtocolAlert, UnexpectedMessage
from .handshake import ClientConfig, ServerConfig, Session, run_handshake
from .records import CONTENT_APPLICATION
from .transport import DuplexChannel, Endpoint


class SecureConnection:
    """One endpoint of an established mini-TLS session."""

    def __init__(self, session: Session, endpoint: Endpoint) -> None:
        self.session = session
        self._endpoint = endpoint
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(self, data: bytes) -> None:
        """Protect and transmit application data."""
        self._endpoint.send(self.session.encoder.encode(CONTENT_APPLICATION, data))
        self.bytes_sent += len(data)

    def receive(self) -> bytes:
        """Receive and open the next application-data record."""
        content_type, payload = self.session.decoder.decode(
            self._endpoint.receive()
        )
        if content_type != CONTENT_APPLICATION:
            raise UnexpectedMessage(
                f"expected application data, got content type {content_type}"
            )
        self.bytes_received += len(payload)
        return payload

    @property
    def suite_name(self) -> str:
        """Negotiated cipher-suite name."""
        return self.session.suite.name


def connect(client: ClientConfig, server: ServerConfig,
            channel: Optional[DuplexChannel] = None
            ) -> Tuple[SecureConnection, SecureConnection]:
    """Handshake and return (client_connection, server_connection).

    Any failure surfaces as a :class:`ProtocolAlert` subclass; the
    channel (with its interceptor) is the attack surface.
    """
    channel = channel or DuplexChannel()
    client_ep = channel.endpoint_a()
    server_ep = channel.endpoint_b()
    client_session, server_session = run_handshake(
        client, server, client_ep, server_ep
    )
    return (
        SecureConnection(client_session, client_ep),
        SecureConnection(server_session, server_ep),
    )


__all__ = ["SecureConnection", "connect", "ProtocolAlert"]
