"""Cipher-suite definitions — the §3.1 flexibility matrix in code.

"For key exchange, cryptographic algorithms such as RSA and KEA are
possible choices.  For symmetric encryption, an RSA key exchange based
SSL cipher suite would need to support 3-DES, RC4, RC2 or DES, along
with the appropriate message authentication algorithm (SHA-1 or MD5)."

A :class:`CipherSuite` names a (key-exchange, cipher, MAC) triple and
knows how to build the record-layer transforms from negotiated key
material; the default suite list is exactly the paper's matrix, and
the AES suites appear only after an
:func:`~repro.crypto.registry.aes_rollout` (the June 2002 TLS
revision event from Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..crypto.a51 import A51
from ..crypto.aes import AES
from ..crypto.des import DES
from ..crypto.grain import Grain
from ..crypto.md5 import MD5
from ..crypto.rc2 import RC2
from ..crypto.rc4 import RC4
from ..crypto.registry import AlgorithmRegistry
from ..crypto.sha1 import SHA1
from ..crypto.tdes import TripleDES
from ..crypto.trivium import Trivium


@dataclass(frozen=True)
class CipherSuite:
    """One negotiable protection combination.

    ``cipher_kind`` is ``block`` or ``stream``; block suites run CBC
    with an explicit per-direction IV, stream suites keep one RC4
    keystream per direction.
    """

    name: str
    key_exchange: str          # "RSA", "DH" or "KEA"
    cipher: str                # registry name, or "NULL"
    cipher_kind: str
    cipher_key_bytes: int
    iv_bytes: int
    mac: str                   # "SHA1" or "MD5"
    mac_key_bytes: int
    export_grade: bool = False

    @property
    def hash_factory(self) -> Callable:
        """Hash constructor for this suite's HMAC."""
        return SHA1 if self.mac == "SHA1" else MD5

    def make_cipher(self, key: bytes):
        """Instantiate the bulk cipher with a negotiated key."""
        factories = {
            "DES": DES, "3DES": TripleDES, "AES": AES,
            "RC4": RC4, "RC2": RC2,
            "A51": A51, "GRAIN": Grain, "TRIVIUM": Trivium,
        }
        if self.cipher == "NULL":
            return None
        return factories[self.cipher](key)


# The paper's §3.1 matrix: RSA key exchange x {3DES, RC4, RC2, DES} x
# {SHA-1, MD5}, plus a DH suite and NULL for testing.
RSA_WITH_3DES_SHA = CipherSuite(
    "RSA_WITH_3DES_EDE_CBC_SHA", "RSA", "3DES", "block", 24, 8, "SHA1", 20)
RSA_WITH_3DES_MD5 = CipherSuite(
    "RSA_WITH_3DES_EDE_CBC_MD5", "RSA", "3DES", "block", 24, 8, "MD5", 16)
RSA_WITH_RC4_SHA = CipherSuite(
    "RSA_WITH_RC4_128_SHA", "RSA", "RC4", "stream", 16, 0, "SHA1", 20)
RSA_WITH_RC4_MD5 = CipherSuite(
    "RSA_WITH_RC4_128_MD5", "RSA", "RC4", "stream", 16, 0, "MD5", 16)
RSA_WITH_DES_SHA = CipherSuite(
    "RSA_WITH_DES_CBC_SHA", "RSA", "DES", "block", 8, 8, "SHA1", 20)
RSA_WITH_RC2_MD5 = CipherSuite(
    "RSA_EXPORT_WITH_RC2_CBC_40_MD5", "RSA", "RC2", "block", 16, 8, "MD5", 16,
    export_grade=True)
RSA_WITH_AES_SHA = CipherSuite(
    "RSA_WITH_AES_128_CBC_SHA", "RSA", "AES", "block", 16, 16, "SHA1", 20)
DH_WITH_3DES_SHA = CipherSuite(
    "DH_WITH_3DES_EDE_CBC_SHA", "DH", "3DES", "block", 24, 8, "SHA1", 20)
KEA_WITH_3DES_SHA = CipherSuite(
    "KEA_WITH_3DES_EDE_CBC_SHA", "KEA", "3DES", "block", 24, 8, "SHA1", 20)
NULL_WITH_SHA = CipherSuite(
    "NULL_WITH_SHA", "RSA", "NULL", "stream", 0, 0, "SHA1", 20)

# The lightweight m-commerce family (Pourghasem et al., PAPERS.md).
# Stream suites carry no separate IV: the key blob is key || frame/IV,
# so the WTLS per-record rekey (key XOR sequence) lands in the
# trailing bytes — the GSM frame-number discipline for A5/1, a
# per-record re-IV for Grain/Trivium.
RSA_WITH_A51_228_SHA = CipherSuite(
    "RSA_WITH_A51_228_SHA", "RSA", "A51", "stream", 11, 0, "SHA1", 20)
RSA_WITH_GRAIN_V1_SHA = CipherSuite(
    "RSA_WITH_GRAIN_V1_SHA", "RSA", "GRAIN", "stream", 18, 0, "SHA1", 20)
RSA_WITH_TRIVIUM_SHA = CipherSuite(
    "RSA_WITH_TRIVIUM_SHA", "RSA", "TRIVIUM", "stream", 20, 0, "SHA1", 20)

ALL_SUITES: List[CipherSuite] = [
    RSA_WITH_3DES_SHA, RSA_WITH_3DES_MD5, RSA_WITH_RC4_SHA, RSA_WITH_RC4_MD5,
    RSA_WITH_DES_SHA, RSA_WITH_RC2_MD5, RSA_WITH_AES_SHA, DH_WITH_3DES_SHA,
    KEA_WITH_3DES_SHA, NULL_WITH_SHA,
    RSA_WITH_A51_228_SHA, RSA_WITH_GRAIN_V1_SHA, RSA_WITH_TRIVIUM_SHA,
]

LIGHTWEIGHT_SUITES: List[CipherSuite] = [
    RSA_WITH_A51_228_SHA, RSA_WITH_GRAIN_V1_SHA, RSA_WITH_TRIVIUM_SHA,
]

SUITES_BY_NAME = {suite.name: suite for suite in ALL_SUITES}


def suites_for_registry(registry: AlgorithmRegistry,
                        include_null: bool = False) -> List[CipherSuite]:
    """Suites whose cipher and MAC are both available (and current).

    This is how the flexibility requirement bites: a handset whose
    registry lacks AES simply cannot negotiate the AES suites until a
    firmware rollout registers it.
    """
    available = []
    for suite in ALL_SUITES:
        if suite.cipher == "NULL":
            if include_null:
                available.append(suite)
            continue
        if suite.cipher in registry and suite.mac in registry:
            available.append(suite)
    return available


def negotiate(client_suites: List[CipherSuite],
              server_suites: List[CipherSuite]) -> Optional[CipherSuite]:
    """Pick the first client-preferred suite the server also supports."""
    server_names = {suite.name for suite in server_suites}
    for suite in client_suites:
        if suite.name in server_names:
            return suite
    return None
