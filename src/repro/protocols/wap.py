"""The WAP architecture: handset, gateway, and origin server.

Section 2: "wireless handsets run the WAP protocol stack, and a WAP
gateway translates traffic to/from the wireless handset to
conventional Internet protocols (HTTP/TCP/IP)".  Security-wise this
creates the famous *WAP gap*: the handset's WTLS session terminates at
the gateway, which decrypts, converts, and re-encrypts toward the
origin server over TLS — so the gateway momentarily holds plaintext.

:class:`WAPGateway` models the translation including the gap; its
``plaintext_log`` is the evidence our tests and the end-to-end example
use to show why §2 says applications needing true end-to-end
guarantees "may decide to directly employ security mechanisms"
(application-layer security on top).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..crypto.rng import DeterministicDRBG
from ..observability import probe
from .alerts import ProtocolAlert
from .certificates import CertificateAuthority
from .handshake import ClientConfig, ServerConfig
from .tls import SecureConnection, connect
from .transport import ChannelClosed
from .wtls import WTLSConnection, wtls_connect

RequestHandler = Callable[[bytes], bytes]

DEGRADED_PREFIX = b"GW-DEGRADED:"


class HandlerFailure(Exception):
    """The origin's application handler raised mid-proxy.

    Distinct from the transport failures (:class:`ProtocolAlert`,
    :class:`ChannelClosed`): the origin is *reachable*, its application
    code failed.  Retrying over a fresh TLS leg cannot help, so
    :meth:`WAPGateway.forward` answers degraded immediately and counts
    it in ``handler_failures`` instead of the wired-leg ledger.
    """


@dataclass
class OriginServer:
    """A wired-Internet application server reachable over TLS."""

    name: str
    handler: RequestHandler
    config: ServerConfig


@dataclass
class WAPGateway:
    """Protocol translator between the WTLS and TLS worlds.

    The gateway is *trusted infrastructure* in the WAP model; the
    plaintext log makes the implied trust explicit and measurable.
    """

    ca: CertificateAuthority
    rng: DeterministicDRBG
    gateway_config: ServerConfig
    plaintext_log: List[bytes] = field(default_factory=list)
    wired_leg_failures: int = 0
    handler_failures: int = 0
    degraded_responses: int = 0
    _server_connections: Dict[str, SecureConnection] = field(default_factory=dict)
    _origin_sides: Dict[str, SecureConnection] = field(default_factory=dict)
    _servers: Dict[str, OriginServer] = field(default_factory=dict)

    handset_side: Optional[WTLSConnection] = None

    def register_origin(self, server: OriginServer) -> None:
        """Make an origin server reachable through this gateway."""
        self._servers[server.name] = server

    def _server_connection(self, name: str) -> Tuple[SecureConnection, OriginServer]:
        server = self._servers[name]
        if name not in self._server_connections:
            client_cfg = ClientConfig(
                rng=DeterministicDRBG(
                    ("gw-client", name, self.rng.getrandbits(32)).__repr__()
                ),
                ca=self.ca,
                expected_server=name,
            )
            gw_conn, origin_conn = connect(client_cfg, server.config)
            self._server_connections[name] = gw_conn
            self._origin_sides[name] = origin_conn
        return self._server_connections[name], self._servers[name]

    def _drop_wired_leg(self, name: str) -> None:
        """Forget a (possibly broken) cached TLS connection to an origin."""
        self._server_connections.pop(name, None)
        self._origin_sides.pop(name, None)

    def _proxy_once(self, destination: str, request: bytes) -> bytes:
        telemetry = probe.active
        if telemetry is None:
            return self._proxy_once_inner(destination, request)
        with telemetry.span("gateway.wired-leg", origin=destination,
                            n=len(request)) as span:
            try:
                return self._proxy_once_inner(destination, request)
            except Exception as exc:
                span.set(error=type(exc).__name__)
                raise

    def _proxy_once_inner(self, destination: str, request: bytes) -> bytes:
        gw_conn, server = self._server_connection(destination)
        gw_conn.send(request)                     # TLS re-encrypt
        origin_conn = self._origin_sides[destination]
        inbound = origin_conn.receive()
        try:
            response = server.handler(inbound)
        except Exception as exc:
            # Application failure, not transport: the TLS legs are fine,
            # so keep them cached and let forward() answer degraded.
            raise HandlerFailure(
                f"origin {destination!r} handler raised "
                f"{type(exc).__name__}: {exc}") from exc
        origin_conn.send(response)
        return gw_conn.receive()

    def forward(self, destination: str, wired_retries: int = 1) -> bytes:
        """Take one pending WTLS request from the handset, proxy it over
        TLS to the origin, and return the response over WTLS.

        The decrypt-then-re-encrypt through gateway memory is the WAP
        gap: the request and response both land in ``plaintext_log``.

        The wired leg degrades gracefully: a failed TLS exchange tears
        down the cached origin connection and retries over a fresh one
        (up to ``wired_retries`` times); if the origin stays
        unreachable the handset gets a ``GW-DEGRADED:`` response
        instead of the gateway crashing mid-proxy.
        """
        if self.handset_side is None:
            raise RuntimeError("gateway has no handset WTLS session")
        telemetry = probe.active
        if telemetry is None:
            return self._forward_inner(destination, wired_retries)
        with telemetry.span("gateway.forward",
                            origin=destination) as span:
            reply = self._forward_inner(destination, wired_retries)
            span.set(degraded=reply.startswith(DEGRADED_PREFIX))
            return reply

    def _forward_inner(self, destination: str, wired_retries: int) -> bytes:
        request = self.handset_side.receive()     # WTLS decrypt: the gap
        self.plaintext_log.append(request)
        reply: Optional[bytes] = None
        last_error: Optional[Exception] = None
        if destination not in self._servers:
            last_error = KeyError(f"unknown origin {destination!r}")
        else:
            for _ in range(wired_retries + 1):
                try:
                    reply = self._proxy_once(destination, request)
                    break
                except HandlerFailure as exc:
                    # Deterministic application error: no retry.
                    self.handler_failures += 1
                    last_error = exc
                    break
                except (ProtocolAlert, ChannelClosed) as exc:
                    self.wired_leg_failures += 1
                    last_error = exc
                    self._drop_wired_leg(destination)
        if reply is None:
            assert last_error is not None
            kind = (b" origin handler error ("
                    if isinstance(last_error, HandlerFailure)
                    else b" origin unavailable (")
            reply = (DEGRADED_PREFIX + kind
                     + type(last_error).__name__.encode() + b")")
            self.degraded_responses += 1
        self.plaintext_log.append(reply)          # the gap again
        self.handset_side.send(reply)
        return reply


def build_wap_world(seed: int = 0,
                    handler: Optional[RequestHandler] = None):
    """Convenience constructor for a full handset-gateway-origin setup.

    Returns ``(handset_wtls_connection, gateway, ca)`` ready for
    ``gateway.forward(handset_conn, "origin.example")`` round-trips.
    """
    ca = CertificateAuthority("WAP-CA", DeterministicDRBG(("ca", seed).__repr__()))
    gw_key, gw_cert = ca.issue(
        "gateway.operator", DeterministicDRBG(("gw", seed).__repr__()))
    origin_key, origin_cert = ca.issue(
        "origin.example", DeterministicDRBG(("origin", seed).__repr__()))

    handler = handler or (lambda request: b"OK:" + request)
    origin = OriginServer(
        name="origin.example",
        handler=handler,
        config=ServerConfig(
            rng=DeterministicDRBG(("origin-rng", seed).__repr__()),
            certificate=origin_cert, private_key=origin_key,
        ),
    )
    gateway = WAPGateway(
        ca=ca,
        rng=DeterministicDRBG(("gw-rng", seed).__repr__()),
        gateway_config=ServerConfig(
            rng=DeterministicDRBG(("gw-srv-rng", seed).__repr__()),
            certificate=gw_cert, private_key=gw_key,
        ),
    )
    gateway.register_origin(origin)

    handset_cfg = ClientConfig(
        rng=DeterministicDRBG(("handset", seed).__repr__()),
        ca=ca, expected_server="gateway.operator",
    )
    handset_conn, gateway_side = wtls_connect(handset_cfg, gateway.gateway_config)
    # The gateway holds its side of the WTLS session:
    gateway.handset_side = gateway_side
    return handset_conn, gateway, ca
