"""Go-back-N ARQ over a lossy channel, with energy-metered retries.

The reliability sublayer the §2 wireless stacks were always assumed to
sit on: sequence-numbered, CRC-framed data frames, cumulative acks, a
send window, virtual-clock retransmission timers with exponential
backoff and seeded jitter, and a per-frame retry budget after which
the link is declared dead (:class:`RetryBudgetExhausted`).

Every transmission — first copy or retry — is charged to the
:mod:`repro.hardware.energy` model and optionally drained from a
:class:`~repro.hardware.battery.Battery`, so the reliability-vs-battery
tradeoff of §3.3 (each retransmission costs ~21.5 mJ/KB of radio
energy that a sensor-class battery cannot spare) becomes a measurable
quantity instead of a qualitative warning.

Time is a :class:`VirtualClock`: the pair of endpoints forms a closed
discrete-event system, so whichever side is blocked in
:meth:`ReliableEndpoint.receive` advances the clock to the next timer
deadline and lets *both* sides' retransmission timers fire — exactly
the "time passes, the sender's timer expires" semantics of a real
link, without threads.

At a drop probability of zero the layer is transparent: zero
retransmissions, zero timeouts, byte-identical delivery.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Optional, Tuple

from ..crypto.crc import crc32
from ..crypto.rng import DeterministicDRBG
from ..hardware.battery import Battery
from ..hardware.energy import EnergyModel
from ..observability import probe
from .transport import ChannelClosed, ChannelEmpty, DuplexChannel

KIND_DATA = 1
KIND_ACK = 2

_HEADER_BYTES = 1 + 4 + 2  # kind | seq | length
_CRC_BYTES = 4

#: Largest payload the frame header's 16-bit length field can carry.
MAX_FRAME_PAYLOAD = (1 << 16) - 1


class FrameTooLarge(ValueError):
    """A payload exceeds the frame length field's 16-bit width.

    Raised at the API boundary instead of letting ``int.to_bytes``
    surface a raw ``OverflowError`` mid-transmit (the same bug class
    the record layer's :class:`~repro.protocols.alerts.RecordOverflow`
    guards against).  Callers batching records over the link must keep
    each batch under :data:`MAX_FRAME_PAYLOAD` bytes.
    """


class RetryBudgetExhausted(ChannelClosed):
    """A frame exceeded its retry budget: the link is declared dead.

    Subclasses :class:`~repro.protocols.transport.ChannelClosed` so the
    session-recovery layer treats it exactly like a link reset
    (reconnect / resume) rather than a protocol error.
    """


class FrameDamaged(Exception):
    """Internal: a frame failed its CRC and must be discarded."""


def encode_frame(kind: int, seq: int, payload: bytes = b"") -> bytes:
    """Frame format: kind(1) | seq(4) | len(2) | crc32(4) | payload."""
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise FrameTooLarge(
            f"frame payload of {len(payload)} bytes exceeds the 16-bit "
            f"length field (max {MAX_FRAME_PAYLOAD} bytes per frame)"
        )
    header = (
        bytes([kind]) + seq.to_bytes(4, "big")
        + len(payload).to_bytes(2, "big")
    )
    crc = crc32(header + payload).to_bytes(_CRC_BYTES, "big")
    return header + crc + payload


def decode_frame(raw: bytes) -> Tuple[int, int, bytes]:
    """Parse and CRC-check one frame -> (kind, seq, payload)."""
    if len(raw) < _HEADER_BYTES + _CRC_BYTES:
        raise FrameDamaged("frame shorter than header")
    header, crc, payload = (
        raw[:_HEADER_BYTES],
        raw[_HEADER_BYTES:_HEADER_BYTES + _CRC_BYTES],
        raw[_HEADER_BYTES + _CRC_BYTES:],
    )
    kind = header[0]
    seq = int.from_bytes(header[1:5], "big")
    length = int.from_bytes(header[5:7], "big")
    if kind not in (KIND_DATA, KIND_ACK):
        raise FrameDamaged(f"unknown frame kind {kind}")
    if len(payload) != length:
        raise FrameDamaged("frame length field mismatch")
    if int.from_bytes(crc, "big") != crc32(header + payload):
        raise FrameDamaged("frame CRC mismatch")
    return kind, seq, payload


class VirtualClock:
    """Monotonic simulated time in (virtual) seconds."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance_to(self, when: float) -> None:
        """Move time forward to ``when`` (never backward)."""
        if when > self.now:
            self.now = when


@dataclass(frozen=True)
class ARQConfig:
    """Tunables of the go-back-N machine."""

    window: int = 8
    base_timeout: float = 1.0       # virtual seconds before first retry
    backoff_factor: float = 2.0     # exponential backoff per attempt
    max_timeout: float = 64.0       # backoff ceiling
    jitter: float = 0.1             # +/- fraction of the timeout, seeded
    retry_budget: int = 10          # retransmissions allowed per frame

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be at least 1")
        if self.retry_budget < 1:
            raise ValueError("retry budget must be at least 1")


@dataclass
class ReliableStats:
    """Per-endpoint ledger: traffic, recovery actions, and energy."""

    data_sent: int = 0
    data_received: int = 0
    acks_sent: int = 0
    acks_received: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    corrupt_dropped: int = 0
    duplicates_dropped: int = 0
    out_of_order_dropped: int = 0
    energy_tx_mj: float = 0.0
    energy_rx_mj: float = 0.0
    retransmit_energy_mj: float = 0.0

    @property
    def energy_total_mj(self) -> float:
        """All radio energy this endpoint spent."""
        return self.energy_tx_mj + self.energy_rx_mj


@dataclass
class _Pending:
    """One unacknowledged data frame in the send window."""

    frame: bytes
    attempts: int = 0
    deadline: float = 0.0


class ReliableEndpoint:
    """One side's reliable handle; duck-types ``transport.Endpoint``.

    ``send``/``receive``/``pending`` match the raw endpoint API, so the
    handshake and record layers run over ARQ unchanged.
    """

    def __init__(self, link: "ReliableLink", raw, name: str,
                 battery: Optional[Battery] = None) -> None:
        self._link = link
        self._raw = raw
        self.name = name
        self.battery = battery
        self.stats = ReliableStats()
        self._next_seq = 0
        self._window: "OrderedDict[int, _Pending]" = OrderedDict()
        self._recv_next = 0
        self._app: Deque[bytes] = deque()

    # -- public API --------------------------------------------------------

    def send(self, payload: bytes) -> None:
        """Queue one payload for reliable, in-order delivery."""
        self._pump_inbound()
        while len(self._window) >= self._link.config.window:
            if not self._link.step_time():
                raise ChannelClosed(
                    f"{self.name}: send window stalled with no timers")
            self._pump_inbound()
        seq = self._next_seq
        self._next_seq += 1
        frame = encode_frame(KIND_DATA, seq, payload)
        self._window[seq] = _Pending(
            frame=frame, attempts=0,
            deadline=self._link.clock.now + self._link.timeout_for(0))
        self.stats.data_sent += 1
        self._transmit(frame, retransmit=False)

    def receive(self) -> bytes:
        """Return the next in-order payload, driving recovery as needed.

        Raises :class:`~repro.protocols.transport.ChannelEmpty` when
        nothing was ever sent (no data, no outstanding timers) and
        :class:`RetryBudgetExhausted` when recovery gives up.
        """
        while True:
            self._pump_inbound()
            if self._app:
                return self._app.popleft()
            if not self._link.step_time():
                raise ChannelEmpty(
                    f"{self.name}: no data pending and no timers outstanding")

    def pending(self) -> int:
        """In-order payloads ready to read right now."""
        self._pump_inbound()
        return len(self._app)

    def flush(self) -> None:
        """Drive the link until every sent frame has been acknowledged."""
        while self._window:
            self._pump_inbound()
            if self._window and not self._link.step_time():
                raise ChannelClosed(
                    f"{self.name}: unacked frames but no timers outstanding")

    @property
    def unacked(self) -> int:
        """Frames sitting in the send window awaiting acknowledgement."""
        return len(self._window)

    # -- internals ---------------------------------------------------------

    def _charge(self, millijoules: float) -> None:
        if self.battery is not None:
            self.battery.drain_mj(millijoules)

    def _transmit(self, frame: bytes, retransmit: bool) -> None:
        mj = self._link.energy.frame_transmit_mj(len(frame))
        self.stats.energy_tx_mj += mj
        if retransmit:
            self.stats.retransmissions += 1
            self.stats.retransmit_energy_mj += mj
        self._charge(mj)
        self._raw.send(frame)

    def _send_ack(self) -> None:
        frame = encode_frame(KIND_ACK, self._recv_next)
        self.stats.acks_sent += 1
        mj = self._link.energy.frame_transmit_mj(len(frame))
        self.stats.energy_tx_mj += mj
        self._charge(mj)
        self._raw.send(frame)

    def _pump_inbound(self) -> int:
        processed = 0
        while True:
            try:
                raw = self._raw.receive()
            except ChannelEmpty:
                return processed
            processed += 1
            # A real close/reset propagates: the recovery layer reconnects.
            mj = self._link.energy.frame_receive_mj(len(raw))
            self.stats.energy_rx_mj += mj
            self._charge(mj)
            try:
                kind, seq, payload = decode_frame(raw)
            except FrameDamaged:
                self.stats.corrupt_dropped += 1
                continue
            if kind == KIND_DATA:
                if seq == self._recv_next:
                    self._app.append(payload)
                    self._recv_next += 1
                    self.stats.data_received += 1
                elif seq < self._recv_next:
                    self.stats.duplicates_dropped += 1
                else:
                    # Go-back-N receiver: discard out-of-order frames;
                    # the cumulative ack below triggers the resend.
                    self.stats.out_of_order_dropped += 1
                self._send_ack()
            else:
                self.stats.acks_received += 1
                while self._window and next(iter(self._window)) < seq:
                    self._window.popitem(last=False)

    def _earliest_deadline(self) -> Optional[float]:
        if not self._window:
            return None
        return next(iter(self._window.values())).deadline

    def _handle_timeouts(self) -> None:
        if not self._window:
            return
        oldest = next(iter(self._window.values()))
        if oldest.deadline > self._link.clock.now:
            return
        # Go-back-N: the single (oldest-frame) timer fired — retransmit
        # the whole window with backed-off deadlines.
        self.stats.timeouts += 1
        with probe.span("arq.retransmit", endpoint=self.name,
                        window=len(self._window)):
            for seq, pending in self._window.items():
                pending.attempts += 1
                if pending.attempts > self._link.config.retry_budget:
                    raise RetryBudgetExhausted(
                        f"{self.name}: frame {seq} exceeded retry budget of "
                        f"{self._link.config.retry_budget}")
                pending.deadline = (
                    self._link.clock.now
                    + self._link.timeout_for(pending.attempts))
                self._transmit(pending.frame, retransmit=True)


class ReliableLink:
    """A pair of :class:`ReliableEndpoint` over one (lossy) channel.

    The link owns the virtual clock, the energy model, and the seeded
    jitter source, and is the scheduler that fires both sides' timers
    when either side waits — the discrete-event core of the lossy-link
    harness.
    """

    def __init__(self, channel: Optional[DuplexChannel] = None,
                 config: Optional[ARQConfig] = None,
                 energy: Optional[EnergyModel] = None,
                 battery_a: Optional[Battery] = None,
                 battery_b: Optional[Battery] = None,
                 seed: int = 0) -> None:
        self.channel = channel or DuplexChannel()
        self.config = config or ARQConfig()
        self.energy = energy or EnergyModel()
        self.clock = VirtualClock()
        self._jitter = DeterministicDRBG(("arq-jitter", seed).__repr__())
        self._a = ReliableEndpoint(
            self, self.channel.endpoint_a(), "arq-a", battery_a)
        self._b = ReliableEndpoint(
            self, self.channel.endpoint_b(), "arq-b", battery_b)

    def endpoint_a(self) -> ReliableEndpoint:
        """The reliable endpoint on side A."""
        return self._a

    def endpoint_b(self) -> ReliableEndpoint:
        """The reliable endpoint on side B."""
        return self._b

    def timeout_for(self, attempts: int) -> float:
        """Backed-off timeout for a frame on its ``attempts``-th retry,
        with seeded jitter so synchronized retry storms decohere."""
        base = min(
            self.config.base_timeout * self.config.backoff_factor ** attempts,
            self.config.max_timeout)
        spread = self.config.jitter * (2.0 * self._jitter.random() - 1.0)
        return base * (1.0 + spread)

    def step_time(self) -> bool:
        """Make link-level progress; returns False when none is possible.

        Models both peers' always-on link layers: first drain any
        frames already in flight (delivering data to app queues and
        generating acks without any time passing); only when the link
        is quiet does virtual time jump to the next retransmission
        deadline and fire both sides' timers.
        """
        progressed = False
        for endpoint in (self._a, self._b):
            if endpoint._pump_inbound() > 0:
                progressed = True
        if progressed:
            return True
        deadlines = [d for d in (self._a._earliest_deadline(),
                                 self._b._earliest_deadline())
                     if d is not None]
        if not deadlines:
            return False
        self.clock.advance_to(min(deadlines))
        for endpoint in (self._a, self._b):
            endpoint._handle_timeouts()
        return True

    @property
    def total_retransmissions(self) -> int:
        """Both directions' retransmission count."""
        return (self._a.stats.retransmissions
                + self._b.stats.retransmissions)

    @property
    def total_timeouts(self) -> int:
        """Both directions' timer expiries."""
        return self._a.stats.timeouts + self._b.stats.timeouts

    @property
    def total_energy_mj(self) -> float:
        """Radio energy spent across both endpoints."""
        return (self._a.stats.energy_total_mj
                + self._b.stats.energy_total_mj)
