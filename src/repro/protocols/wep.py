"""WEP — 802.11 Wired Equivalent Privacy, weaknesses included.

Section 3.1 names WEP as the link-layer algorithm a WLAN-enabled PDA
must run, and §2 cites the literature showing it "can be easily broken
or compromised" ([21]-[23]).  This implementation is deliberately
*faithful to the broken design* so :mod:`repro.attacks.wep_attacks`
can demonstrate the breaks against it:

* per-frame key = ``IV(3 bytes) || shared key`` fed to RC4 — the
  related-key structure behind the FMS attack family;
* 24-bit IV — guaranteed keystream reuse within ~16.7 M frames (far
  sooner in practice with the default counter IVs);
* CRC-32 ICV — linear, so bit-flipping forgeries patch the checksum
  without the key.

:class:`WEPStation` is one 802.11 station; frames interoperate between
stations sharing the key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..crypto.crc import crc32_bytes
from ..crypto.errors import InvalidKeyLength
from ..crypto.rc4 import RC4
from .alerts import BadRecordMAC, DecodeError

IV_BYTES = 3
ICV_BYTES = 4


@dataclass(frozen=True)
class WEPFrame:
    """One protected 802.11 frame: cleartext IV + key id + ciphertext."""

    iv: bytes
    key_id: int
    ciphertext: bytes

    def to_bytes(self) -> bytes:
        """Wire encoding."""
        return self.iv + bytes([self.key_id]) + self.ciphertext

    @classmethod
    def from_bytes(cls, blob: bytes) -> "WEPFrame":
        """Parse a wire frame."""
        if len(blob) < IV_BYTES + 1 + ICV_BYTES:
            raise DecodeError("WEP frame too short")
        return cls(
            iv=blob[:IV_BYTES], key_id=blob[IV_BYTES],
            ciphertext=blob[IV_BYTES + 1 :],
        )


class WEPStation:
    """A WEP endpoint with a 40- or 104-bit shared key.

    ``iv_mode`` selects the IV strategy real firmware used:
    ``counter`` (sequential from zero — rapid, *predictable* reuse
    after reset) or ``random`` (birthday-bounded reuse).  Both are
    insecure; the attacks quantify how fast each one fails.
    """

    def __init__(self, key: bytes, iv_mode: str = "counter",
                 rng=None) -> None:
        if len(key) not in (5, 13):
            raise InvalidKeyLength("WEP", len(key), "5 (WEP-40) or 13 (WEP-104)")
        if iv_mode not in ("counter", "random"):
            raise ValueError(f"unknown IV mode {iv_mode!r}")
        if iv_mode == "random" and rng is None:
            raise ValueError("random IV mode requires an rng")
        self.key = key
        self.iv_mode = iv_mode
        self._rng = rng
        self._iv_counter = 0
        self.frames_sent = 0

    def _next_iv(self) -> bytes:
        if self.iv_mode == "counter":
            iv = (self._iv_counter % (1 << 24)).to_bytes(IV_BYTES, "big")
            self._iv_counter += 1
            return iv
        return self._rng.random_bytes(IV_BYTES)

    def keystream_for_iv(self, iv: bytes, length: int) -> bytes:
        """The RC4 keystream WEP derives for a given IV (attack surface)."""
        return RC4(iv + self.key).keystream(length)

    def encrypt(self, plaintext: bytes, iv: Optional[bytes] = None) -> WEPFrame:
        """Protect one frame: append CRC-32 ICV, XOR with per-IV keystream."""
        iv = iv if iv is not None else self._next_iv()
        body = plaintext + crc32_bytes(plaintext)
        cipher = RC4(iv + self.key)
        self.frames_sent += 1
        return WEPFrame(iv=iv, key_id=0, ciphertext=cipher.process(body))

    def decrypt(self, frame: WEPFrame) -> bytes:
        """Open one frame, validating the ICV.

        The ICV is a CRC — it detects noise, not adversaries; the
        bit-flip attack forges frames that pass this check.
        """
        body = RC4(frame.iv + self.key).process(frame.ciphertext)
        if len(body) < ICV_BYTES:
            raise DecodeError("WEP frame body shorter than ICV")
        plaintext, icv = body[:-ICV_BYTES], body[-ICV_BYTES:]
        if crc32_bytes(plaintext) != icv:
            raise BadRecordMAC("WEP ICV check failed")
        return plaintext
