"""Batched zero-copy record plane shared by mini-TLS and WTLS.

The paper frames security processing as a *throughput* problem: thin
appliances must push protected records as fast as the hardware allows
(§3.2's processing-gap numbers are records-per-second numbers).  PR 1
made the crypto kernels fast; this module removes the per-record object
churn that remained in the record layer itself:

* **precompiled per-suite closures** — each encoder/decoder compiles
  its suite's seal/open pipeline once at construction, so the per
  record work is the crypto plus a couple of attribute stores, with no
  per-record dispatch over ``suite.cipher_kind``;
* **one amortized HMAC pad-state clone chain** — the connection's
  keyed :class:`~repro.crypto.hmac.HMAC` is built once and every
  record MAC is two hash-state clones (:meth:`HMAC.mac`), never a
  re-key;
* **a single carried CBC context** — block suites keep one
  :class:`~repro.crypto.modes.CBC` per direction and chain the residue
  (:meth:`CBC.encrypt_next` / :meth:`CBC.decrypt_next`) instead of
  building a fresh mode object per record;
* **memoryview framing** — :func:`decode_batch` walks one buffer with
  ``memoryview`` slices; record bodies are never copied out of the
  batch buffer before the cipher/MAC consume them.

Transactional decoder contract
------------------------------

A record that fails verification must leave the decoder exactly as it
was: the CBC residue IV is committed only after the MAC check passes
(:meth:`CBC.decrypt_next` with ``commit=False``), stream-cipher
keystream position is snapshotted and restored on failure, and the
implicit sequence number advances only on success.  This is what makes
batches safe — one tampered record in a batch surfaces as a
:class:`BatchRecordError` without poisoning its neighbours — and it
fixes the single-record bug where a tampered record permanently
desynchronised the CBC chain for every later *valid* record.

Both-path rule: the single-record ``encode``/``decode`` API delegates
to the same compiled closures, so the differential oracles and the
official-vector corpus exercise the batched pipeline even when driven
one record at a time.
"""

from __future__ import annotations

from hmac import compare_digest
from typing import Callable, Iterable, List, Tuple

from ..crypto import fastpath
from ..crypto.bitops import constant_time_compare
from ..crypto.errors import InvalidBlockSize, PaddingError
from ..crypto.hmac import HMAC
from ..crypto.modes import CBC
from ..observability import probe
from ..observability.attribution import record_cycles
from .alerts import (
    BadRecordMAC,
    DecodeError,
    ProtocolAlert,
    RecordOverflow,
    RenegotiationRequired,
    ReplayError,
)

#: TLS 1.0 §6.2.1 plaintext fragment ceiling (2^14 bytes).
MAX_FRAGMENT = 1 << 14
#: Last sequence number the TLS MAC header's 64-bit field can carry.
TLS_MAX_SEQUENCE = (1 << 64) - 1
#: Last sequence number WTLS's explicit 32-bit wire field can carry.
WTLS_MAX_SEQUENCE = (1 << 32) - 1
#: WTLS truncates record MACs to 10 bytes (constrained profile).
WTLS_MAC_BYTES = 10

_TLS_HEADER = 3   # type(1) | length(2)
_WTLS_HEADER = 6  # seq(4) | length(2)


class BatchRecordError(ProtocolAlert):
    """One record inside a batch failed; its neighbours are intact.

    Carries the zero-based ``index`` of the failing record, the list of
    records already ``decoded`` (the transactional contract guarantees
    they are committed and the decoder state is positioned exactly
    after them), and the underlying ``cause`` alert.
    """

    def __init__(self, index: int, decoded: list, cause: Exception) -> None:
        super().__init__(f"record {index} of batch failed: {cause}")
        self.index = index
        self.decoded = decoded
        self.cause = cause


def _mac_fn(mac_base: HMAC) -> Callable[[bytes, bytes], bytes]:
    """Per-message MAC closure over a keyed HMAC's cached pad states.

    When both pad states are backed by the hashlib fast path, the
    closure clones those handles directly — the same two-clone chain as
    :meth:`HMAC.mac` minus the wrapper attribute traffic.  Otherwise it
    falls back to :meth:`HMAC.mac` (reference hash loops).  Both paths
    are bit-identical; the differential tests pin them.

    The closure takes the MAC input as ``(prefix, payload)`` — two
    hash updates instead of one concatenation, so a 1 KiB payload is
    never copied just to prepend its 11-byte pseudo-header.
    """
    inner = getattr(mac_base._inner, "_impl", None)
    outer = getattr(mac_base._outer, "_impl", None)
    if inner is None or outer is None:
        reference = mac_base.mac

        def mac(prefix: bytes, payload) -> bytes:
            if type(payload) is not bytes:
                payload = bytes(payload)
            return reference(prefix + payload)

        return mac
    inner_copy = inner.copy
    outer_copy = outer.copy

    def mac(prefix: bytes, payload) -> bytes:
        h = inner_copy()
        h.update(prefix)
        h.update(payload)
        o = outer_copy()
        o.update(h.digest())
        return o.digest()

    return mac


# ---------------------------------------------------------------------------
# mini-TLS: implicit 64-bit sequence, MAC-then-encrypt, residue-chained CBC
# ---------------------------------------------------------------------------


def compile_tls_encoder(encoder):
    """Compile a :class:`~repro.protocols.records.RecordEncoder`'s suite
    into ``(encode_one, encode_parts)`` closures.

    ``encode_parts(content_type, payload, append)`` emits the record as
    wire fragments via ``append`` — the batched path joins all records'
    fragments once, so a NULL-cipher record never copies its payload at
    all (``b"".join`` consumes the caller's ``memoryview`` directly).
    ``encode_one`` is the single-record wrapper over the same closure,
    which is what keeps the two paths byte-identical by construction.
    """
    mac = _mac_fn(encoder._mac_base)
    mac_len = encoder._mac_base.digest_size
    stream = encoder._stream
    cbc = encoder._cbc
    if stream is not None:
        seal = stream.process
    elif cbc is not None:
        seal = cbc.encrypt_next
    else:
        seal = None

    def encode_parts(content_type: int, payload, append) -> None:
        sequence = encoder._sequence
        if sequence > TLS_MAX_SEQUENCE:
            raise RenegotiationRequired(
                "TLS record sequence space exhausted (2^64 records sent): "
                "re-handshake to refresh keys before sending more data"
            )
        length = len(payload)
        if length > MAX_FRAGMENT:
            raise RecordOverflow(
                f"record payload of {length} bytes exceeds the 2^14-byte "
                f"TLS fragment ceiling; encode_batch fragments automatically"
            )
        # seq(8) | type(1) | length(2), packed as one 11-byte big-endian
        # integer write instead of three allocations and a concat.
        tag = mac(
            ((sequence << 24) | (content_type << 16) | length)
            .to_bytes(11, "big"),
            payload,
        )
        if seal is None:
            body_len = length + mac_len
            append(bytes((content_type, body_len >> 8, body_len & 0xFF)))
            append(payload)
            append(tag)
        else:
            if type(payload) is not bytes:
                payload = bytes(payload)
            body = seal(payload + tag)
            body_len = len(body)
            append(bytes((content_type, body_len >> 8, body_len & 0xFF)))
            append(body)
        encoder._sequence = sequence + 1

    def encode_one(content_type: int, payload: bytes) -> bytes:
        parts: List[bytes] = []
        encode_parts(content_type, payload, parts.append)
        return b"".join(parts)

    def encode_span(items, max_fragment: int, append) -> int:
        emitted = 0
        for content_type, payload in items:
            length = len(payload)
            if length > max_fragment:
                view = memoryview(payload)
                for offset in range(0, length, max_fragment):
                    encode_parts(content_type,
                                 view[offset:offset + max_fragment], append)
                    emitted += 1
            else:
                encode_parts(content_type, payload, append)
                emitted += 1
        return emitted

    inner = getattr(encoder._mac_base._inner, "_impl", None)
    outer = getattr(encoder._mac_base._outer, "_impl", None)
    if seal is None and inner is not None and outer is not None:
        generic_encode_span = encode_span
        inner_copy = inner.copy
        outer_copy = outer.copy

        def encode_span(items, max_fragment: int, append) -> int:
            # Fused walk for cipherless suites on the hashlib-backed
            # fast path — MAC clone chain and framing inlined into one
            # loop frame, no per-record closure calls.  Byte-identical
            # to the generic walk (the hypothesis equivalence property
            # and the record-batch oracle pin it); oversize payloads
            # and sequence exhaustion delegate to the generic path for
            # its exact fragmenting/alert behaviour.
            sequence = encoder._sequence
            emitted = 0
            try:
                for content_type, payload in items:
                    length = len(payload)
                    if length > max_fragment or sequence > TLS_MAX_SEQUENCE:
                        encoder._sequence = sequence
                        emitted += generic_encode_span(
                            [(content_type, payload)], max_fragment, append)
                        sequence = encoder._sequence
                        continue
                    h = inner_copy()
                    h.update(
                        ((sequence << 24) | (content_type << 16) | length)
                        .to_bytes(11, "big"))
                    h.update(payload)
                    o = outer_copy()
                    o.update(h.digest())
                    body_len = length + mac_len
                    append(bytes(
                        (content_type, body_len >> 8, body_len & 0xFF)))
                    append(payload)
                    append(o.digest())
                    sequence += 1
                    emitted += 1
            finally:
                encoder._sequence = sequence
            return emitted

    return encode_one, encode_parts, encode_span


def compile_tls_decoder(decoder):
    """Compile a :class:`~repro.protocols.records.RecordDecoder`'s suite
    into ``(open_one, open_span)`` closures.

    ``open_one(content_type, body)`` opens a single record; ``body`` is
    the record body *without* the 3-byte header — a ``memoryview``
    slice on the batched path.  State (sequence, CBC residue, stream
    keystream position) commits only after the MAC verifies: the
    transactional contract.

    ``open_span(view)`` walks a buffer of concatenated records and
    returns ``[(type, payload)]``, raising :class:`BatchRecordError` on
    the first failing record.  For cipherless suites the walk is fused
    — header parse, MAC, compare and sequence commit in one loop frame
    with no per-record function calls, which is where the record layer
    itself (not the cipher) is the bottleneck.  Ciphered suites share
    the generic walk over ``open_one``; their per-record cost is the
    cipher kernel, not dispatch.
    """
    mac = _mac_fn(decoder._mac_base)
    mac_len = decoder._mac_base.digest_size
    stream = decoder._stream
    cbc = decoder._cbc

    def _verify(sequence: int, content_type: int, protected: bytes):
        if len(protected) < mac_len:
            raise BadRecordMAC("record too short to hold MAC")
        length = len(protected) - mac_len
        payload = bytes(protected[:length])
        expected = mac(
            ((sequence << 24) | (content_type << 16) | length)
            .to_bytes(11, "big"),
            payload,
        )
        if not constant_time_compare(expected, protected[length:]):
            raise BadRecordMAC("record MAC verification failed")
        return payload

    if stream is not None:
        def open_one(content_type: int, body) -> Tuple[int, bytes]:
            sequence = decoder._sequence
            if sequence > TLS_MAX_SEQUENCE:
                raise RenegotiationRequired(
                    "TLS record sequence space exhausted (2^64 records "
                    "received): re-handshake to refresh keys"
                )
            snapshot = stream.save_state()
            try:
                payload = _verify(sequence, content_type, stream.process(body))
            except ProtocolAlert:
                stream.restore_state(snapshot)  # tampering must not eat keystream
                raise
            decoder._sequence = sequence + 1
            return content_type, payload
    elif cbc is not None:
        def open_one(content_type: int, body) -> Tuple[int, bytes]:
            sequence = decoder._sequence
            if sequence > TLS_MAX_SEQUENCE:
                raise RenegotiationRequired(
                    "TLS record sequence space exhausted (2^64 records "
                    "received): re-handshake to refresh keys"
                )
            try:
                protected = cbc.decrypt_next(body, commit=False)
            except (PaddingError, InvalidBlockSize) as exc:
                raise BadRecordMAC(f"padding invalid: {exc}") from exc
            payload = _verify(sequence, content_type, protected)
            cbc.commit_residue(body)  # only a verified record advances the chain
            decoder._sequence = sequence + 1
            return content_type, payload
    else:
        def open_one(content_type: int, body) -> Tuple[int, bytes]:
            sequence = decoder._sequence
            if sequence > TLS_MAX_SEQUENCE:
                raise RenegotiationRequired(
                    "TLS record sequence space exhausted (2^64 records "
                    "received): re-handshake to refresh keys"
                )
            payload = _verify(sequence, content_type, body)
            decoder._sequence = sequence + 1
            return content_type, payload

    def open_span(view) -> List[Tuple[int, bytes]]:
        out: List[Tuple[int, bytes]] = []
        append = out.append
        offset = 0
        total = len(view)
        while offset < total:
            if total - offset < _TLS_HEADER:
                raise BatchRecordError(
                    len(out), out,
                    DecodeError("batch truncated inside a record header"))
            length = (view[offset + 1] << 8) | view[offset + 2]
            end = offset + _TLS_HEADER + length
            if end > total:
                raise BatchRecordError(
                    len(out), out,
                    DecodeError(
                        f"record length field {length} overruns batch "
                        f"({total - offset - _TLS_HEADER} bytes left)"))
            try:
                append(open_one(view[offset], view[offset + _TLS_HEADER:end]))
            except ProtocolAlert as exc:
                raise BatchRecordError(len(out), out, exc) from exc
            offset = end
        return out

    inner = getattr(decoder._mac_base._inner, "_impl", None)
    outer = getattr(decoder._mac_base._outer, "_impl", None)
    if stream is None and cbc is None and inner is not None \
            and outer is not None:
        generic_span = open_span
        inner_copy = inner.copy
        outer_copy = outer.copy

        def open_span(view) -> List[Tuple[int, bytes]]:
            # Fused walk for cipherless suites on the hashlib-backed
            # fast path — header parse, MAC clone chain, compare and
            # sequence commit in one loop frame, no per-record closure
            # calls.  Identical behaviour to the generic walk (the
            # hypothesis equivalence property and the record-batch
            # oracle pin it).  Anything unusual — truncation, short
            # record, MAC mismatch, sequence wrap — breaks to the
            # generic walk, which raises with the exact single-record
            # alert and transactional bookkeeping; only its
            # index/decoded are re-based onto this batch.
            out: List[Tuple[int, bytes]] = []
            append = out.append
            offset = 0
            total = len(view)
            sequence = decoder._sequence
            while offset < total:
                if total - offset < _TLS_HEADER:
                    break  # slow path raises the truncation alert
                length = (view[offset + 1] << 8) | view[offset + 2]
                end = offset + _TLS_HEADER + length
                if (end > total or length < mac_len
                        or sequence > TLS_MAX_SEQUENCE):
                    break  # slow path raises with the exact message
                content_type = view[offset]
                plen = length - mac_len
                payload = bytes(
                    view[offset + _TLS_HEADER:offset + _TLS_HEADER + plen])
                h = inner_copy()
                h.update(
                    ((sequence << 24) | (content_type << 16) | plen)
                    .to_bytes(11, "big"))
                h.update(payload)
                o = outer_copy()
                o.update(h.digest())
                if not compare_digest(
                        o.digest(), view[offset + _TLS_HEADER + plen:end]):
                    break  # slow path raises BadRecordMAC
                append((content_type, payload))
                sequence += 1
                offset = end
            decoder._sequence = sequence
            if offset < total:
                try:
                    out.extend(generic_span(view[offset:]))
                except BatchRecordError as exc:
                    raise BatchRecordError(
                        len(out) + exc.index, out + exc.decoded, exc.cause
                    ) from exc.cause
            return out

    return open_one, open_span


def _encode_batch(encoder, items, max_fragment: int) -> Tuple[bytes, int]:
    if not 0 < max_fragment <= MAX_FRAGMENT:
        raise ValueError(
            f"max_fragment must be in 1..{MAX_FRAGMENT}, got {max_fragment}"
        )
    parts: List[bytes] = []
    emitted = encoder._encode_span(items, max_fragment, parts.append)
    return b"".join(parts), emitted


def encode_batch(encoder, items: Iterable[Tuple[int, bytes]],
                 max_fragment: int = MAX_FRAGMENT) -> bytes:
    """Protect N ``(content_type, payload)`` items into one wire buffer.

    Concatenated records — a batch of one is byte-identical to
    :meth:`~repro.protocols.records.RecordEncoder.encode`.  Payloads
    larger than ``max_fragment`` are fragmented across consecutive
    records (TLS's answer to the 2^14 ceiling) instead of erroring.
    """
    telemetry = probe.active
    if telemetry is None:              # hot path: one read, one branch
        return _encode_batch(encoder, items, max_fragment)[0]
    items = list(items)
    suite = encoder.suite
    with telemetry.span(
            "record.encode_batch", layer=encoder.layer, suite=suite.name,
            path=fastpath.dispatch_path()) as span:
        buffer, emitted = _encode_batch(encoder, items, max_fragment)
        payload_bytes = sum(len(payload) for _, payload in items)
        telemetry.add_cycles(
            record_cycles(suite.cipher, suite.mac, payload_bytes),
            kind="record")
        span.set(records=emitted, n=payload_bytes)
        return buffer


def _decode_batch(decoder, buffer) -> List[Tuple[int, bytes]]:
    return decoder._decode_span(memoryview(buffer))


def decode_batch(decoder, buffer: bytes) -> List[Tuple[int, bytes]]:
    """Open a buffer of concatenated records -> ``[(type, payload)]``.

    Walks the buffer with ``memoryview`` slices (record bodies are
    never copied before the cipher/MAC consume them).  A failing record
    raises :class:`BatchRecordError` carrying everything decoded before
    it; thanks to the transactional decoder the caller can resume — a
    retransmission of the genuine record will verify.
    """
    telemetry = probe.active
    if telemetry is None:              # hot path: one read, one branch
        return _decode_batch(decoder, buffer)
    suite = decoder.suite
    with telemetry.span(
            "record.decode_batch", layer=decoder.layer, suite=suite.name,
            n=len(buffer), path=fastpath.dispatch_path()) as span:
        try:
            records = _decode_batch(decoder, buffer)
        except BatchRecordError as exc:
            span.set(error=type(exc.cause).__name__, index=exc.index)
            raise
        payload_bytes = sum(len(payload) for _, payload in records)
        telemetry.add_cycles(
            record_cycles(suite.cipher, suite.mac, payload_bytes),
            kind="record")
        span.set(records=len(records))
        return records


# ---------------------------------------------------------------------------
# WTLS: explicit 32-bit sequence, truncated MAC, loss-tolerant records
# ---------------------------------------------------------------------------


def compile_wtls_encoder(encoder) -> Callable[[bytes], bytes]:
    """Compile a WTLS encoder's suite into ``encode_one(payload)``.

    The per-record key/IV derivations (``key xor seq``, ``iv xor seq``)
    collapse to one big-int XOR each; block suites reuse one cached
    cipher instance (the key schedule is per-connection, only the IV is
    per-record)."""
    suite = encoder.suite
    mac = _mac_fn(encoder._mac_base)
    key = encoder._key
    iv = encoder._iv
    if suite.cipher == "NULL":
        seal = None
    elif suite.cipher_kind == "stream":
        make_cipher = suite.make_cipher
        key_int = int.from_bytes(key, "big")
        key_len = len(key)

        def seal(sequence: int, protected: bytes) -> bytes:
            # Per-record re-key from key xor seq (loss tolerance).
            return make_cipher(
                (key_int ^ sequence).to_bytes(key_len, "big")
            ).process(protected)
    else:
        cipher = suite.make_cipher(key)
        iv_int = int.from_bytes(iv, "big")
        iv_len = len(iv)

        def seal(sequence: int, protected: bytes) -> bytes:
            record_iv = ((iv_int ^ sequence).to_bytes(iv_len, "big")
                         if iv_len else b"")
            return CBC(cipher, record_iv).encrypt(protected)

    def encode_one(payload: bytes) -> bytes:
        sequence = encoder._sequence
        if sequence > WTLS_MAX_SEQUENCE:
            raise RenegotiationRequired(
                "WTLS record sequence space exhausted (2^32 records sent): "
                "re-handshake to refresh keys before sending more data"
            )
        if len(payload) > MAX_FRAGMENT:
            raise RecordOverflow(
                f"record payload of {len(payload)} bytes exceeds the "
                f"2^14-byte fragment ceiling; send_batch fragments "
                f"automatically"
            )
        if type(payload) is not bytes:
            payload = bytes(payload)
        header = sequence.to_bytes(4, "big")
        protected = payload + mac(header, payload)[:WTLS_MAC_BYTES]
        body = seal(sequence, protected) if seal is not None else protected
        encoder._sequence = sequence + 1
        body_len = len(body)
        return header + bytes((body_len >> 8, body_len & 0xFF)) + body

    return encode_one


def compile_wtls_decoder(decoder) -> Callable[[int, bytes], Tuple[int, bytes]]:
    """Compile a WTLS decoder's suite into ``open_one(sequence, body)``.

    The WTLS decoder was already transactional by construction — replay
    set and counters commit only after the MAC verifies; per-record
    keys/IVs mean there is no chained state to poison."""
    suite = decoder.suite
    mac = _mac_fn(decoder._mac_base)
    key = decoder._key
    iv = decoder._iv
    if suite.cipher == "NULL":
        unseal = None
    elif suite.cipher_kind == "stream":
        make_cipher = suite.make_cipher
        key_int = int.from_bytes(key, "big")
        key_len = len(key)

        def unseal(sequence: int, body) -> bytes:
            return make_cipher(
                (key_int ^ sequence).to_bytes(key_len, "big")
            ).process(body)
    else:
        cipher = suite.make_cipher(key)
        iv_int = int.from_bytes(iv, "big")
        iv_len = len(iv)

        def unseal(sequence: int, body) -> bytes:
            record_iv = ((iv_int ^ sequence).to_bytes(iv_len, "big")
                         if iv_len else b"")
            try:
                return CBC(cipher, record_iv).decrypt(bytes(body))
            except PaddingError as exc:
                if decoder.distinguishable_errors:
                    raise  # the Vaudenay-era flaw: padding error visible
                raise BadRecordMAC(f"WTLS padding invalid: {exc}") from exc
            except InvalidBlockSize as exc:
                raise BadRecordMAC(f"WTLS body misaligned: {exc}") from exc

    def open_one(sequence: int, body) -> Tuple[int, bytes]:
        if sequence in decoder._seen:
            raise ReplayError(f"WTLS record {sequence} replayed")
        protected = unseal(sequence, body) if unseal is not None else body
        if len(protected) < WTLS_MAC_BYTES:
            raise BadRecordMAC("WTLS record too short for MAC")
        length = len(protected) - WTLS_MAC_BYTES
        payload = bytes(protected[:length])
        expected = mac(sequence.to_bytes(4, "big"), payload)[:WTLS_MAC_BYTES]
        if not constant_time_compare(expected, protected[length:]):
            raise BadRecordMAC("WTLS MAC verification failed")
        decoder._seen.add(sequence)
        if sequence > decoder.highest_sequence:
            decoder.highest_sequence = sequence
        decoder.received += 1
        return sequence, payload

    return open_one


def _wtls_encode_batch(encoder, payloads, max_fragment: int) -> Tuple[bytes, int]:
    if not 0 < max_fragment <= MAX_FRAGMENT:
        raise ValueError(
            f"max_fragment must be in 1..{MAX_FRAGMENT}, got {max_fragment}"
        )
    encode_one = encoder._encode_one
    parts: List[bytes] = []
    append = parts.append
    emitted = 0
    for payload in payloads:
        length = len(payload)
        if length > max_fragment:
            view = memoryview(payload)
            for offset in range(0, length, max_fragment):
                append(encode_one(view[offset:offset + max_fragment]))
                emitted += 1
        else:
            append(encode_one(payload))
            emitted += 1
    return b"".join(parts), emitted


def wtls_encode_batch(encoder, payloads: Iterable[bytes],
                      max_fragment: int = MAX_FRAGMENT) -> bytes:
    """Protect N datagram payloads into one buffer of WTLS records."""
    telemetry = probe.active
    if telemetry is None:              # hot path: one read, one branch
        return _wtls_encode_batch(encoder, payloads, max_fragment)[0]
    payloads = list(payloads)
    suite = encoder.suite
    with telemetry.span(
            "record.encode_batch", layer="wtls", suite=suite.name,
            path=fastpath.dispatch_path()) as span:
        buffer, emitted = _wtls_encode_batch(encoder, payloads, max_fragment)
        payload_bytes = sum(len(payload) for payload in payloads)
        telemetry.add_cycles(
            record_cycles(suite.cipher, suite.mac, payload_bytes),
            kind="record")
        span.set(records=emitted, n=payload_bytes)
        return buffer


def _wtls_decode_batch(decoder, buffer, skip_damaged: bool):
    view = memoryview(buffer)
    open_one = decoder._decode_one
    out: List[Tuple[int, bytes]] = []
    damaged: List[ProtocolAlert] = []
    offset = 0
    total = len(view)
    while offset < total:
        if total - offset < _WTLS_HEADER:
            exc: ProtocolAlert = DecodeError(
                "batch truncated inside a WTLS record header")
            if skip_damaged:
                damaged.append(exc)
                break  # no length field to resynchronise on
            raise BatchRecordError(len(out), out, exc)
        sequence = (
            (view[offset] << 24) | (view[offset + 1] << 16)
            | (view[offset + 2] << 8) | view[offset + 3]
        )
        length = (view[offset + 4] << 8) | view[offset + 5]
        end = offset + _WTLS_HEADER + length
        if end > total:
            exc = DecodeError(
                f"WTLS record length field {length} overruns batch "
                f"({total - offset - _WTLS_HEADER} bytes left)")
            if skip_damaged:
                damaged.append(exc)
                break
            raise BatchRecordError(len(out), out, exc)
        try:
            out.append(open_one(sequence, view[offset + _WTLS_HEADER:end]))
        except (BadRecordMAC, DecodeError, ReplayError) as exc2:
            if not skip_damaged:
                raise BatchRecordError(len(out), out, exc2) from exc2
            damaged.append(exc2)
        offset = end
    return out, damaged


def wtls_decode_batch(decoder, buffer: bytes, skip_damaged: bool = False
                      ) -> Tuple[List[Tuple[int, bytes]], List[ProtocolAlert]]:
    """Open a buffer of WTLS records -> ``([(sequence, payload)], damaged)``.

    With ``skip_damaged`` (the datagram discipline of
    :meth:`~repro.protocols.wtls.WTLSConnection.receive_next`) corrupt,
    replayed, or truncated records are collected in ``damaged`` and the
    walk continues at the next record; otherwise the first failure
    raises :class:`BatchRecordError`.
    """
    telemetry = probe.active
    if telemetry is None:              # hot path: one read, one branch
        return _wtls_decode_batch(decoder, buffer, skip_damaged)
    suite = decoder.suite
    with telemetry.span(
            "record.decode_batch", layer="wtls", suite=suite.name,
            n=len(buffer), path=fastpath.dispatch_path()) as span:
        try:
            records, damaged = _wtls_decode_batch(decoder, buffer, skip_damaged)
        except BatchRecordError as exc:
            span.set(error=type(exc.cause).__name__, index=exc.index)
            raise
        payload_bytes = sum(len(payload) for _, payload in records)
        telemetry.add_cycles(
            record_cycles(suite.cipher, suite.mac, payload_bytes),
            kind="record")
        span.set(records=len(records), damaged=len(damaged))
        return records, damaged
