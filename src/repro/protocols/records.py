"""Record layer: sequence-numbered, MAC-then-encrypt framing.

The transport-layer protection shared by mini-TLS and WTLS (§2's
"secure transport service interface").  Each record is::

    type(1) | length(2) | ciphertext( payload | HMAC(mac_key, seq |
    type | length | payload) [| CBC padding] )

MAC-then-encrypt with an explicit 64-bit implicit sequence number, per
the SSL 3.0/TLS 1.0 design the paper's era used.  Tampering, record
reordering, and truncation all surface as
:class:`~repro.protocols.alerts.BadRecordMAC`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..crypto import fastpath
from ..crypto.bitops import constant_time_compare
from ..crypto.errors import InvalidBlockSize, PaddingError
from ..crypto.hmac import HMAC
from ..crypto.modes import CBC
from ..crypto.rc4 import RC4
from ..observability import probe
from ..observability.attribution import record_cycles
from .alerts import BadRecordMAC, DecodeError
from .ciphersuites import CipherSuite
from .kdf import KeyBlock

CONTENT_HANDSHAKE = 22
CONTENT_APPLICATION = 23
CONTENT_ALERT = 21


class RecordEncoder:
    """One direction of record protection (write side)."""

    def __init__(self, suite: CipherSuite, cipher_key: bytes, mac_key: bytes,
                 iv: bytes) -> None:
        self.suite = suite
        self._mac_key = mac_key
        # One keyed HMAC per connection direction; per-record MACs clone
        # its precomputed pad states instead of rekeying (the record-layer
        # half of the fast-path key-schedule caching).
        self._mac_base = HMAC(mac_key, suite.hash_factory)
        self._sequence = 0
        if suite.cipher == "NULL":
            self._stream: Optional[RC4] = None
            self._cipher = None
        elif suite.cipher_kind == "stream":
            self._stream = suite.make_cipher(cipher_key)
            self._cipher = None
        else:
            self._stream = None
            self._cipher = suite.make_cipher(cipher_key)
            self._iv = iv

    @property
    def sequence(self) -> int:
        """Next record's implicit sequence number (diagnostics: the
        recovery layer reads it to report how far a session got before
        teardown)."""
        return self._sequence

    def _mac(self, content_type: int, payload: bytes) -> bytes:
        header = (
            self._sequence.to_bytes(8, "big")
            + bytes([content_type])
            + len(payload).to_bytes(2, "big")
        )
        return self._mac_base.copy().update(header + payload).digest()

    #: Span attribute distinguishing mini-TLS from WTLS record paths.
    layer = "tls"

    def encode(self, content_type: int, payload: bytes) -> bytes:
        """Protect one payload into a wire record."""
        telemetry = probe.active
        if telemetry is None:          # hot path: one read, one branch
            return self._encode(content_type, payload)
        suite = self.suite
        cipher = self._stream if self._stream is not None else self._cipher
        with telemetry.span(
                "record.encode", layer=self.layer, suite=suite.name,
                n=len(payload),
                path=fastpath.dispatch_path(
                    getattr(cipher, "recorder", None))):
            telemetry.add_cycles(
                record_cycles(suite.cipher, suite.mac, len(payload)),
                kind="record")
            return self._encode(content_type, payload)

    def _encode(self, content_type: int, payload: bytes) -> bytes:
        protected = payload + self._mac(content_type, payload)
        if self._stream is not None:
            body = self._stream.process(protected)
        elif self._cipher is not None:
            cbc = CBC(self._cipher, self._iv)
            body = cbc.encrypt(protected)
            self._iv = body[-self._cipher.block_size :]  # CBC residue chaining
        else:
            body = protected
        self._sequence += 1
        return bytes([content_type]) + len(body).to_bytes(2, "big") + body


class RecordDecoder:
    """One direction of record protection (read side)."""

    def __init__(self, suite: CipherSuite, cipher_key: bytes, mac_key: bytes,
                 iv: bytes) -> None:
        self.suite = suite
        self._mac_key = mac_key
        self._mac_base = HMAC(mac_key, suite.hash_factory)
        self._sequence = 0
        if suite.cipher == "NULL":
            self._stream: Optional[RC4] = None
            self._cipher = None
        elif suite.cipher_kind == "stream":
            self._stream = suite.make_cipher(cipher_key)
            self._cipher = None
        else:
            self._stream = None
            self._cipher = suite.make_cipher(cipher_key)
            self._iv = iv

    @property
    def sequence(self) -> int:
        """Next expected record sequence number (diagnostics)."""
        return self._sequence

    #: Span attribute distinguishing mini-TLS from WTLS record paths.
    layer = "tls"

    def decode(self, record: bytes) -> Tuple[int, bytes]:
        """Verify and open one wire record -> (content_type, payload)."""
        telemetry = probe.active
        if telemetry is None:          # hot path: one read, one branch
            return self._decode(record)
        suite = self.suite
        cipher = self._stream if self._stream is not None else self._cipher
        with telemetry.span(
                "record.decode", layer=self.layer, suite=suite.name,
                n=len(record),
                path=fastpath.dispatch_path(
                    getattr(cipher, "recorder", None))) as span:
            try:
                content_type, payload = self._decode(record)
            except Exception as exc:
                span.set(error=type(exc).__name__)
                raise
            telemetry.add_cycles(
                record_cycles(suite.cipher, suite.mac, len(payload)),
                kind="record")
            return content_type, payload

    def _decode(self, record: bytes) -> Tuple[int, bytes]:
        if len(record) < 3:
            raise DecodeError("record shorter than header")
        content_type = record[0]
        length = int.from_bytes(record[1:3], "big")
        body = record[3:]
        if len(body) != length:
            raise DecodeError(
                f"record length field {length} != body {len(body)}"
            )
        if self._stream is not None:
            protected = self._stream.process(body)
        elif self._cipher is not None:
            cbc = CBC(self._cipher, self._iv)
            try:
                protected = cbc.decrypt(body)
            except (PaddingError, InvalidBlockSize) as exc:
                raise BadRecordMAC(f"padding invalid: {exc}") from exc
            self._iv = body[-self._cipher.block_size :]
        else:
            protected = body
        mac_len = self.suite.hash_factory().digest_size
        if len(protected) < mac_len:
            raise BadRecordMAC("record too short to hold MAC")
        payload, tag = protected[:-mac_len], protected[-mac_len:]
        header = (
            self._sequence.to_bytes(8, "big")
            + bytes([content_type])
            + len(payload).to_bytes(2, "big")
        )
        expected = self._mac_base.copy().update(header + payload).digest()
        if not constant_time_compare(expected, tag):
            raise BadRecordMAC("record MAC verification failed")
        self._sequence += 1
        return content_type, payload


def make_record_pair(suite: CipherSuite, keys: KeyBlock,
                     is_client: bool) -> Tuple[RecordEncoder, RecordDecoder]:
    """Build this side's (encoder, decoder) from the key block."""
    if is_client:
        encoder = RecordEncoder(
            suite, keys.client_cipher_key, keys.client_mac_key, keys.client_iv)
        decoder = RecordDecoder(
            suite, keys.server_cipher_key, keys.server_mac_key, keys.server_iv)
    else:
        encoder = RecordEncoder(
            suite, keys.server_cipher_key, keys.server_mac_key, keys.server_iv)
        decoder = RecordDecoder(
            suite, keys.client_cipher_key, keys.client_mac_key, keys.client_iv)
    return encoder, decoder
