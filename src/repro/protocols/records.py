"""Record layer: sequence-numbered, MAC-then-encrypt framing.

The transport-layer protection shared by mini-TLS and WTLS (§2's
"secure transport service interface").  Each record is::

    type(1) | length(2) | ciphertext( payload | HMAC(mac_key, seq |
    type | length | payload) [| CBC padding] )

MAC-then-encrypt with an explicit 64-bit implicit sequence number, per
the SSL 3.0/TLS 1.0 design the paper's era used.  Tampering, record
reordering, and truncation all surface as
:class:`~repro.protocols.alerts.BadRecordMAC`.

The per-record pipeline itself lives in
:mod:`repro.protocols.records_batch`: each codec compiles its suite
into a closure once at construction, and the single-record API here is
a thin delegate over the same pipeline the batched API uses (the
both-path rule).  Decoder state is transactional — a record that fails
verification leaves the sequence number, CBC residue chain, and stream
keystream position untouched, so one tampered record cannot poison the
valid records behind it.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..crypto import fastpath
from ..crypto.hmac import HMAC
from ..crypto.modes import CBC
from ..crypto.rc4 import RC4
from ..observability import probe
from ..observability.attribution import record_cycles
from . import records_batch
from .alerts import DecodeError, RecordOverflow
from .ciphersuites import CipherSuite
from .kdf import KeyBlock

CONTENT_HANDSHAKE = 22
CONTENT_APPLICATION = 23
CONTENT_ALERT = 21

#: Re-exported: TLS 1.0 §6.2.1 plaintext fragment ceiling.
MAX_FRAGMENT = records_batch.MAX_FRAGMENT


class RecordEncoder:
    """One direction of record protection (write side)."""

    def __init__(self, suite: CipherSuite, cipher_key: bytes, mac_key: bytes,
                 iv: bytes) -> None:
        self.suite = suite
        self._mac_key = mac_key
        # One keyed HMAC per connection direction; per-record MACs clone
        # its precomputed pad states instead of rekeying (the record-layer
        # half of the fast-path key-schedule caching).
        self._mac_base = HMAC(mac_key, suite.hash_factory)
        self._sequence = 0
        if suite.cipher == "NULL":
            self._stream: Optional[RC4] = None
            self._cipher = None
            self._cbc: Optional[CBC] = None
        elif suite.cipher_kind == "stream":
            self._stream = suite.make_cipher(cipher_key)
            self._cipher = None
            self._cbc = None
        else:
            self._stream = None
            self._cipher = suite.make_cipher(cipher_key)
            # One CBC context for the connection's lifetime: records chain
            # the residue IV (TLS 1.0 discipline) instead of rebuilding the
            # mode object per record.
            self._cbc = CBC(self._cipher, iv)
        self._encode_one, self._encode_parts, self._encode_span = \
            records_batch.compile_tls_encoder(self)

    @property
    def sequence(self) -> int:
        """Next record's implicit sequence number (diagnostics: the
        recovery layer reads it to report how far a session got before
        teardown)."""
        return self._sequence

    def _mac(self, content_type: int, payload: bytes) -> bytes:
        if len(payload) > MAX_FRAGMENT:
            raise RecordOverflow(
                f"record payload of {len(payload)} bytes exceeds the "
                f"2^14-byte TLS fragment ceiling"
            )
        header = (
            self._sequence.to_bytes(8, "big")
            + bytes([content_type])
            + len(payload).to_bytes(2, "big")
        )
        return self._mac_base.mac(header + payload)

    #: Span attribute distinguishing mini-TLS from WTLS record paths.
    layer = "tls"

    def encode(self, content_type: int, payload: bytes) -> bytes:
        """Protect one payload into a wire record."""
        telemetry = probe.active
        if telemetry is None:          # hot path: one read, one branch
            return self._encode_one(content_type, payload)
        suite = self.suite
        cipher = self._stream if self._stream is not None else self._cipher
        with telemetry.span(
                "record.encode", layer=self.layer, suite=suite.name,
                n=len(payload),
                path=fastpath.dispatch_path(
                    getattr(cipher, "recorder", None))):
            telemetry.add_cycles(
                record_cycles(suite.cipher, suite.mac, len(payload)),
                kind="record")
            return self._encode_one(content_type, payload)

    def _encode(self, content_type: int, payload: bytes) -> bytes:
        return self._encode_one(content_type, payload)

    def encode_batch(self, items: Iterable[Tuple[int, bytes]],
                     max_fragment: int = MAX_FRAGMENT) -> bytes:
        """Protect N ``(content_type, payload)`` items into one buffer.

        See :func:`repro.protocols.records_batch.encode_batch`."""
        return records_batch.encode_batch(self, items, max_fragment)


class RecordDecoder:
    """One direction of record protection (read side).

    Decoding is transactional: sequence number, CBC residue IV, and
    stream keystream position commit only after the record's MAC
    verifies, so a tampered record is rejected without desynchronising
    the decoder for later genuine records."""

    def __init__(self, suite: CipherSuite, cipher_key: bytes, mac_key: bytes,
                 iv: bytes) -> None:
        self.suite = suite
        self._mac_key = mac_key
        self._mac_base = HMAC(mac_key, suite.hash_factory)
        self._sequence = 0
        if suite.cipher == "NULL":
            self._stream: Optional[RC4] = None
            self._cipher = None
            self._cbc: Optional[CBC] = None
        elif suite.cipher_kind == "stream":
            self._stream = suite.make_cipher(cipher_key)
            self._cipher = None
            self._cbc = None
        else:
            self._stream = None
            self._cipher = suite.make_cipher(cipher_key)
            self._cbc = CBC(self._cipher, iv)
        self._decode_one, self._decode_span = \
            records_batch.compile_tls_decoder(self)

    @property
    def sequence(self) -> int:
        """Next expected record sequence number (diagnostics)."""
        return self._sequence

    #: Span attribute distinguishing mini-TLS from WTLS record paths.
    layer = "tls"

    def decode(self, record: bytes) -> Tuple[int, bytes]:
        """Verify and open one wire record -> (content_type, payload)."""
        telemetry = probe.active
        if telemetry is None:          # hot path: one read, one branch
            return self._decode(record)
        suite = self.suite
        cipher = self._stream if self._stream is not None else self._cipher
        with telemetry.span(
                "record.decode", layer=self.layer, suite=suite.name,
                n=len(record),
                path=fastpath.dispatch_path(
                    getattr(cipher, "recorder", None))) as span:
            try:
                content_type, payload = self._decode(record)
            except Exception as exc:
                span.set(error=type(exc).__name__)
                raise
            telemetry.add_cycles(
                record_cycles(suite.cipher, suite.mac, len(payload)),
                kind="record")
            return content_type, payload

    def _decode(self, record: bytes) -> Tuple[int, bytes]:
        if len(record) < 3:
            raise DecodeError("record shorter than header")
        length = int.from_bytes(record[1:3], "big")
        if len(record) - 3 != length:
            raise DecodeError(
                f"record length field {length} != body {len(record) - 3}"
            )
        return self._decode_one(record[0], memoryview(record)[3:])

    def decode_batch(self, buffer: bytes) -> List[Tuple[int, bytes]]:
        """Open a buffer of concatenated records -> ``[(type, payload)]``.

        See :func:`repro.protocols.records_batch.decode_batch`."""
        return records_batch.decode_batch(self, buffer)


def make_record_pair(suite: CipherSuite, keys: KeyBlock,
                     is_client: bool) -> Tuple[RecordEncoder, RecordDecoder]:
    """Build this side's (encoder, decoder) from the key block."""
    if is_client:
        encoder = RecordEncoder(
            suite, keys.client_cipher_key, keys.client_mac_key, keys.client_iv)
        decoder = RecordDecoder(
            suite, keys.server_cipher_key, keys.server_mac_key, keys.server_iv)
    else:
        encoder = RecordEncoder(
            suite, keys.server_cipher_key, keys.server_mac_key, keys.server_iv)
        decoder = RecordDecoder(
            suite, keys.client_cipher_key, keys.client_mac_key, keys.client_iv)
    return encoder, decoder
