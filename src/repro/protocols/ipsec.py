"""IPSec-style ESP: network-layer protection with anti-replay.

"In the wired Internet, the most popular approach is to use security
protocols at the network or IP layer (IPSec)" (§2); §3.1's VPN-enabled
PDA "may additionally need to support IPSec (Network Layer)".  We
model the ESP datapath a VPN client runs per packet:

* a :class:`SecurityAssociation` (SPI, keys, cipher/MAC choice)
  established out of band (IKE is out of scope, as it is for the
  Safenet-style packet engines of §4.2.3 too);
* encapsulation: pad -> CBC-encrypt -> append HMAC-SHA1-96 over
  ``SPI || seq || IV || ciphertext``;
* decapsulation with a 64-entry sliding anti-replay window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..crypto.bitops import constant_time_compare
from ..crypto.hmac import hmac
from ..crypto.modes import CBC
from ..crypto.padding import esp_pad, esp_unpad
from ..crypto.rng import DeterministicDRBG
from .alerts import BadRecordMAC, DecodeError, ReplayError
from .ciphersuites import CipherSuite, RSA_WITH_3DES_SHA

AUTH_BYTES = 12  # HMAC-SHA1-96

REPLAY_WINDOW = 64


@dataclass
class SecurityAssociation:
    """One direction of an ESP tunnel.

    ``suite`` borrows the cipher-suite abstraction for its cipher and
    hash choices (key exchange is irrelevant here).
    """

    spi: int
    cipher_key: bytes
    mac_key: bytes
    rng: DeterministicDRBG
    suite: CipherSuite = RSA_WITH_3DES_SHA
    sequence: int = 0
    # Receiver state: highest sequence seen + sliding bitmap.
    highest_seen: int = 0
    window_bitmap: int = 0
    replay_drops: int = 0

    def _cipher(self):
        return self.suite.make_cipher(self.cipher_key)

    # -- sender ---------------------------------------------------------------

    def encapsulate(self, payload: bytes) -> bytes:
        """Build one ESP packet: SPI | seq | IV | ciphertext | auth."""
        self.sequence += 1
        block = self._cipher().block_size
        iv = self.rng.random_bytes(block)
        padded = esp_pad(payload, block)
        ciphertext = CBC(self._cipher(), iv).encrypt(padded, pad=False)
        header = self.spi.to_bytes(4, "big") + self.sequence.to_bytes(4, "big")
        body = header + iv + ciphertext
        tag = hmac(self.mac_key, body, self.suite.hash_factory)[:AUTH_BYTES]
        return body + tag

    # -- receiver --------------------------------------------------------------

    def _check_replay(self, sequence: int) -> None:
        if sequence == 0:
            raise ReplayError("ESP sequence 0 is never valid")
        if sequence > self.highest_seen:
            return
        offset = self.highest_seen - sequence
        if offset >= REPLAY_WINDOW:
            self.replay_drops += 1
            raise ReplayError(
                f"ESP sequence {sequence} below replay window "
                f"(highest {self.highest_seen})"
            )
        if (self.window_bitmap >> offset) & 1:
            self.replay_drops += 1
            raise ReplayError(f"ESP sequence {sequence} already received")

    def _mark_seen(self, sequence: int) -> None:
        if sequence > self.highest_seen:
            shift = sequence - self.highest_seen
            self.window_bitmap = (
                (self.window_bitmap << shift) | 1
            ) & ((1 << REPLAY_WINDOW) - 1)
            self.highest_seen = sequence
        else:
            self.window_bitmap |= 1 << (self.highest_seen - sequence)

    def decapsulate(self, packet: bytes) -> Tuple[int, bytes]:
        """Open one ESP packet -> (sequence, payload).

        Authentication is checked *before* decryption (encrypt-then-MAC
        ordering on the wire), and replay before both.
        """
        block = self._cipher().block_size
        minimum = 8 + block + block + AUTH_BYTES
        if len(packet) < minimum:
            raise DecodeError("ESP packet too short")
        spi = int.from_bytes(packet[:4], "big")
        if spi != self.spi:
            raise DecodeError(f"ESP SPI {spi} does not match SA {self.spi}")
        sequence = int.from_bytes(packet[4:8], "big")
        self._check_replay(sequence)
        body, tag = packet[:-AUTH_BYTES], packet[-AUTH_BYTES:]
        expected = hmac(self.mac_key, body, self.suite.hash_factory)[:AUTH_BYTES]
        if not constant_time_compare(expected, tag):
            raise BadRecordMAC("ESP authentication failed")
        iv = body[8 : 8 + block]
        ciphertext = body[8 + block :]
        padded = CBC(self._cipher(), iv).decrypt(ciphertext, pad=False)
        payload = esp_unpad(padded)
        self._mark_seen(sequence)
        return sequence, payload


def make_tunnel(spi: int, seed: int,
                suite: CipherSuite = RSA_WITH_3DES_SHA
                ) -> Tuple[SecurityAssociation, SecurityAssociation]:
    """Create matching sender/receiver SAs (shared keys, same SPI)."""
    keygen = DeterministicDRBG(("esp", spi, seed).__repr__())
    cipher_key = keygen.random_bytes(suite.cipher_key_bytes)
    mac_key = keygen.random_bytes(suite.mac_key_bytes)
    sender = SecurityAssociation(
        spi=spi, cipher_key=cipher_key, mac_key=mac_key,
        rng=DeterministicDRBG(("esp-iv", spi, seed).__repr__()), suite=suite,
    )
    receiver = SecurityAssociation(
        spi=spi, cipher_key=cipher_key, mac_key=mac_key,
        rng=DeterministicDRBG(("esp-unused", spi, seed).__repr__()), suite=suite,
    )
    return sender, receiver
