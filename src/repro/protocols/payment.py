"""SET-style application-layer payment protocol (§2).

"Specific applications may decide to directly employ security
mechanisms instead of, or in addition to, the aforementioned options
(through an application-level security protocol such as SET [6], or to
provide additional functionality, such as non-repudiation, that is not
provided in the transport-layer security protocol)."

The SET hallmark implemented here is the **dual signature**: the
cardholder binds the order information (OI, for the merchant) and the
payment information (PI, for the payment gateway) with one signature —

    dual_sig = Sign( H( H(OI) || H(PI) ) )

— so that:

* the **merchant** receives OI + H(PI) and can verify the signature
  without ever seeing the card number;
* the **gateway** receives PI + H(OI) and can verify the same
  signature without learning what was bought;
* neither party can swap in a different order/payment (the hashes
  bind), and the cardholder cannot repudiate either half.

This is exactly the end-to-end/non-repudiation functionality the WAP
gap analysis (:mod:`repro.protocols.wap`) shows transport security
cannot give, so the module closes the paper's §2 argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.errors import SignatureError
from ..crypto.rsa import RSAPrivateKey
from ..crypto.sha1 import sha1
from .certificates import Certificate, CertificateAuthority


class PaymentError(Exception):
    """A payment message failed validation."""


@dataclass(frozen=True)
class OrderInfo:
    """What is being bought (merchant-visible)."""

    merchant: str
    description: str
    amount_cents: int
    order_id: str

    def to_bytes(self) -> bytes:
        """Canonical encoding."""
        return (
            f"OI|{self.merchant}|{self.description}|{self.amount_cents}"
            f"|{self.order_id}"
        ).encode()


@dataclass(frozen=True)
class PaymentInfo:
    """How it is being paid (gateway-visible)."""

    card_number: str
    expiry: str
    amount_cents: int
    order_id: str

    def to_bytes(self) -> bytes:
        """Canonical encoding."""
        return (
            f"PI|{self.card_number}|{self.expiry}|{self.amount_cents}"
            f"|{self.order_id}"
        ).encode()


@dataclass(frozen=True)
class DualSignedPayment:
    """The cardholder's purchase request, split per recipient."""

    order: OrderInfo
    payment_digest: bytes       # H(PI): merchant's blind link to payment
    payment: PaymentInfo
    order_digest: bytes         # H(OI): gateway's blind link to order
    dual_signature: bytes
    cardholder_certificate: bytes

    def merchant_view(self) -> tuple:
        """What the merchant receives: OI + H(PI) + signature."""
        return (self.order, self.payment_digest, self.dual_signature,
                self.cardholder_certificate)

    def gateway_view(self) -> tuple:
        """What the gateway receives: PI + H(OI) + signature."""
        return (self.payment, self.order_digest, self.dual_signature,
                self.cardholder_certificate)


def _dual_payload(order_digest: bytes, payment_digest: bytes) -> bytes:
    return sha1(order_digest + payment_digest)


def create_payment(order: OrderInfo, payment: PaymentInfo,
                   cardholder_key: RSAPrivateKey,
                   cardholder_cert: Certificate) -> DualSignedPayment:
    """Cardholder side: build the dual-signed request."""
    if order.order_id != payment.order_id:
        raise PaymentError("order id mismatch between OI and PI")
    if order.amount_cents != payment.amount_cents:
        raise PaymentError("amount mismatch between OI and PI")
    order_digest = sha1(order.to_bytes())
    payment_digest = sha1(payment.to_bytes())
    dual_signature = cardholder_key.sign(
        _dual_payload(order_digest, payment_digest))
    return DualSignedPayment(
        order=order, payment_digest=payment_digest,
        payment=payment, order_digest=order_digest,
        dual_signature=dual_signature,
        cardholder_certificate=cardholder_cert.to_bytes(),
    )


def _verify_half(known_digest: bytes, other_digest: bytes,
                 digest_order: str, signature: bytes,
                 cert_bytes: bytes, ca: CertificateAuthority,
                 now: int = 0) -> Certificate:
    cert = Certificate.from_bytes(cert_bytes)
    ca.validate(cert, now=now)
    if digest_order == "order-first":
        payload = _dual_payload(known_digest, other_digest)
    else:
        payload = _dual_payload(other_digest, known_digest)
    try:
        cert.public_key.verify(payload, signature)
    except SignatureError as exc:
        raise PaymentError(f"dual signature invalid: {exc}") from exc
    return cert


@dataclass
class Merchant:
    """Verifies orders without seeing payment instruments."""

    name: str
    ca: CertificateAuthority
    fulfilled: list = None

    def __post_init__(self) -> None:
        self.fulfilled = []

    def process(self, view: tuple, now: int = 0) -> str:
        """Verify the merchant view; returns the cardholder subject."""
        order, payment_digest, signature, cert_bytes = view
        if order.merchant != self.name:
            raise PaymentError(
                f"order addressed to {order.merchant!r}, not {self.name!r}")
        cert = _verify_half(
            sha1(order.to_bytes()), payment_digest, "order-first",
            signature, cert_bytes, self.ca, now)
        self.fulfilled.append(order.order_id)
        return cert.subject


@dataclass
class PaymentGateway:
    """Authorises payments without learning the order contents."""

    ca: CertificateAuthority
    authorised: list = None

    def __post_init__(self) -> None:
        self.authorised = []

    def process(self, view: tuple, now: int = 0) -> str:
        """Verify the gateway view; returns an authorisation code."""
        payment, order_digest, signature, cert_bytes = view
        _verify_half(
            sha1(payment.to_bytes()), order_digest, "payment-first",
            signature, cert_bytes, self.ca, now)
        code = sha1(
            b"auth" + payment.to_bytes() + order_digest
        ).hex()[:12]
        self.authorised.append((payment.order_id, code))
        return code


def non_repudiation_evidence(purchase: DualSignedPayment,
                             ca: CertificateAuthority,
                             now: int = 0) -> dict:
    """An arbiter's check: given both halves, the cardholder signed
    *this* order paid with *this* instrument — the §2 functionality
    transport security cannot provide."""
    cert = Certificate.from_bytes(purchase.cardholder_certificate)
    ca.validate(cert, now=now)
    payload = _dual_payload(
        sha1(purchase.order.to_bytes()), sha1(purchase.payment.to_bytes()))
    try:
        cert.public_key.verify(payload, purchase.dual_signature)
        binding_holds = True
    except SignatureError:
        binding_holds = False
    return {
        "cardholder": cert.subject,
        "order_id": purchase.order.order_id,
        "amount_cents": purchase.order.amount_cents,
        "binding_holds": binding_holds,
    }
