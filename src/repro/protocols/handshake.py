"""The mini-TLS handshake state machines (client and server).

Implements the SSL-style authenticated key establishment the paper's
§3.1/§3.2 analyses revolve around: suite negotiation from the client's
preference list, server (and optionally client) certificate
authentication against a CA, RSA or ephemeral-DH key exchange, PRF key
derivation, and Finished messages binding the transcript — so a
man-in-the-middle who rewrites the negotiation is caught (the tests
exercise exactly that tampering).

Endpoints exchange raw message bytes until keys exist; both Finished
messages travel under the freshly derived record protection, as in
SSL 3.0.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple

from ..crypto.bitops import constant_time_compare
from ..crypto.dh import DHGroup, DHParty
from ..crypto.kea import KEAParty
from ..crypto.errors import CryptoError, SignatureError
from ..crypto.rng import DeterministicDRBG
from ..crypto.rsa import RSAPrivateKey
from ..crypto.sha1 import sha1
from ..observability import probe
from ..observability.attribution import handshake_cycles
from .alerts import BadRecordMAC, CertificateError, DecodeError, HandshakeFailure
from .certificates import Certificate, CertificateAuthority
from .ciphersuites import ALL_SUITES, SUITES_BY_NAME, CipherSuite, negotiate
from .kdf import derive_key_block, finished_verify_data, master_secret
from .messages import ClientHello, ClientKeyExchange, Finished, ServerHello
from .records import CONTENT_HANDSHAKE, RecordDecoder, RecordEncoder, make_record_pair
from .transport import ChannelClosed, ChannelEmpty, Endpoint

PREMASTER_BYTES = 48

EndpointFactory = Callable[[], Tuple[Endpoint, Endpoint]]


@dataclass
class Session:
    """Negotiated state both sides hold after a successful handshake."""

    suite: CipherSuite
    master: bytes
    encoder: RecordEncoder
    decoder: RecordDecoder
    peer_certificate: Optional[Certificate]
    transcript_digest: bytes
    handshake_messages: int


@dataclass
class ClientConfig:
    """Client-side handshake inputs."""

    rng: DeterministicDRBG
    ca: CertificateAuthority
    suites: List[CipherSuite] = field(default_factory=lambda: list(ALL_SUITES))
    expected_server: Optional[str] = None
    certificate: Optional[Certificate] = None
    private_key: Optional[RSAPrivateKey] = None
    now: int = 0


@dataclass
class ServerConfig:
    """Server-side handshake inputs."""

    rng: DeterministicDRBG
    certificate: Certificate
    private_key: RSAPrivateKey
    suites: List[CipherSuite] = field(default_factory=lambda: list(ALL_SUITES))
    require_client_auth: bool = False
    ca: Optional[CertificateAuthority] = None
    dh_group: Optional[DHGroup] = None
    now: int = 0


def _transcript_digest(messages: List[bytes]) -> bytes:
    return sha1(b"".join(messages))


def run_handshake(client: ClientConfig, server: ServerConfig,
                  client_ep: Endpoint, server_ep: Endpoint
                  ) -> Tuple[Session, Session]:
    """Drive a complete handshake over a channel; returns both sessions.

    Raises :class:`HandshakeFailure` / :class:`CertificateError` on any
    negotiation, authentication, or transcript-binding failure.
    """
    telemetry = probe.active
    if telemetry is None:
        return _run_handshake(client, server, client_ep, server_ep)
    with telemetry.span("handshake") as span:
        try:
            sessions = _run_handshake(client, server, client_ep, server_ep)
        except Exception as exc:
            span.set(outcome="failure", error=type(exc).__name__)
            raise
        span.set(outcome="success", suite=sessions[0].suite.name)
        modulus = getattr(server.private_key, "n", None)
        telemetry.add_cycles(
            handshake_cycles(
                rsa_bits=modulus.bit_length() if modulus else 1024),
            kind="handshake")
        return sessions


def _run_handshake(client: ClientConfig, server: ServerConfig,
                   client_ep: Endpoint, server_ep: Endpoint
                   ) -> Tuple[Session, Session]:
    # Each side hashes its OWN view of the handshake: the client what
    # it sent/received, the server what it received/sent.  The Finished
    # exchange then catches any in-flight tampering (the view digests
    # diverge), which a single shared transcript could never detect.
    client_transcript: List[bytes] = []
    server_transcript: List[bytes] = []

    # -- ClientHello ----------------------------------------------------------
    client_random = client.rng.random_bytes(32)
    hello = ClientHello(client_random, [s.name for s in client.suites])
    raw_out = hello.to_bytes()
    client_ep.send(raw_out)
    client_transcript.append(raw_out)
    raw = server_ep.receive()
    server_transcript.append(raw)
    hello_seen = ClientHello.from_bytes(raw)

    # -- ServerHello ----------------------------------------------------------
    offered = [
        SUITES_BY_NAME[name]
        for name in hello_seen.suite_names
        if name in SUITES_BY_NAME
    ]
    suite = negotiate(offered, server.suites)
    if suite is None:
        raise HandshakeFailure(
            "no common cipher suite between client and server"
        )
    server_random = server.rng.random_bytes(32)
    dh_server: Optional[DHParty] = None
    kea_server: Optional[KEAParty] = None
    kex_payload = b""
    if suite.key_exchange == "DH":
        group = server.dh_group or DHGroup.oakley1()
        dh_server = DHParty(group, server.rng)
        kex_payload = _encode_dh_server(group, dh_server, server.private_key)
    elif suite.key_exchange == "KEA":
        group = server.dh_group or DHGroup.oakley1()
        kea_server = KEAParty(group, server.rng)
        kex_payload = _encode_kea_server(
            group, kea_server, server.private_key)
    server_hello = ServerHello(
        server_random=server_random,
        suite_name=suite.name,
        certificate=server.certificate.to_bytes(),
        key_exchange=kex_payload,
        request_client_auth=server.require_client_auth,
    )
    raw_out = server_hello.to_bytes()
    server_ep.send(raw_out)
    server_transcript.append(raw_out)
    raw = client_ep.receive()
    client_transcript.append(raw)
    hello_reply = ServerHello.from_bytes(raw)
    chosen = SUITES_BY_NAME.get(hello_reply.suite_name)
    if chosen is None or chosen.name not in {s.name for s in client.suites}:
        raise HandshakeFailure(
            f"server chose unacceptable suite {hello_reply.suite_name!r}"
        )

    # -- client authenticates server ------------------------------------------
    server_cert = Certificate.from_bytes(hello_reply.certificate)
    client.ca.validate(
        server_cert, now=client.now, expected_subject=client.expected_server
    )

    # -- key exchange ----------------------------------------------------------
    with probe.span("kex", side="client", algo=chosen.key_exchange):
        if chosen.key_exchange == "RSA":
            premaster = client.rng.random_bytes(PREMASTER_BYTES)
            kex_bytes = server_cert.public_key.encrypt(premaster, client.rng)
        elif chosen.key_exchange == "KEA":
            group, srv_static, srv_ephemeral = _decode_kea_server(
                hello_reply.key_exchange, server_cert
            )
            kea_client = KEAParty(group, client.rng)
            premaster = kea_client.shared_key(
                srv_static, srv_ephemeral, PREMASTER_BYTES)
            width = (group.p.bit_length() + 7) // 8
            kex_bytes = (
                kea_client.static.public.to_bytes(width, "big")
                + kea_client.ephemeral.public.to_bytes(width, "big")
            )
        else:
            group, server_public = _decode_dh_server(
                hello_reply.key_exchange, server_cert
            )
            dh_client = DHParty(group, client.rng)
            premaster = dh_client.shared_key(server_public, PREMASTER_BYTES)
            kex_bytes = dh_client.public.to_bytes(
                (group.p.bit_length() + 7) // 8, "big"
            )

    client_cert_bytes = b""
    verify_bytes = b""
    if hello_reply.request_client_auth:
        if client.certificate is None or client.private_key is None:
            raise HandshakeFailure(
                "server requires client authentication but client has "
                "no credential"
            )
        client_cert_bytes = client.certificate.to_bytes()
        verify_bytes = client.private_key.sign(
            _transcript_digest(client_transcript)
        )
    ckx = ClientKeyExchange(kex_bytes, client_cert_bytes, verify_bytes)
    raw_out = ckx.to_bytes()
    client_ep.send(raw_out)
    client_transcript.append(raw_out)
    raw = server_ep.receive()
    server_transcript.append(raw)
    ckx_seen = ClientKeyExchange.from_bytes(raw)

    # -- server recovers premaster / authenticates client ----------------------
    client_cert: Optional[Certificate] = None
    with probe.span("kex", side="server", algo=suite.key_exchange):
        if suite.key_exchange == "RSA":
            try:
                server_premaster = server.private_key.decrypt(
                    ckx_seen.key_exchange)
            except CryptoError as exc:
                raise HandshakeFailure(
                    f"premaster decryption failed: {exc}") from exc
            if len(server_premaster) != PREMASTER_BYTES:
                raise HandshakeFailure("premaster has wrong length")
        elif suite.key_exchange == "KEA":
            assert kea_server is not None
            width = (kea_server.group.p.bit_length() + 7) // 8
            client_static = int.from_bytes(
                ckx_seen.key_exchange[:width], "big")
            client_ephemeral = int.from_bytes(
                ckx_seen.key_exchange[width:], "big")
            server_premaster = kea_server.shared_key(
                client_static, client_ephemeral, PREMASTER_BYTES)
        else:
            assert dh_server is not None
            client_public = int.from_bytes(ckx_seen.key_exchange, "big")
            server_premaster = dh_server.shared_key(
                client_public, PREMASTER_BYTES)
    if server.require_client_auth:
        if server.ca is None:
            raise HandshakeFailure("server requires client auth but has no CA")
        if not ckx_seen.client_certificate:
            raise HandshakeFailure("client did not present a certificate")
        client_cert = Certificate.from_bytes(ckx_seen.client_certificate)
        server.ca.validate(client_cert, now=server.now)
        try:
            client_cert.public_key.verify(
                _transcript_digest(server_transcript[:-1]),
                ckx_seen.certificate_verify,
            )
        except SignatureError as exc:
            raise HandshakeFailure(
                f"client CertificateVerify invalid: {exc}"
            ) from exc

    # -- key derivation ---------------------------------------------------------
    client_digest = _transcript_digest(client_transcript)
    server_digest = _transcript_digest(server_transcript)
    client_master = master_secret(
        premaster, client_random, hello_reply.server_random
    )
    server_master = master_secret(
        server_premaster, hello_seen.client_random, server_random
    )
    client_keys = derive_key_block(
        client_master, client_random, hello_reply.server_random, chosen
    )
    server_keys = derive_key_block(
        server_master, hello_seen.client_random, server_random, suite
    )
    client_enc, client_dec = make_record_pair(chosen, client_keys, is_client=True)
    server_enc, server_dec = make_record_pair(suite, server_keys, is_client=False)

    # -- Finished exchange (under the new keys) ---------------------------------
    client_finish = Finished(
        finished_verify_data(client_master, client_digest, b"client finished")
    )
    client_ep.send(client_enc.encode(CONTENT_HANDSHAKE, client_finish.to_bytes()))
    try:
        _, payload = server_dec.decode(server_ep.receive())
    except BadRecordMAC as exc:
        probe.event("handshake.tamper", side="server",
                    stage="client-finished", kind="undecryptable")
        raise HandshakeFailure(
            f"client Finished undecryptable (keys diverged): {exc}"
        ) from exc
    seen_finish = Finished.from_bytes(payload)
    expected = finished_verify_data(
        server_master, server_digest, b"client finished"
    )
    if not constant_time_compare(expected, seen_finish.verify_data):
        probe.event("handshake.tamper", side="server",
                    stage="client-finished", kind="verify-data-mismatch")
        raise HandshakeFailure("client Finished verify_data mismatch")

    server_finish = Finished(
        finished_verify_data(server_master, server_digest, b"server finished")
    )
    server_ep.send(server_enc.encode(CONTENT_HANDSHAKE, server_finish.to_bytes()))
    try:
        _, payload = client_dec.decode(client_ep.receive())
    except BadRecordMAC as exc:
        probe.event("handshake.tamper", side="client",
                    stage="server-finished", kind="undecryptable")
        raise HandshakeFailure(
            f"server Finished undecryptable (keys diverged): {exc}"
        ) from exc
    seen_finish = Finished.from_bytes(payload)
    expected = finished_verify_data(
        client_master, client_digest, b"server finished"
    )
    if not constant_time_compare(expected, seen_finish.verify_data):
        probe.event("handshake.tamper", side="client",
                    stage="server-finished", kind="verify-data-mismatch")
        raise HandshakeFailure("server Finished verify_data mismatch")

    client_session = Session(
        suite=chosen, master=client_master, encoder=client_enc,
        decoder=client_dec, peer_certificate=server_cert,
        transcript_digest=client_digest,
        handshake_messages=len(client_transcript) + 2,
    )
    server_session = Session(
        suite=suite, master=server_master, encoder=server_enc,
        decoder=server_dec, peer_certificate=client_cert,
        transcript_digest=server_digest,
        handshake_messages=len(server_transcript) + 2,
    )
    return client_session, server_session


@dataclass
class HandshakeAttemptLog:
    """What it took to get a handshake through a hostile link."""

    attempts: int = 0
    suite_fallbacks: int = 0
    link_failures: int = 0
    failures: List[str] = field(default_factory=list)


def run_handshake_with_fallback(
        client: ClientConfig, server: ServerConfig,
        endpoint_factory: EndpointFactory,
        max_attempts: int = 4,
) -> Tuple[Session, Session, HandshakeAttemptLog]:
    """Retry the handshake, degrading gracefully instead of giving up.

    Two recovery dimensions, mirroring what period handsets actually
    shipped:

    * a :class:`~repro.protocols.alerts.HandshakeFailure` (negotiation
      or verification failed) drops the client's *most preferred* suite
      and retries with the rest of the preference list — the fallback
      walk through the §3.1 cipher-suite matrix;
    * a link-level failure (frame lost before any ARQ —
      :class:`~repro.protocols.transport.ChannelEmpty` — or a reset,
      a damaged record, an unparseable message) retries on a fresh link
      from ``endpoint_factory`` without narrowing the suites.

    Returns ``(client_session, server_session, log)``; raises
    :class:`~repro.protocols.alerts.HandshakeFailure` after
    ``max_attempts`` attempts (or once the preference list is empty).
    """
    log = HandshakeAttemptLog()
    suites = list(client.suites)
    for attempt in range(1, max_attempts + 1):
        log.attempts = attempt
        client_ep, server_ep = endpoint_factory()
        trial_client = replace(client, suites=list(suites))
        try:
            client_session, server_session = run_handshake(
                trial_client, server, client_ep, server_ep)
            return client_session, server_session, log
        except HandshakeFailure as exc:
            log.failures.append(f"handshake: {exc}")
            if attempt >= max_attempts:
                raise HandshakeFailure(
                    f"handshake failed after {attempt} attempts: "
                    f"{log.failures}") from exc
            if len(suites) > 1:
                suites = suites[1:]
                log.suite_fallbacks += 1
            # With one suite left there is nothing to fall back to;
            # keep retrying it on fresh links until attempts run out.
        except (ChannelEmpty, ChannelClosed, BadRecordMAC,
                DecodeError) as exc:
            log.link_failures += 1
            log.failures.append(f"link: {type(exc).__name__}: {exc}")
            if attempt >= max_attempts:
                raise HandshakeFailure(
                    f"handshake failed after {attempt} attempts: "
                    f"{log.failures}") from exc
    raise HandshakeFailure(  # pragma: no cover - loop always returns/raises
        f"handshake failed: {log.failures}")


def _encode_dh_server(group: DHGroup, party: DHParty,
                      signer: RSAPrivateKey) -> bytes:
    p_bytes = group.p.to_bytes((group.p.bit_length() + 7) // 8, "big")
    g_bytes = group.g.to_bytes(4, "big")
    pub_bytes = party.public.to_bytes((group.p.bit_length() + 7) // 8, "big")
    payload = (
        len(p_bytes).to_bytes(2, "big") + p_bytes
        + g_bytes
        + len(pub_bytes).to_bytes(2, "big") + pub_bytes
    )
    signature = signer.sign(payload)
    return payload + len(signature).to_bytes(2, "big") + signature


def _decode_dh_server(blob: bytes, server_cert: Certificate):
    offset = 0
    p_len = int.from_bytes(blob[offset : offset + 2], "big")
    offset += 2
    p = int.from_bytes(blob[offset : offset + p_len], "big")
    offset += p_len
    g = int.from_bytes(blob[offset : offset + 4], "big")
    offset += 4
    pub_len = int.from_bytes(blob[offset : offset + 2], "big")
    offset += 2
    public = int.from_bytes(blob[offset : offset + pub_len], "big")
    offset += pub_len
    payload = blob[:offset]
    sig_len = int.from_bytes(blob[offset : offset + 2], "big")
    signature = blob[offset + 2 : offset + 2 + sig_len]
    try:
        server_cert.public_key.verify(payload, signature)
    except SignatureError as exc:
        raise HandshakeFailure(
            f"DH parameters signature invalid: {exc}"
        ) from exc
    return DHGroup(p=p, g=g), public


def _encode_kea_server(group: DHGroup, party: KEAParty,
                       signer: RSAPrivateKey) -> bytes:
    """KEA server parameters: p, g, static + ephemeral publics, signed."""
    width = (group.p.bit_length() + 7) // 8
    p_bytes = group.p.to_bytes(width, "big")
    payload = (
        len(p_bytes).to_bytes(2, "big") + p_bytes
        + group.g.to_bytes(4, "big")
        + party.static.public.to_bytes(width, "big")
        + party.ephemeral.public.to_bytes(width, "big")
    )
    signature = signer.sign(payload)
    return payload + len(signature).to_bytes(2, "big") + signature


def _decode_kea_server(blob: bytes, server_cert: Certificate):
    offset = 0
    p_len = int.from_bytes(blob[offset:offset + 2], "big")
    offset += 2
    p = int.from_bytes(blob[offset:offset + p_len], "big")
    offset += p_len
    g = int.from_bytes(blob[offset:offset + 4], "big")
    offset += 4
    static = int.from_bytes(blob[offset:offset + p_len], "big")
    offset += p_len
    ephemeral = int.from_bytes(blob[offset:offset + p_len], "big")
    offset += p_len
    payload = blob[:offset]
    sig_len = int.from_bytes(blob[offset:offset + 2], "big")
    signature = blob[offset + 2:offset + 2 + sig_len]
    try:
        server_cert.public_key.verify(payload, signature)
    except SignatureError as exc:
        raise HandshakeFailure(
            f"KEA parameters signature invalid: {exc}"
        ) from exc
    return DHGroup(p=p, g=g), static, ephemeral
