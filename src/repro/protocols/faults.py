"""Deterministic fault injection for the radio link.

The paper's premise is a hostile bearer: frames are dropped, corrupted,
duplicated, and reordered, and every recovery action costs battery
energy (§2 network-access-domain security, §3.3 battery gap).  The
seed-state :class:`~repro.protocols.transport.DuplexChannel` is a
perfect FIFO, so none of the protocol stacks had ever met loss.

:class:`FaultyChannel` closes that gap: it extends the duplex channel
with composable fault processes — i.i.d. frame drop, duplication,
adjacent-frame reordering, single-bit byte corruption, and a
Gilbert–Elliott two-state burst-error mode — all driven by a
:class:`~repro.crypto.rng.DeterministicDRBG`, so **every failure
schedule is exactly reproducible from its seed**.  That determinism is
what lets the ARQ layer (:mod:`repro.protocols.reliable`) and the
recovery machinery be tested byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from ..crypto.rng import DeterministicDRBG
from .transport import DuplexChannel, Interceptor


@dataclass(frozen=True)
class GilbertElliott:
    """Two-state Markov burst-error model (good <-> bad channel states).

    In the *good* state frames drop with probability ``drop_good``; in
    the *bad* state (a fade) with ``drop_bad``.  State transitions
    happen per frame with the given probabilities, producing the
    clustered losses real radio links show instead of i.i.d. noise.
    """

    p_good_to_bad: float = 0.05
    p_bad_to_good: float = 0.30
    drop_good: float = 0.01
    drop_bad: float = 0.60

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "p_bad_to_good",
                     "drop_good", "drop_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")


@dataclass(frozen=True)
class FaultModel:
    """Composable per-frame fault probabilities.

    Every field is independent: a frame can be corrupted *and*
    duplicated.  ``burst`` layers a Gilbert–Elliott drop process on top
    of the i.i.d. ``drop``.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    corrupt: float = 0.0
    burst: Optional[GilbertElliott] = None

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder", "corrupt"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")

    @classmethod
    def lossy(cls, drop: float) -> "FaultModel":
        """Pure i.i.d. frame drop at probability ``drop``."""
        return cls(drop=drop)

    @classmethod
    def noisy(cls, corrupt: float) -> "FaultModel":
        """Pure byte corruption at probability ``corrupt``."""
        return cls(corrupt=corrupt)

    @classmethod
    def bursty(cls, model: Optional[GilbertElliott] = None) -> "FaultModel":
        """Gilbert–Elliott burst losses only."""
        return cls(burst=model or GilbertElliott())


@dataclass
class FaultStats:
    """Ledger of every fault the channel injected."""

    drops: int = 0
    burst_drops: int = 0
    duplicates: int = 0
    corruptions: int = 0
    reorders: int = 0
    delivered: int = 0
    bad_state_frames: int = 0
    injected: int = 0

    @property
    def total_drops(self) -> int:
        """i.i.d. plus burst-mode drops."""
        return self.drops + self.burst_drops


class FaultyChannel(DuplexChannel):
    """A :class:`DuplexChannel` whose delivery path injects faults.

    The fault pipeline runs *after* the interceptor (an attacker sees
    the frame as sent; the channel then damages it), in a fixed order:
    drop (i.i.d., then burst) -> corrupt -> duplicate -> reorder.  One
    DRBG draw per decision keeps the schedule a pure function of the
    seed and the frame sequence.

    ``model`` is a plain attribute so tests can run a clean handshake
    and then turn the weather bad for the data phase::

        channel.model = FaultModel(drop=0.2)
    """

    def __init__(self, model: Optional[FaultModel] = None,
                 seed: int = 0,
                 interceptor: Optional[Interceptor] = None) -> None:
        super().__init__(interceptor)
        self.model = model or FaultModel()
        self.seed = seed
        self._drbg = DeterministicDRBG(("faulty-channel", seed).__repr__())
        self.faults = FaultStats()
        self._ge_state: Dict[str, str] = {"a->b": "good", "b->a": "good"}
        self._held: Dict[str, Optional[bytes]] = {"a->b": None, "b->a": None}

    # -- fault pipeline ----------------------------------------------------

    def _enqueue(self, queue: Deque[bytes], frame: bytes,
                 direction: str) -> None:
        model = self.model

        # 1. i.i.d. drop.
        if model.drop > 0.0 and self._drbg.random() < model.drop:
            self.faults.drops += 1
            return

        # 2. Gilbert–Elliott burst drop.
        if model.burst is not None:
            state = self._ge_state[direction]
            if state == "bad":
                self.faults.bad_state_frames += 1
            drop_p = (model.burst.drop_bad if state == "bad"
                      else model.burst.drop_good)
            dropped = self._drbg.random() < drop_p
            # Advance the Markov chain regardless of the drop outcome.
            flip_p = (model.burst.p_bad_to_good if state == "bad"
                      else model.burst.p_good_to_bad)
            if self._drbg.random() < flip_p:
                self._ge_state[direction] = (
                    "good" if state == "bad" else "bad")
            if dropped:
                self.faults.burst_drops += 1
                return

        # 3. Single-bit corruption.
        if model.corrupt > 0.0 and frame and \
                self._drbg.random() < model.corrupt:
            index = self._drbg.randrange(len(frame))
            bit = 1 << self._drbg.randrange(8)
            frame = frame[:index] + bytes([frame[index] ^ bit]) \
                + frame[index + 1:]
            self.faults.corruptions += 1

        # 4. Duplication.
        copies = 1
        if model.duplicate > 0.0 and self._drbg.random() < model.duplicate:
            copies = 2
            self.faults.duplicates += 1

        # 5. Adjacent-frame reordering: hold one frame back and release
        # it after the next frame in the same direction overtakes it.
        for _ in range(copies):
            held = self._held[direction]
            if held is not None:
                queue.append(frame)
                queue.append(held)
                self._held[direction] = None
                self.faults.delivered += 2
            elif model.reorder > 0.0 and \
                    self._drbg.random() < model.reorder:
                self._held[direction] = frame
                self.faults.reorders += 1
            else:
                queue.append(frame)
                self.faults.delivered += 1

    def inject(self, direction: str, frame: bytes,
               front: bool = False) -> None:
        """Adversarial wire injection: place ``frame`` on the link as if
        an on-path attacker transmitted it in ``direction``.

        By default the frame still rides the fault pipeline (injected
        traffic is not exempt from the weather) but bypasses the
        endpoint send API and the interceptor — it never existed at
        either endpoint.  ``front=True`` models an attacker adjacent to
        the receiver: the frame arrives *ahead* of traffic already in
        flight (and past the radio weather, so the pipeline is
        skipped).  Counted in :attr:`FaultStats.injected` either way.
        """
        if direction not in ("a->b", "b->a"):
            raise ValueError(f"unknown direction: {direction!r}")
        queue = self._a_to_b if direction == "a->b" else self._b_to_a
        self.faults.injected += 1
        if front:
            queue.appendleft(frame)
            self.faults.delivered += 1
        else:
            self._enqueue(queue, frame, direction)

    def flush_held(self) -> int:
        """Release any frames the reorder stage is still holding.

        Returns how many were released; useful when traffic stops while
        a frame is in the reorder buffer (otherwise it reads as a loss,
        which the ARQ layer would recover by retransmission anyway).
        """
        released = 0
        for direction, queue in (("a->b", self._a_to_b),
                                 ("b->a", self._b_to_a)):
            held = self._held[direction]
            if held is not None:
                queue.append(held)
                self._held[direction] = None
                self.faults.delivered += 1
                released += 1
        return released
