"""Overload-resilient multi-session WAP gateway runtime.

The seed-state :class:`~repro.protocols.wap.WAPGateway` serves exactly
one handset (``handset_side`` is a single WTLS connection) and answers
origin trouble with a blind per-call retry.  This module is the
gateway *under load*: the operating condition §2 assumes when it calls
the gateway "trusted infrastructure" serving a handset population, and
the DoS posture of §3.2 applied one layer up from the handshake cookies
of :mod:`repro.protocols.dos`.

:class:`GatewayRuntime` multiplexes N concurrent handset WTLS sessions
over the :class:`~repro.protocols.reliable.VirtualClock` discrete-event
scheduler and guards the proxy path with three mechanisms:

* **token-bucket admission + a bounded queue** — arrivals beyond the
  sustained rate or the queue bound are *shed* with a structured
  ``GW-BUSY:`` rejection (reason + retry-after hint) instead of
  growing unbounded state: the memory/CPU analogue of the stateless
  cookie defence;
* **per-request virtual-time deadlines** — a request whose service
  cannot start before its deadline is answered ``GW-BUSY: deadline``
  rather than occupying the server after the handset gave up;
* **a closed → open → half-open circuit breaker per origin** — repeated
  wired-leg failures open the breaker and subsequent requests fast-fail
  degraded (no origin traffic at all); after a cooling period one
  half-open probe decides between closing it and re-opening.

Every request therefore gets exactly one of three answers — real,
``GW-DEGRADED:`` or ``GW-BUSY:`` — and with no faults injected and no
overload the runtime is byte-for-byte transparent versus the
single-session ``WAPGateway.forward`` path (the tests pin this).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from collections import deque

from ..crypto.rng import DeterministicDRBG
from ..hardware.battery import Battery, BatteryEmpty
from ..hardware.energy import EnergyModel
from ..observability import probe
from .alerts import BadRecordMAC, DecodeError, ProtocolAlert, ReplayError
from .certificates import CertificateAuthority
from .handshake import ClientConfig, ServerConfig
from .reliable import VirtualClock
from .transport import ChannelClosed, ChannelEmpty, DuplexChannel
from .wap import DEGRADED_PREFIX, HandlerFailure, OriginServer, WAPGateway
from .wtls import WTLSConnection, wtls_connect

BUSY_PREFIX = b"GW-BUSY:"

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


def busy_reply(reason: str, retry_after_s: Optional[float] = None) -> bytes:
    """Structured load-shed rejection: machine-parseable reason and an
    optional retry-after hint in virtual seconds."""
    reply = BUSY_PREFIX + b" reason=" + reason.encode()
    if retry_after_s is not None:
        reply += f" retry-after={retry_after_s:.3f}".encode()
    return reply


@dataclass(frozen=True)
class BreakerConfig:
    """Circuit-breaker tunables."""

    failure_threshold: int = 3      # consecutive failures that open it
    reset_timeout_s: float = 5.0    # open -> half-open cooling period

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure threshold must be at least 1")
        if self.reset_timeout_s <= 0:
            raise ValueError("reset timeout must be positive")


class CircuitBreaker:
    """Per-origin wired-leg health gate (closed → open → half-open).

    Replaces the blind per-call retry: when an origin keeps failing the
    gateway stops hammering it (and stops burning a service slot per
    doomed attempt) until the cooling period elapses, then risks one
    half-open probe.
    """

    def __init__(self, origin: str,
                 config: Optional[BreakerConfig] = None) -> None:
        self.origin = origin
        self.config = config or BreakerConfig()
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.transitions: List[Tuple[float, str, str]] = []
        self.fast_fails = 0
        # Half-open admits exactly ONE probe: concurrent sessions racing
        # the slot fast-fail until the in-flight probe resolves, so a
        # sick origin sees one trial request, not a thundering herd.
        self._probe_in_flight = False

    def _transition(self, now: float, to: str) -> None:
        self.transitions.append((now, self.state, to))
        probe.event("gateway.breaker", origin=self.origin,
                    from_state=self.state, to_state=to)
        self.state = to

    def allow(self, now: float) -> bool:
        """Whether an attempt may touch the origin right now."""
        if self.state == OPEN:
            if now - self.opened_at >= self.config.reset_timeout_s:
                self._transition(now, HALF_OPEN)
                self._probe_in_flight = True
            else:
                self.fast_fails += 1
                return False
        elif self.state == HALF_OPEN:
            if self._probe_in_flight:
                # Someone else holds the single probe slot.
                self.fast_fails += 1
                return False
            self._probe_in_flight = True
        return True

    def record_success(self, now: float) -> None:
        """A wired-leg exchange succeeded."""
        self._probe_in_flight = False
        if self.state != CLOSED:
            self._transition(now, CLOSED)
        self.consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        """A wired-leg exchange failed."""
        self._probe_in_flight = False
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or (
                self.state == CLOSED and self.consecutive_failures
                >= self.config.failure_threshold):
            self._transition(now, OPEN)
        if self.state == OPEN:
            self.opened_at = now

    def state_history(self) -> List[str]:
        """States entered, in order (initial CLOSED implied)."""
        return [to for _, _, to in self.transitions]


class TokenBucket:
    """Deterministic token-bucket admission on virtual time."""

    def __init__(self, capacity: float, refill_per_s: float) -> None:
        if capacity < 1:
            raise ValueError("bucket capacity must be at least 1")
        if refill_per_s <= 0:
            raise ValueError("refill rate must be positive")
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self.tokens = float(capacity)
        self._last = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self.tokens = min(
                self.capacity,
                self.tokens + (now - self._last) * self.refill_per_s)
            self._last = now

    def try_take(self, now: float) -> bool:
        """Consume one token if available."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def seconds_until_token(self, now: float) -> float:
        """Virtual seconds until one token will be available."""
        self._refill(now)
        if self.tokens >= 1.0:
            return 0.0
        return (1.0 - self.tokens) / self.refill_per_s


@dataclass(frozen=True)
class RuntimeConfig:
    """Gateway runtime tunables."""

    queue_limit: int = 32           # bounded admission queue depth
    bucket_capacity: float = 16.0   # admission burst budget
    bucket_refill_per_s: float = 8.0  # sustained admission rate (req/s)
    service_time_s: float = 0.05    # virtual service time per request
    deadline_s: float = 4.0         # request must *start* by arrival+this
    reply_batch: int = 1            # replies coalesced per WTLS batch
    malformed_skip: int = 16        # damaged records skipped per receive
    breaker: BreakerConfig = field(default_factory=BreakerConfig)

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ValueError("queue limit must be at least 1")
        if self.service_time_s < 0 or self.deadline_s <= 0:
            raise ValueError("service time / deadline must be sensible")
        if self.reply_batch < 1:
            raise ValueError("reply batch must be at least 1")
        if self.malformed_skip < 0:
            raise ValueError("malformed skip budget cannot be negative")


@dataclass
class RuntimeStats:
    """The runtime's answer ledger: every request lands in exactly one
    of served / degraded / shed, plus the supporting counters."""

    submitted: int = 0
    admitted: int = 0
    served: int = 0
    degraded: int = 0
    shed_rate_limited: int = 0
    shed_queue_full: int = 0
    shed_deadline: int = 0
    shed_malformed: int = 0
    malformed_discarded: int = 0
    breaker_fast_fails: int = 0
    wired_failures: int = 0
    handler_failures: int = 0
    battery_refusals: int = 0
    energy_mj: float = 0.0
    latencies: List[float] = field(default_factory=list)
    # Radio energy spent *answering* shed traffic, keyed by shed reason:
    # attacker-induced shedding costs real battery (the reply crosses
    # the airlink) and must show up in attribution, not read as free.
    shed_energy_mj: Dict[str, float] = field(default_factory=dict)

    @property
    def shed(self) -> int:
        """All load-shed answers."""
        return (self.shed_rate_limited + self.shed_queue_full
                + self.shed_deadline + self.shed_malformed)

    @property
    def answered(self) -> int:
        """Total requests answered one way or another."""
        return self.served + self.degraded + self.shed

    def p95_latency_s(self) -> float:
        """p95 virtual-time latency of served+degraded requests, via
        the shared fixed-bucket interpolation estimator."""
        from ..observability.metrics import quantile_of
        return quantile_of(self.latencies, 0.95)

    def energy_per_served_mj(self) -> float:
        """Radio energy per successfully served request."""
        return self.energy_mj / self.served if self.served else 0.0


@dataclass
class _Session:
    """One attached handset's gateway-side state."""

    conn: WTLSConnection
    battery: Optional[Battery] = None
    served: int = 0
    degraded: int = 0
    shed: int = 0
    brownouts: int = 0
    outbox: List[bytes] = field(default_factory=list)
    session_id: str = ""


@dataclass(order=True)
class _Arrival:
    """One submitted request, ordered by (time, sequence)."""

    time: float
    seq: int
    session_id: str = field(compare=False)
    destination: str = field(compare=False)


@dataclass
class _Pending:
    """One admitted request waiting for the proxy worker."""

    request: bytes
    session_id: str
    destination: str
    arrival: float
    deadline: float


class GatewayRuntime:
    """N concurrent handset WTLS sessions over one discrete-event loop.

    The runtime owns the virtual clock and a single proxy worker (the
    2003-era gateway is one box); ``add_ticker`` hooks (e.g. an
    :class:`~repro.core.supervisor.ApplianceSupervisor` ``poll``) run
    whenever virtual time advances, putting device faults and gateway
    load on one timeline.
    """

    def __init__(self, gateway: WAPGateway,
                 config: Optional[RuntimeConfig] = None,
                 clock: Optional[VirtualClock] = None,
                 energy: Optional[EnergyModel] = None) -> None:
        self.gateway = gateway
        self.config = config or RuntimeConfig()
        self.clock = clock or VirtualClock()
        self.energy = energy or EnergyModel()
        self.stats = RuntimeStats()
        self.sessions: Dict[str, _Session] = {}
        self.breakers: Dict[str, CircuitBreaker] = {}
        self._bucket = TokenBucket(self.config.bucket_capacity,
                                   self.config.bucket_refill_per_s)
        self._arrivals: List[_Arrival] = []
        self._queue: Deque[_Pending] = deque()
        self._server_free_at = 0.0
        self._seq = 0
        self._tickers: List[Callable[[float], None]] = []
        self._outages: Dict[str, List[Tuple[float, float]]] = {}
        self._fault_rates: Dict[str, Tuple[float, DeterministicDRBG]] = {}
        #: Called with ``(session_id, payload)`` for every answer the
        #: runtime sends (served, degraded, or shed).  A supervisor one
        #: layer up — the sharded fleet — uses it to track which
        #: submitted requests have been answered without reading the
        #: shard's internals (which vanish when the shard crashes).
        self.answer_hook: Optional[Callable[[str, bytes], None]] = None
        #: Set by the sharded fleet so this runtime's telemetry spans
        #: carry a ``shard`` attribute — the stream key the fleet
        #: trace store partitions on.  ``None`` (standalone runtime)
        #: adds nothing.
        self.shard_label: Optional[str] = None

    # -- session management --------------------------------------------------

    def attach_session(self, session_id: str, client: ClientConfig,
                       battery: Optional[Battery] = None,
                       channel: Optional[DuplexChannel] = None
                       ) -> WTLSConnection:
        """Handshake a new handset WTLS session; returns the handset's
        connection (the gateway keeps its own side).

        ``channel`` lets the session ride a caller-owned link — e.g. a
        :class:`~repro.protocols.faults.FaultyChannel` an adversary can
        inject frames into (the handset writes ``a->b``, so injected
        attacker frames travel toward the gateway on that direction).
        """
        if session_id in self.sessions:
            raise ValueError(f"session {session_id!r} already attached")
        handset_conn, gateway_side = wtls_connect(
            client, self.gateway.gateway_config, channel=channel)
        self.sessions[session_id] = _Session(
            gateway_side, battery, session_id=session_id)
        return handset_conn

    def adopt_session(self, session_id: str, gateway_side: WTLSConnection,
                      battery: Optional[Battery] = None) -> None:
        """Adopt an already-established gateway-side WTLS connection
        (e.g. ``gateway.handset_side`` from
        :func:`~repro.protocols.wap.build_wap_world`)."""
        if session_id in self.sessions:
            raise ValueError(f"session {session_id!r} already attached")
        self.sessions[session_id] = _Session(
            gateway_side, battery, session_id=session_id)

    # -- fault wiring --------------------------------------------------------

    def breaker_for(self, destination: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker guarding one origin."""
        if destination not in self.breakers:
            self.breakers[destination] = CircuitBreaker(
                destination, self.config.breaker)
        return self.breakers[destination]

    def add_ticker(self, ticker: Callable[[float], None]) -> None:
        """Register a hook called with ``clock.now`` as time advances."""
        self._tickers.append(ticker)

    def set_outage(self, destination: str,
                   windows: Sequence[Tuple[float, float]]) -> None:
        """Schedule wired-leg outage windows ``[(start_s, end_s), ...]``
        for an origin: attempts inside a window fail as link resets."""
        self._outages[destination] = sorted(windows)

    def set_fault_rate(self, destination: str, rate: float,
                       seed: int = 0) -> None:
        """Seeded i.i.d. wired-leg failure probability per attempt."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError("fault rate must be a probability")
        self._fault_rates[destination] = (
            rate, DeterministicDRBG(("gw-fault", destination, seed).__repr__()))

    # -- the event loop ------------------------------------------------------

    def submit(self, session_id: str, destination: str,
               arrival_offset_s: float = 0.0) -> None:
        """Register one pending request for a session.

        The handset must already have sent the request over its WTLS
        connection; the runtime decrypts it at the arrival time (that is
        when the gateway touches it — the WAP gap happens per request
        whatever the admission verdict).
        """
        if session_id not in self.sessions:
            raise KeyError(f"unknown session {session_id!r}")
        if arrival_offset_s < 0:
            raise ValueError("arrival offset cannot be negative")
        heapq.heappush(self._arrivals, _Arrival(
            time=self.clock.now + arrival_offset_s, seq=self._seq,
            session_id=session_id, destination=destination))
        self._seq += 1
        self.stats.submitted += 1

    def next_event_time(self) -> Optional[float]:
        """Virtual time of this runtime's next internal event, or
        ``None`` when it has nothing left to do.

        A serve whose start time already passed (the server went idle
        in the past) is due *now*; the fleet scheduler polls this to
        interleave many shards on one shared clock.
        """
        next_arrival = (self._arrivals[0].time
                        if self._arrivals else None)
        if self._queue:
            head_start = max(self._server_free_at, self._queue[0].arrival)
            due = max(head_start, self.clock.now)
            if next_arrival is None:
                return due
            return min(due, max(next_arrival, self.clock.now))
        if next_arrival is None:
            return None
        return max(next_arrival, self.clock.now)

    def step(self) -> bool:
        """Process exactly one event (one serve or one admission).

        Returns ``False`` when idle.  The serve-vs-admit choice is the
        same as the historical monolithic loop: serve the queue head
        when it can start no later than the next arrival (ties serve
        first), otherwise admit the next arrival.
        """
        if not (self._arrivals or self._queue):
            return False
        next_arrival = (self._arrivals[0].time
                        if self._arrivals else float("inf"))
        if self._queue:
            head_start = max(self._server_free_at,
                             self._queue[0].arrival)
            if head_start <= next_arrival:
                self._serve_one()
                return True
        arrival = heapq.heappop(self._arrivals)
        self._advance(arrival.time)
        self._admit(arrival)
        return True

    def run(self) -> RuntimeStats:
        """Drive the event loop until every request is answered."""
        while self.step():
            pass
        self.flush_all_replies()
        return self.stats

    def flush_all_replies(self) -> None:
        """Ship every session's batched outbox (end-of-run drain)."""
        for session in self.sessions.values():
            self._flush_replies(session)

    def _advance(self, when: float) -> None:
        if when > self.clock.now:
            self.clock.advance_to(when)
        for ticker in self._tickers:
            ticker(self.clock.now)

    # -- admission -----------------------------------------------------------

    def _admit(self, arrival: _Arrival) -> None:
        telemetry = probe.active
        if telemetry is None:
            self._admit_inner(arrival)
            return
        attrs = {"session": arrival.session_id,
                 "origin": arrival.destination}
        if self.shard_label is not None:
            attrs["shard"] = self.shard_label
        with telemetry.span("gateway.admit", **attrs) as span:
            span.set(verdict=self._admit_inner(arrival))

    def _admit_inner(self, arrival: _Arrival) -> str:
        session = self.sessions[arrival.session_id]
        now = self.clock.now
        discarded_before = session.conn.discarded
        try:
            # WTLS decrypt (the gap), skipping records that fail to
            # open — injected garbage, replays, corrupted frames.
            request = session.conn.receive_next(
                max_skip=self.config.malformed_skip)
        except (BadRecordMAC, DecodeError, ReplayError, ChannelEmpty):
            # Nothing valid to read: the pending frames were all
            # malformed (a wire-injection flood) or the link ran dry.
            # Degrade gracefully with a structured shed, never a crash.
            self.stats.malformed_discarded += (
                session.conn.discarded - discarded_before)
            self.stats.shed_malformed += 1
            session.shed += 1
            self._reply(session, busy_reply("malformed"),
                        shed_reason="malformed")
            return "malformed"
        self.stats.malformed_discarded += (
            session.conn.discarded - discarded_before)
        self.gateway.plaintext_log.append(request)
        self._charge(session, len(request))
        if not self._bucket.try_take(now):
            self.stats.shed_rate_limited += 1
            session.shed += 1
            self._reply(session, busy_reply(
                "rate-limited", self._bucket.seconds_until_token(now)),
                shed_reason="rate-limited")
            return "rate-limited"
        if len(self._queue) >= self.config.queue_limit:
            self.stats.shed_queue_full += 1
            session.shed += 1
            self._reply(session, busy_reply(
                "queue-full",
                self.config.service_time_s * len(self._queue)),
                shed_reason="queue-full")
            return "queue-full"
        self.stats.admitted += 1
        self._queue.append(_Pending(
            request=request, session_id=arrival.session_id,
            destination=arrival.destination, arrival=now,
            deadline=now + self.config.deadline_s))
        return "admitted"

    # -- service -------------------------------------------------------------

    def _serve_one(self) -> None:
        telemetry = probe.active
        if telemetry is None:
            self._serve_one_inner()
            return
        attrs = ({} if self.shard_label is None
                 else {"shard": self.shard_label})
        with telemetry.span("gateway.serve", **attrs) as span:
            session_id, outcome = self._serve_one_inner()
            span.set(session=session_id, outcome=outcome)

    def _serve_one_inner(self) -> Tuple[str, str]:
        pending = self._queue.popleft()
        session = self.sessions[pending.session_id]
        start = max(self._server_free_at, pending.arrival)
        self._advance(start)
        if start > pending.deadline:
            # Too stale to be worth origin work: answer shed, zero
            # service time (the check is bookkeeping, not proxying).
            self.stats.shed_deadline += 1
            session.shed += 1
            self._reply(session, busy_reply("deadline"),
                        shed_reason="deadline")
            return pending.session_id, "shed-deadline"
        finish = start + self.config.service_time_s
        self._server_free_at = finish
        self._advance(finish)
        reply = self._proxy(pending, session)
        self._reply(session, reply)
        self.stats.latencies.append(finish - pending.arrival)
        outcome = ("degraded" if reply.startswith(DEGRADED_PREFIX)
                   else "served")
        return pending.session_id, outcome

    def _proxy(self, pending: _Pending, session: _Session) -> bytes:
        destination = pending.destination
        now = self.clock.now
        if destination not in self.gateway._servers:
            self.stats.degraded += 1
            session.degraded += 1
            self.gateway.degraded_responses += 1
            return DEGRADED_PREFIX + b" origin unavailable (KeyError)"
        breaker = self.breaker_for(destination)
        if not breaker.allow(now):
            self.stats.breaker_fast_fails += 1
            self.stats.degraded += 1
            session.degraded += 1
            self.gateway.degraded_responses += 1
            return DEGRADED_PREFIX + b" origin circuit open"
        try:
            self._maybe_inject_outage(destination, now)
            reply = self.gateway._proxy_once(destination, pending.request)
        except HandlerFailure:
            # Origin reachable, application failed: not a breaker event.
            breaker.record_success(now)
            self.stats.handler_failures += 1
            self.gateway.handler_failures += 1
            self.stats.degraded += 1
            session.degraded += 1
            self.gateway.degraded_responses += 1
            return (DEGRADED_PREFIX
                    + b" origin handler error (HandlerFailure)")
        except (ProtocolAlert, ChannelClosed) as exc:
            breaker.record_failure(now)
            self.stats.wired_failures += 1
            self.gateway.wired_leg_failures += 1
            self.gateway._drop_wired_leg(destination)
            self.stats.degraded += 1
            session.degraded += 1
            self.gateway.degraded_responses += 1
            return (DEGRADED_PREFIX + b" origin unavailable ("
                    + type(exc).__name__.encode() + b")")
        breaker.record_success(now)
        self.stats.served += 1
        session.served += 1
        return reply

    def _maybe_inject_outage(self, destination: str, now: float) -> None:
        for start, end in self._outages.get(destination, ()):
            if start <= now < end:
                raise ChannelClosed(
                    f"origin {destination} outage "
                    f"[{start:.3f}, {end:.3f})s at t={now:.3f}s")
        fault = self._fault_rates.get(destination)
        if fault is not None:
            rate, drbg = fault
            if rate > 0.0 and drbg.random() < rate:
                raise ChannelClosed(
                    f"origin {destination} injected wired-leg fault "
                    f"at t={now:.3f}s")

    # -- reply path ----------------------------------------------------------

    def send_control_reply(self, session_id: str, payload: bytes,
                           shed_reason: Optional[str] = None) -> None:
        """Answer a session outside the serve loop.

        The supervisor path: a fleet migrating sessions off a dead
        shard answers the orphaned requests (``GW-BUSY:
        reason=recovering``) through the adopting runtime, with the
        same logging, energy accounting, and answer-hook semantics as
        a scheduled reply.
        """
        self._reply(self.sessions[session_id], payload,
                    shed_reason=shed_reason)

    def _reply(self, session: _Session, payload: bytes,
               shed_reason: Optional[str] = None) -> None:
        """Answer one request, coalescing when configured.

        With ``reply_batch > 1`` replies queue in the session's outbox
        and ship as one batched WTLS transmission
        (:meth:`~repro.protocols.wtls.WTLSConnection.send_batch`) every
        ``reply_batch`` replies (and at the end of :meth:`run`); the
        handset reads them with ``receive_batch``.  Logging and energy
        accounting happen at answer time either way, so the stats
        ledger is identical to the unbatched configuration.

        ``shed_reason`` marks a ``GW-BUSY:`` answer: its airlink energy
        is additionally booked per reason in ``stats.shed_energy_mj``,
        so shedding caused by an attack is visibly charged rather than
        silently folded into the aggregate.
        """
        self.gateway.plaintext_log.append(payload)  # the gap again
        if self.config.reply_batch <= 1:
            session.conn.send(payload)
        else:
            session.outbox.append(payload)
            if len(session.outbox) >= self.config.reply_batch:
                self._flush_replies(session)
        millijoules = self._charge(session, len(payload))
        if shed_reason is not None:
            self.stats.shed_energy_mj[shed_reason] = (
                self.stats.shed_energy_mj.get(shed_reason, 0.0)
                + millijoules)
        if self.answer_hook is not None:
            self.answer_hook(session.session_id, payload)

    def _flush_replies(self, session: _Session) -> None:
        if session.outbox:
            session.conn.send_batch(session.outbox)
            session.outbox = []

    def _charge(self, session: _Session, num_bytes: int) -> float:
        """Account handset radio energy (rx of a reply / tx of a request
        are symmetric enough for the ledger: one airlink crossing).
        Returns the charged millijoules."""
        millijoules = self.energy.frame_receive_mj(num_bytes)
        self.stats.energy_mj += millijoules
        if session.battery is None:
            return millijoules
        try:
            session.battery.drain_mj(millijoules)
        except BatteryEmpty:
            # The handset's problem (its supervisor handles brownout);
            # the gateway only records that the charge was refused.
            session.brownouts += 1
            self.stats.battery_refusals += 1
        return millijoules


def build_gateway_runtime_world(
        sessions: int = 8, seed: int = 0,
        handler: Optional[Callable[[bytes], bytes]] = None,
        config: Optional[RuntimeConfig] = None,
        batteries: Optional[Dict[str, Battery]] = None,
        clock: Optional[VirtualClock] = None,
        channel_factory: Optional[Callable[[str], DuplexChannel]] = None,
) -> Tuple[GatewayRuntime, Dict[str, WTLSConnection], CertificateAuthority]:
    """A full N-handset world: CA, origin, gateway, runtime, and
    ``sessions`` attached handsets named ``handset-00`` ....

    Mirrors :func:`~repro.protocols.wap.build_wap_world` (same CA/origin
    construction) so single-session transparency can be checked against
    it; returns ``(runtime, {session_id: handset_conn}, ca)``.
    """
    ca = CertificateAuthority(
        "WAP-CA", DeterministicDRBG(("ca", seed).__repr__()))
    gw_key, gw_cert = ca.issue(
        "gateway.operator", DeterministicDRBG(("gw", seed).__repr__()))
    origin_key, origin_cert = ca.issue(
        "origin.example", DeterministicDRBG(("origin", seed).__repr__()))
    handler = handler or (lambda request: b"OK:" + request)
    origin = OriginServer(
        name="origin.example", handler=handler,
        config=ServerConfig(
            rng=DeterministicDRBG(("origin-rng", seed).__repr__()),
            certificate=origin_cert, private_key=origin_key))
    gateway = WAPGateway(
        ca=ca,
        rng=DeterministicDRBG(("gw-rng", seed).__repr__()),
        gateway_config=ServerConfig(
            rng=DeterministicDRBG(("gw-srv-rng", seed).__repr__()),
            certificate=gw_cert, private_key=gw_key))
    gateway.register_origin(origin)
    runtime = GatewayRuntime(gateway, config=config, clock=clock)
    handsets: Dict[str, WTLSConnection] = {}
    batteries = batteries or {}
    for index in range(sessions):
        session_id = f"handset-{index:02d}"
        client = ClientConfig(
            rng=DeterministicDRBG((session_id, seed).__repr__()),
            ca=ca, expected_server="gateway.operator")
        handsets[session_id] = runtime.attach_session(
            session_id, client, battery=batteries.get(session_id),
            channel=(channel_factory(session_id)
                     if channel_factory is not None else None))
    return runtime, handsets, ca
