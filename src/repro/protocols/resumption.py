"""Session resumption — the protocol-level answer to the handshake gap.

Section 3.2 shows RSA connection setup dominating the security
processing budget (the SA-1100 cannot meet a 0.1 s latency target).
The period's standard mitigation, which SSL/WTLS both specified, is
*session resumption*: client and server cache the master secret under
a session id and later run an **abbreviated handshake** — fresh nonces
and Finished messages only, no certificates and no public-key
operations.  The cost model in :mod:`repro.hardware.cycles` prices the
abbreviated handshake at the protocol-overhead term alone, collapsing
the Figure 3 handshake plane by ~50x.

The wire flow here reuses the mini-TLS message grammar: the client
sends its cached session id inside ClientHello's suite list slot
prefix (``resume:<id>`` pseudo-suite), the server answers with an
empty-certificate ServerHello carrying the same id in its key-exchange
field, and both sides go straight to Finished under keys derived from
the cached master and the new nonces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..crypto.bitops import constant_time_compare
from ..crypto.rng import DeterministicDRBG
from .alerts import HandshakeFailure
from .ciphersuites import SUITES_BY_NAME, CipherSuite
from .handshake import ClientConfig, ServerConfig, Session
from .kdf import derive_key_block, finished_verify_data, prf
from .messages import ClientHello, Finished, ServerHello
from .records import CONTENT_HANDSHAKE, make_record_pair
from .transport import DuplexChannel, Endpoint


@dataclass
class CachedSession:
    """What both peers retain for later resumption."""

    session_id: bytes
    suite_name: str
    master: bytes


@dataclass
class SessionCache:
    """A bounded cache of resumable sessions.

    Two defences keep fleet-shared resumption state from growing (or
    aging) without limit — the same discipline the DoS responder
    applies to its pending-handshake table:

    * **bounded capacity with seeded eviction** — beyond ``capacity``
      a victim is evicted; with an ``eviction_rng`` the victim is
      *seeded-random* (deterministic per run, unpredictable to an
      adversary trying to pin a chosen entry for eviction), otherwise
      the historical FIFO order applies.  Every eviction counts.
    * **rotation GC** — :meth:`rotate` advances a generation counter;
      with ``generation_limit`` set, entries not re-stored within the
      last ``generation_limit`` generations are expired.  Tickets
      therefore have a bounded lifetime measured in rotation epochs.
    """

    capacity: int = 32
    _entries: Dict[bytes, CachedSession] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    rotations: int = 0
    expired: int = 0
    eviction_rng: Optional[DeterministicDRBG] = None
    generation_limit: int = 0
    _generation: int = 0
    _generations: Dict[bytes, int] = field(default_factory=dict)

    def store(self, entry: CachedSession) -> None:
        """Insert, evicting one victim beyond capacity."""
        if len(self._entries) >= self.capacity and \
                entry.session_id not in self._entries:
            if self.eviction_rng is not None:
                victims = sorted(self._entries)
                victim = victims[
                    self.eviction_rng.randrange(len(victims))]
            else:
                victim = next(iter(self._entries))
            del self._entries[victim]
            self._generations.pop(victim, None)
            self.evictions += 1
        self._entries[entry.session_id] = entry
        self._generations[entry.session_id] = self._generation

    def lookup(self, session_id: bytes) -> Optional[CachedSession]:
        """Fetch a cached session, counting hit/miss."""
        entry = self._entries.get(session_id)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def invalidate(self, session_id: bytes) -> None:
        """Drop one session (e.g. after a Finished failure)."""
        self._entries.pop(session_id, None)
        self._generations.pop(session_id, None)

    def touch(self, session_id: bytes) -> None:
        """Refresh an entry's generation (it was used recently)."""
        if session_id in self._entries:
            self._generations[session_id] = self._generation

    def rotate(self) -> int:
        """Advance one GC epoch; expire entries older than the limit.

        Returns how many entries expired.  With ``generation_limit``
        of zero, rotation only advances the epoch (GC disabled).
        """
        self._generation += 1
        self.rotations += 1
        if self.generation_limit <= 0:
            return 0
        cutoff = self._generation - self.generation_limit
        stale = [session_id for session_id, born
                 in self._generations.items() if born < cutoff]
        for session_id in stale:
            del self._entries[session_id]
            del self._generations[session_id]
        self.expired += len(stale)
        return len(stale)

    def __len__(self) -> int:
        return len(self._entries)


def cache_session(cache: SessionCache, session: Session,
                  rng: DeterministicDRBG) -> bytes:
    """Assign a session id to a full-handshake session and cache it.

    Returns the id; call on both peers (with the same id — the server
    allocates it in real TLS; here the caller distributes it).
    """
    session_id = rng.random_bytes(16)
    cache.store(CachedSession(
        session_id=session_id, suite_name=session.suite.name,
        master=session.master))
    return session_id


def resume(client: ClientConfig, server: ServerConfig,
           client_cache: SessionCache, server_cache: SessionCache,
           session_id: bytes,
           channel: Optional[DuplexChannel] = None,
           endpoints: Optional[Tuple[Endpoint, Endpoint]] = None
           ) -> Tuple[Session, Session]:
    """Run the abbreviated handshake for a cached session.

    Raises :class:`HandshakeFailure` when either side has lost the
    session or the Finished exchange does not verify (in which case
    callers fall back to a full handshake, as the real protocol does).
    Pass ``endpoints=(client_ep, server_ep)`` to resume over pre-built
    endpoints — how :mod:`repro.protocols.recovery` reconnects over a
    fresh (possibly lossy, ARQ-protected) link after a reset.
    """
    if endpoints is not None:
        client_ep, server_ep = endpoints
    else:
        channel = channel or DuplexChannel()
        client_ep = channel.endpoint_a()
        server_ep = channel.endpoint_b()

    client_entry = client_cache.lookup(session_id)
    if client_entry is None:
        raise HandshakeFailure("client no longer holds the session")
    suite = SUITES_BY_NAME[client_entry.suite_name]

    # Abbreviated ClientHello: the pseudo-suite marks the resume offer.
    client_random = client.rng.random_bytes(32)
    hello = ClientHello(
        client_random, ["resume:" + session_id.hex()])
    client_ep.send(hello.to_bytes())

    raw = server_ep.receive()
    hello_seen = ClientHello.from_bytes(raw)
    offered_id = _extract_session_id(hello_seen)
    server_entry = server_cache.lookup(offered_id) if offered_id else None
    if server_entry is None:
        raise HandshakeFailure("server no longer holds the session")

    server_random = server.rng.random_bytes(32)
    server_hello = ServerHello(
        server_random=server_random, suite_name=server_entry.suite_name,
        certificate=b"", key_exchange=offered_id,
        request_client_auth=False)
    server_ep.send(server_hello.to_bytes())
    raw = client_ep.receive()
    reply = ServerHello.from_bytes(raw)
    if reply.key_exchange != session_id:
        raise HandshakeFailure("server resumed a different session")

    # Both sides refresh the key block from the cached master + nonces.
    client_session = _build_side(
        suite, client_entry.master, client_random, reply.server_random,
        is_client=True)
    server_session = _build_side(
        suite, server_entry.master, hello_seen.client_random,
        server_random, is_client=False)

    # Finished exchange under the new keys, bound to the new nonces.
    seed = client_random + reply.server_random
    client_verify = finished_verify_data(
        client_entry.master, seed, b"resume client")
    client_ep.send(client_session.encoder.encode(
        CONTENT_HANDSHAKE, Finished(client_verify).to_bytes()))
    _, payload = server_session.decoder.decode(server_ep.receive())
    seen = Finished.from_bytes(payload)
    expected = finished_verify_data(
        server_entry.master, hello_seen.client_random + server_random,
        b"resume client")
    if not constant_time_compare(expected, seen.verify_data):
        server_cache.invalidate(session_id)
        raise HandshakeFailure("resume client Finished mismatch")

    server_verify = finished_verify_data(
        server_entry.master, hello_seen.client_random + server_random,
        b"resume server")
    server_ep.send(server_session.encoder.encode(
        CONTENT_HANDSHAKE, Finished(server_verify).to_bytes()))
    _, payload = client_session.decoder.decode(client_ep.receive())
    seen = Finished.from_bytes(payload)
    expected = finished_verify_data(
        client_entry.master, seed, b"resume server")
    if not constant_time_compare(expected, seen.verify_data):
        client_cache.invalidate(session_id)
        raise HandshakeFailure("resume server Finished mismatch")

    # A successful resumption refreshes both entries' GC generation:
    # live sessions survive rotation, abandoned ones age out.
    client_cache.touch(session_id)
    server_cache.touch(offered_id)
    return client_session, server_session


def _extract_session_id(hello: ClientHello) -> Optional[bytes]:
    for name in hello.suite_names:
        if name.startswith("resume:"):
            try:
                return bytes.fromhex(name.split(":", 1)[1])
            except ValueError:
                return None
    return None


def _build_side(suite: CipherSuite, master: bytes, client_random: bytes,
                server_random: bytes, is_client: bool) -> Session:
    keys = derive_key_block(
        prf(master, b"resumed master", client_random + server_random, 48),
        client_random, server_random, suite)
    encoder, decoder = make_record_pair(suite, keys, is_client=is_client)
    return Session(
        suite=suite, master=master, encoder=encoder, decoder=decoder,
        peer_certificate=None,
        transcript_digest=prf(master, b"resume transcript",
                              client_random + server_random, 20),
        handshake_messages=4,
    )
