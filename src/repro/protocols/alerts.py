"""Protocol-level exceptions (alerts) shared by the protocol stacks.

Modelled on the TLS alert taxonomy: a record-layer integrity failure,
a handshake negotiation failure, and a generic protocol violation are
distinct events that peers (and our tests) react to differently.
"""

from __future__ import annotations


class ProtocolAlert(Exception):
    """Base class for protocol failures."""


class HandshakeFailure(ProtocolAlert):
    """Negotiation could not complete (no common suite, bad finished...)."""


class BadRecordMAC(ProtocolAlert):
    """A record failed MAC verification — tampering or key mismatch."""


class DecodeError(ProtocolAlert):
    """A message could not be parsed."""


class CertificateError(ProtocolAlert):
    """Peer certificate failed validation."""


class ReplayError(ProtocolAlert):
    """A packet failed anti-replay checks (IPSec window, WEP IV)."""


class RecordOverflow(ProtocolAlert):
    """A plaintext fragment exceeds the record layer's 2^14 ceiling.

    TLS 1.0 §6.2.1: record plaintext fragments are capped at 2^14
    bytes.  Callers with larger payloads use the batched API
    (:func:`~repro.protocols.records_batch.encode_batch`), which
    fragments automatically."""


class RenegotiationRequired(ProtocolAlert):
    """A record sequence counter reached its wire-field width.

    The connection keys have protected as many records as the sequence
    field can number; continuing would wrap the counter and reuse MAC
    inputs.  The session must re-handshake (or resume) to refresh keys
    before sending more data."""


class UnexpectedMessage(ProtocolAlert):
    """A message arrived in the wrong handshake state."""
