"""Protocol-level exceptions (alerts) shared by the protocol stacks.

Modelled on the TLS alert taxonomy: a record-layer integrity failure,
a handshake negotiation failure, and a generic protocol violation are
distinct events that peers (and our tests) react to differently.
"""

from __future__ import annotations


class ProtocolAlert(Exception):
    """Base class for protocol failures."""


class HandshakeFailure(ProtocolAlert):
    """Negotiation could not complete (no common suite, bad finished...)."""


class BadRecordMAC(ProtocolAlert):
    """A record failed MAC verification — tampering or key mismatch."""


class DecodeError(ProtocolAlert):
    """A message could not be parsed."""


class CertificateError(ProtocolAlert):
    """Peer certificate failed validation."""


class ReplayError(ProtocolAlert):
    """A packet failed anti-replay checks (IPSec window, WEP IV)."""


class UnexpectedMessage(ProtocolAlert):
    """A message arrived in the wrong handshake state."""
