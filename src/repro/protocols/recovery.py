"""Graceful session recovery over a hostile link.

The stacks' answer to §2's unreliable bearer, stitched together from
pieces that already existed but had never been composed against loss:

* **handshake retry with suite fallback** — repeated
  :class:`~repro.protocols.alerts.HandshakeFailure` walks down the
  client's cipher-suite preference list
  (:func:`~repro.protocols.tls.connect_with_fallback`);
* **reconnect via resumption** — after a link reset the client offers
  its cached session id and both sides run the abbreviated handshake
  (:func:`~repro.protocols.resumption.resume`), avoiding the RSA
  operations §3.2 shows an embedded CPU cannot afford to repeat;
* **alert-driven teardown** — a
  :class:`~repro.protocols.alerts.BadRecordMAC` on application data
  means keys diverged or an attacker is live: both caches invalidate
  the session and a *full* re-handshake replaces it.

:class:`ResilientSession` manages both peers of the in-memory world
(the simulation owns client and server alike) and keeps a
:class:`RecoveryReport` ledger so tests and benches can assert exactly
which recovery path ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..crypto.rng import DeterministicDRBG
from ..observability import probe
from .alerts import BadRecordMAC, HandshakeFailure
from .handshake import ClientConfig, ServerConfig
from .reliable import VirtualClock
from .resumption import CachedSession, SessionCache, resume
from .tls import SecureConnection, connect_with_fallback
from .transport import ChannelClosed, DuplexChannel, Endpoint

EndpointFactory = Callable[[], Tuple[Endpoint, Endpoint]]


@dataclass(frozen=True)
class ReconnectPolicy:
    """Virtual-time budget for the resumption path of a reconnect.

    Each failed resumption attempt backs off exponentially (with
    seeded jitter so concurrent sessions don't thunder in lockstep)
    on the session's virtual clock; once the clock passes
    ``deadline_s`` past the reconnect start — or ``max_attempts``
    resumes have failed — the client stops burning the battery on
    abbreviated handshakes that aren't landing and falls back to one
    full handshake.
    """

    deadline_s: float = 2.0
    base_backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 0.8
    jitter_s: float = 0.02
    max_attempts: int = 5

    def __post_init__(self) -> None:
        if self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff times must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")


@dataclass
class RecoveryReport:
    """Which recovery paths ran, and how often."""

    full_handshakes: int = 0
    resumptions: int = 0
    resume_attempts: int = 0
    suite_fallbacks: int = 0
    handshake_link_failures: int = 0
    mac_failures: int = 0
    rehandshakes_after_mac: int = 0
    link_failures: int = 0
    redeliveries: int = 0
    reconnect_deadline_exceeded: int = 0
    failures: List[str] = field(default_factory=list)


def _default_factory() -> Tuple[Endpoint, Endpoint]:
    channel = DuplexChannel()
    return channel.endpoint_a(), channel.endpoint_b()


class ResilientSession:
    """A client-server session that survives resets, loss, and tampering.

    ``endpoint_factory`` models "bring up a fresh link": every
    (re)connect calls it for a new ``(client_ep, server_ep)`` pair — a
    perfect channel by default, or a
    :class:`~repro.protocols.faults.FaultyChannel` (optionally under a
    :class:`~repro.protocols.reliable.ReliableLink`) for the lossy-link
    harness.

    Delivery is at-least-once: a payload that triggered recovery is
    re-sent on the recovered session (``report.redeliveries`` counts
    these).
    """

    def __init__(self, client: ClientConfig, server: ServerConfig,
                 endpoint_factory: Optional[EndpointFactory] = None,
                 session_rng: Optional[DeterministicDRBG] = None,
                 max_handshake_attempts: int = 4,
                 cache_capacity: int = 32,
                 reconnect_policy: Optional[ReconnectPolicy] = None,
                 clock: Optional[VirtualClock] = None) -> None:
        self.client = client
        self.server = server
        self._factory = endpoint_factory or _default_factory
        self._session_rng = session_rng or DeterministicDRBG("resilient-ids")
        self.max_handshake_attempts = max_handshake_attempts
        self.client_cache = SessionCache(capacity=cache_capacity)
        self.server_cache = SessionCache(capacity=cache_capacity)
        self.reconnect_policy = reconnect_policy
        self.clock = clock if clock is not None else VirtualClock()
        self._backoff_rng = DeterministicDRBG("resilient-backoff")
        self.report = RecoveryReport()
        self._client_conn: Optional[SecureConnection] = None
        self._server_conn: Optional[SecureConnection] = None
        self._session_id: Optional[bytes] = None

    # -- connection management ---------------------------------------------

    @property
    def connected(self) -> bool:
        """Whether a session is currently established."""
        return self._client_conn is not None

    @property
    def session_id(self) -> Optional[bytes]:
        """The cached (resumable) session id, if any."""
        return self._session_id

    @property
    def connections(self) -> Tuple[SecureConnection, SecureConnection]:
        """The live ``(client, server)`` connections (establishing first)."""
        if self._client_conn is None or self._server_conn is None:
            self.establish()
        assert self._client_conn is not None and self._server_conn is not None
        return self._client_conn, self._server_conn

    def establish(self) -> None:
        """Full handshake (with retry + suite fallback) and cache it."""
        with probe.span("recovery.establish", path="full"):
            client_conn, server_conn, log = connect_with_fallback(
                self.client, self.server, endpoint_factory=self._factory,
                max_attempts=self.max_handshake_attempts)
        self.report.full_handshakes += 1
        self.report.suite_fallbacks += log.suite_fallbacks
        self.report.handshake_link_failures += log.link_failures
        self.report.failures.extend(log.failures)
        self._client_conn, self._server_conn = client_conn, server_conn
        self._cache_current()

    def _cache_current(self) -> None:
        assert self._client_conn is not None and self._server_conn is not None
        session_id = self._session_rng.random_bytes(16)
        client_session = self._client_conn.session
        server_session = self._server_conn.session
        self.client_cache.store(CachedSession(
            session_id=session_id, suite_name=client_session.suite.name,
            master=client_session.master))
        self.server_cache.store(CachedSession(
            session_id=session_id, suite_name=server_session.suite.name,
            master=server_session.master))
        self._session_id = session_id

    def reconnect(self) -> str:
        """Bring the session back after a link reset.

        Tries the abbreviated resumption handshake first (no public-key
        work — the §3.2 economics); falls back to a full handshake when
        either side has lost the cached session.  With a
        :class:`ReconnectPolicy`, failed resumes retry under
        exponential backoff with seeded jitter on the virtual clock
        until the per-reconnect deadline or attempt budget runs out
        (``report.reconnect_deadline_exceeded`` counts deadline
        exits).  Returns which path ran: ``"resumed"`` or ``"full"``.
        """
        if self._session_id is not None:
            attempts = (1 if self.reconnect_policy is None
                        else self.reconnect_policy.max_attempts)
            if self._try_resume(attempts):
                return "resumed"
        self.establish()
        return "full"

    def _try_resume(self, max_attempts: int) -> bool:
        policy = self.reconnect_policy
        started = self.clock.now
        backoff = policy.base_backoff_s if policy is not None else 0.0
        for attempt in range(max_attempts):
            if (policy is not None
                    and self.clock.now - started >= policy.deadline_s):
                self.report.reconnect_deadline_exceeded += 1
                self.report.failures.append(
                    f"resume: deadline {policy.deadline_s}s exceeded "
                    f"after {attempt} attempts")
                probe.event("recovery.reconnect-deadline",
                            attempts=attempt,
                            deadline_s=policy.deadline_s)
                return False
            self.report.resume_attempts += 1
            endpoints = self._factory()
            try:
                with probe.span("recovery.reconnect", path="resume",
                                attempt=attempt):
                    client_session, server_session = resume(
                        self.client, self.server,
                        self.client_cache, self.server_cache,
                        self._session_id, endpoints=endpoints)
            except (HandshakeFailure, ChannelClosed) as exc:
                self.report.failures.append(f"resume[{attempt}]: {exc}")
                if policy is not None:
                    pause = min(backoff, policy.max_backoff_s)
                    pause += self._backoff_rng.random() * policy.jitter_s
                    self.clock.advance_to(self.clock.now + pause)
                    backoff *= policy.backoff_factor
            else:
                self.report.resumptions += 1
                self._client_conn = SecureConnection(
                    client_session, endpoints[0])
                self._server_conn = SecureConnection(
                    server_session, endpoints[1])
                return True
        return False

    def teardown(self) -> None:
        """Alert-driven teardown: the session is no longer trustworthy.

        Invalidates the cached session on *both* peers (a tampered
        record must not be resumable) and drops the live connections.
        """
        if self._session_id is not None:
            self.client_cache.invalidate(self._session_id)
            self.server_cache.invalidate(self._session_id)
            self._session_id = None
        self._client_conn = None
        self._server_conn = None

    # -- recovering delivery -----------------------------------------------

    def deliver_to_server(self, data: bytes) -> bytes:
        """Send ``data`` client->server, recovering as needed."""
        return self._deliver(data, to_server=True)

    def deliver_to_client(self, data: bytes) -> bytes:
        """Send ``data`` server->client, recovering as needed."""
        return self._deliver(data, to_server=False)

    def _deliver(self, data: bytes, to_server: bool,
                 max_recoveries: int = 2) -> bytes:
        if self._client_conn is None:
            self.establish()
        for _ in range(max_recoveries + 1):
            assert self._client_conn is not None \
                and self._server_conn is not None
            if to_server:
                sender, receiver = self._client_conn, self._server_conn
            else:
                sender, receiver = self._server_conn, self._client_conn
            try:
                sender.send(data)
                return receiver.receive()
            except BadRecordMAC as exc:
                # Tampering or key divergence: invalidate + full rekey.
                self.report.mac_failures += 1
                self.report.failures.append(f"mac: {exc}")
                probe.event("recovery.mac-failure",
                            error=type(exc).__name__)
                self.teardown()
                self.report.rehandshakes_after_mac += 1
                self.establish()
                self.report.redeliveries += 1
            except ChannelClosed as exc:
                # Link reset, lost frame without ARQ, or retry budget
                # exhausted below us: bring up a fresh link and resume.
                self.report.link_failures += 1
                self.report.failures.append(
                    f"link: {type(exc).__name__}: {exc}")
                probe.event("recovery.link-failure",
                            error=type(exc).__name__)
                self.reconnect()
                self.report.redeliveries += 1
        raise ChannelClosed(
            f"delivery failed after {max_recoveries} recovery attempts: "
            f"{self.report.failures[-max_recoveries:]}")
