"""Denial-of-service protection for connection setup (§2).

Section 2 lists "preventing denial-of-service attacks" among the
security functions a mobile platform needs.  For the §3.2 handshake
economics this is acute: one spoofed ClientHello costs the attacker a
UDP datagram but costs the server an RSA private operation (~55 M
instructions in the cost model) — a catastrophic amplification against
an embedded server (e.g. the WAP gateway's WTLS side).

The period fix (Photuris/IKE cookies, later DTLS HelloVerify) is a
**stateless cookie exchange**: before doing any expensive work, the
responder sends ``cookie = HMAC(rotating secret, client address ||
client nonce)`` and forgets the request.  Only a client that can
*receive* at its claimed address can echo the cookie, so blind spoofed
floods are filtered at the cost of one HMAC each.

:class:`CookieProtectedResponder` implements the gate plus accounting;
:func:`flood_experiment` measures the §3.2-denominated damage a
spoofed flood does with and without the gate.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..crypto.bitops import constant_time_compare
from ..crypto.hmac import hmac
from ..crypto.rng import DeterministicDRBG
from ..hardware.cycles import handshake_cost

COOKIE_BYTES = 16
HMAC_COST_MI = 0.002  # ~2k instructions per cookie check, from the model


@dataclass
class CookieProtectedResponder:
    """A handshake responder with a stateless-cookie front gate.

    ``require_cookies=False`` models the naive responder that commits
    RSA work on first contact.  ``expensive_work_mi`` is what one
    accepted handshake costs (the §3.2 figure by default).
    """

    rng: DeterministicDRBG
    require_cookies: bool = True
    expensive_work_mi: float = field(
        default_factory=lambda: handshake_cost().total_mi)
    pending_limit: int = 256
    secret_rotations: int = 0
    cookies_issued: int = 0
    cookies_verified: int = 0
    cookies_rejected: int = 0
    cookies_grace_accepted: int = 0
    cookies_unmatched: int = 0
    evicted: int = 0
    handshakes_started: int = 0
    work_spent_mi: float = 0.0

    def __post_init__(self) -> None:
        if self.pending_limit < 1:
            raise ValueError("pending limit must be at least 1")
        self._secret = self.rng.random_bytes(20)
        self._previous_secret: Optional[bytes] = None
        # Seeded eviction keeps the schedule reproducible without ever
        # touching the secret stream (its own DRBG, forked once here).
        self._evict_rng = DeterministicDRBG(self.rng.random_bytes(16))
        # Pending-cookie table: (address, nonce) -> rotation epoch at
        # issue.  Pure accounting (best-effort single-use tracking) —
        # the HMAC remains the gate — and therefore *bounded*: under a
        # spoofed flood an unbounded table is itself a memory-DoS, so
        # past ``pending_limit`` entries a seeded-random victim is
        # evicted (counted in ``evicted``).
        self._pending: "OrderedDict[Tuple[str, bytes], int]" = OrderedDict()

    @property
    def pending_cookies(self) -> int:
        """Outstanding first-contact entries (always <= pending_limit)."""
        return len(self._pending)

    def snapshot(self) -> dict:
        """The accounting ledger as a plain dict (report/export seam)."""
        return {
            "pending_cookies": self.pending_cookies,
            "cookies_issued": self.cookies_issued,
            "cookies_verified": self.cookies_verified,
            "cookies_rejected": self.cookies_rejected,
            "cookies_grace_accepted": self.cookies_grace_accepted,
            "cookies_unmatched": self.cookies_unmatched,
            "evicted": self.evicted,
            "secret_rotations": self.secret_rotations,
            "handshakes_started": self.handshakes_started,
            "work_spent_mi": round(self.work_spent_mi, 6),
        }

    def rotate_secret(self) -> None:
        """Periodic rotation bounds cookie lifetime (replay window).

        The outgoing secret is kept for one rotation as a grace window:
        a client whose cookie crossed the (slow, lossy) radio link
        while the secret rotated is not spuriously rejected.  Two
        rotations fully expire a cookie — and garbage-collect its
        pending entry (the cookie can never verify again).
        """
        self._previous_secret = self._secret
        self._secret = self.rng.random_bytes(20)
        self.secret_rotations += 1
        for key in [key for key, epoch in self._pending.items()
                    if self.secret_rotations - epoch >= 2]:
            del self._pending[key]

    def _remember_pending(self, address: str, nonce: bytes) -> None:
        key = (address, nonce)
        if key in self._pending:
            self._pending.move_to_end(key)
        elif len(self._pending) >= self.pending_limit:
            victim = list(self._pending)[
                self._evict_rng.randrange(len(self._pending))]
            del self._pending[victim]
            self.evicted += 1
        self._pending[key] = self.secret_rotations

    def _cookie_for(self, address: str, nonce: bytes,
                    secret: Optional[bytes] = None) -> bytes:
        secret = self._secret if secret is None else secret
        return hmac(secret, address.encode() + nonce)[:COOKIE_BYTES]

    # -- protocol steps ----------------------------------------------------------

    def first_contact(self, address: str, nonce: bytes) -> Optional[bytes]:
        """Handle an initial hello.

        With cookies on: reply with a cookie, spend only an HMAC, and
        keep no *handshake* state — only a bounded pending-table entry
        whose loss costs nothing (the HMAC is the gate).  With cookies
        off: start the expensive handshake immediately (the vulnerable
        baseline).
        """
        if self.require_cookies:
            self.cookies_issued += 1
            self.work_spent_mi += HMAC_COST_MI
            self._remember_pending(address, nonce)
            return self._cookie_for(address, nonce)
        self._start_handshake()
        return None

    def second_contact(self, address: str, nonce: bytes,
                       cookie: bytes) -> bool:
        """Handle a hello carrying an echoed cookie.

        Accepts cookies minted under the current secret, or — within
        the one-rotation grace window — the previous one (counted in
        ``cookies_grace_accepted``).  An accepted cookie consumes its
        pending-table entry; a valid cookie with no entry (evicted
        under flood pressure, or a within-window replay) still passes
        the cryptographic gate but is counted in ``cookies_unmatched``.
        """
        self.work_spent_mi += HMAC_COST_MI
        if constant_time_compare(
                self._cookie_for(address, nonce), cookie):
            self.cookies_verified += 1
            self._consume_pending(address, nonce)
            self._start_handshake()
            return True
        if self._previous_secret is not None:
            self.work_spent_mi += HMAC_COST_MI
            if constant_time_compare(
                    self._cookie_for(address, nonce,
                                     secret=self._previous_secret),
                    cookie):
                self.cookies_verified += 1
                self.cookies_grace_accepted += 1
                self._consume_pending(address, nonce)
                self._start_handshake()
                return True
        self.cookies_rejected += 1
        return False

    def _consume_pending(self, address: str, nonce: bytes) -> None:
        if self._pending.pop((address, nonce), None) is None:
            self.cookies_unmatched += 1

    def _start_handshake(self) -> None:
        self.handshakes_started += 1
        self.work_spent_mi += self.expensive_work_mi


@dataclass
class FloodReport:
    """What a spoofed-source flood cost the responder."""

    flood_size: int
    handshakes_started: int
    work_spent_mi: float
    seconds_on_sa1100: float
    legitimate_clients_served: int


def flood_experiment(flood_size: int = 1000,
                     legitimate_clients: int = 5,
                     require_cookies: bool = True,
                     seed: int = 0) -> FloodReport:
    """A blind spoofed-source ClientHello flood plus a few real clients.

    Spoofed sources never see the cookie reply, so they can't echo it;
    real clients complete the exchange.  Returns the responder's damage
    ledger, converted to SA-1100 seconds (235 MIPS) for scale.
    """
    rng = DeterministicDRBG(("dos", seed).__repr__())
    responder = CookieProtectedResponder(
        rng=DeterministicDRBG(("dos-resp", seed).__repr__()),
        require_cookies=require_cookies)

    for index in range(flood_size):
        spoofed_address = f"10.0.{index % 256}.{(index // 256) % 256}"
        responder.first_contact(spoofed_address, rng.random_bytes(8))
        # Blind attacker: cannot receive, never echoes a cookie.

    served = 0
    for index in range(legitimate_clients):
        address = f"192.168.1.{index + 2}"
        nonce = rng.random_bytes(8)
        cookie = responder.first_contact(address, nonce)
        if cookie is None:
            served += 1  # naive responder already did the work
            continue
        if responder.second_contact(address, nonce, cookie):
            served += 1

    return FloodReport(
        flood_size=flood_size,
        handshakes_started=responder.handshakes_started,
        work_spent_mi=responder.work_spent_mi,
        seconds_on_sa1100=responder.work_spent_mi / 235.0,
        legitimate_clients_served=served,
    )
