"""Bearer-level (network access domain) security — the GSM model.

Section 2: "Many of these protocols address only network access domain
security, i.e., securing the link between a wireless client and the
access point, base station, or gateway."  This module models that
class of protection in the GSM style ([15], [16]):

* a :class:`SIM` holding a subscriber identity and secret ``Ki``;
* challenge–response authentication (A3) and session-key derivation
  (A8) — implemented with HMAC rather than COMP128, whose published
  weakness ([25], "GSM cloning") we model behaviourally via an
  optional ``weak_a3`` mode that leaks Ki bits through responses;
* link encryption (A5-style, modelled with RC4 keyed by Kc) that
  terminates at the base station — so the *network operator sees
  plaintext*, which is exactly why §2 concludes bearer security "needs
  to be complemented through security mechanisms at higher protocol
  layers".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..crypto.hmac import hmac
from ..crypto.rc4 import RC4
from ..crypto.rng import DeterministicDRBG
from .alerts import HandshakeFailure


@dataclass
class SIM:
    """Subscriber identity module: IMSI + secret key Ki.

    ``weak_a3`` emulates the COMP128 flaw: responses leak two bytes of
    Ki per challenge, letting :func:`clone_sim` reconstruct the key
    from a few hundred chosen challenges (the over-the-air cloning
    attack of paper ref. [25]).
    """

    imsi: str
    ki: bytes
    weak_a3: bool = False
    challenges_answered: int = 0

    def __post_init__(self) -> None:
        # The weak-A3 response indexes Ki at challenge[0] % (len-1) and
        # reads two adjacent bytes, so a Ki shorter than 2 bytes used to
        # blow up with ZeroDivisionError/IndexError deep inside
        # a3_response.  Real Ki is 16 bytes; validate at construction.
        if len(self.ki) < 2:
            raise ValueError(
                f"SIM Ki must be at least 2 bytes, got {len(self.ki)}")

    def a3_response(self, challenge: bytes) -> bytes:
        """SRES = A3(Ki, RAND), 4 bytes."""
        if not challenge:
            raise ValueError("A3 challenge must be non-empty")
        self.challenges_answered += 1
        if self.weak_a3:
            # Weak mode: the response exposes Ki bytes selected by the
            # challenge — a behavioural stand-in for COMP128's narrow
            # pipe collisions.
            index = challenge[0] % (len(self.ki) - 1)
            return bytes([self.ki[index], self.ki[index + 1]]) + hmac(
                self.ki, challenge
            )[:2]
        return hmac(self.ki, b"A3" + challenge)[:4]

    def a8_session_key(self, challenge: bytes) -> bytes:
        """Kc = A8(Ki, RAND), 8 bytes."""
        return hmac(self.ki, b"A8" + challenge)[:8]


@dataclass
class HomeRegister:
    """The operator's authentication centre (HLR/AuC)."""

    subscribers: dict = field(default_factory=dict)

    def provision(self, sim: SIM) -> None:
        """Register a subscriber's Ki."""
        self.subscribers[sim.imsi] = sim.ki

    def triplet(self, imsi: str, rng: DeterministicDRBG) -> Tuple[bytes, bytes, bytes]:
        """GSM triplet (RAND, SRES, Kc) for a subscriber."""
        ki = self.subscribers[imsi]
        rand = rng.random_bytes(16)
        sres = hmac(ki, b"A3" + rand)[:4]
        kc = hmac(ki, b"A8" + rand)[:8]
        return rand, sres, kc


@dataclass
class BaseStation:
    """A serving base station: authenticates handsets, ciphers the link.

    The crucial modelling point: traffic is decrypted *here*.  The
    plaintext log (:attr:`uplink_plaintext`) is what the operator —
    or anyone who compromises the fixed network — can read, making the
    end-to-end argument of §2 concrete.
    """

    register: HomeRegister
    rng: DeterministicDRBG
    ciphering_enabled: bool = True
    uplink_plaintext: List[bytes] = field(default_factory=list)
    _sessions: dict = field(default_factory=dict)

    def authenticate(self, sim: SIM) -> bytes:
        """Run challenge-response; returns Kc on success."""
        rand, expected_sres, kc = self.register.triplet(sim.imsi, self.rng)
        response = sim.a3_response(rand)
        if not sim.weak_a3 and response != expected_sres:
            raise HandshakeFailure(f"authentication failed for {sim.imsi}")
        self._sessions[sim.imsi] = kc
        return kc

    def receive_uplink(self, imsi: str, frame: bytes) -> bytes:
        """Decrypt an uplink frame; returns (and logs) the plaintext."""
        if imsi not in self._sessions:
            raise HandshakeFailure(f"{imsi} not authenticated")
        if self.ciphering_enabled:
            plaintext = RC4(self._sessions[imsi]).process(frame)
        else:
            plaintext = frame
        self.uplink_plaintext.append(plaintext)
        return plaintext


@dataclass
class Handset:
    """A GSM handset: authenticates via its SIM, ciphers uplink data."""

    sim: SIM
    kc: Optional[bytes] = None

    def attach(self, base_station: BaseStation) -> None:
        """Authenticate to the network and derive the link key."""
        base_station.authenticate(self.sim)
        # The handset derives Kc locally from the same challenge; in
        # this synchronous model the base station's copy is canonical,
        # so mirror it for the link cipher.
        self.kc = base_station._sessions[self.sim.imsi]

    def send_uplink(self, data: bytes, ciphering: bool = True) -> bytes:
        """Produce one (optionally ciphered) uplink frame."""
        if self.kc is None:
            raise HandshakeFailure("handset not attached")
        return RC4(self.kc).process(data) if ciphering else data


def clone_sim(sim: SIM, rng: DeterministicDRBG,
              max_challenges: int = 4096) -> Optional[bytes]:
    """Recover Ki from a weak-A3 SIM via chosen challenges ([25]).

    Returns the recovered Ki, or None if the SIM is not vulnerable.
    """
    if not sim.weak_a3:
        return None
    recovered = bytearray(len(sim.ki))
    known = [False] * len(sim.ki)
    for _ in range(max_challenges):
        challenge = rng.random_bytes(16)
        index = challenge[0] % (len(sim.ki) - 1)
        response = sim.a3_response(challenge)
        recovered[index] = response[0]
        recovered[index + 1] = response[1]
        known[index] = known[index + 1] = True
        if all(known):
            return bytes(recovered)
    return None
