"""An ISO 7816-style smart card hosting the SIM (§3.4's first target).

"It is not surprising that the first target of these attacks are
mobile devices such as smart cards."  The paper treats the smart card
as the canonical tamper-target; this module gives our SIM the actual
card interface those attacks probe:

* command/response **APDUs** (CLA INS P1 P2 Lc data) with ISO status
  words (0x9000 OK, 0x63CX retry counter, 0x6983 blocked...);
* a PIN gate (CHV1) with a **persistent retry counter** — three wrong
  PINs block the card, and the counter survives power cycles via the
  card's non-volatile memory, so the classic "reset between guesses"
  bypass fails;
* ``RUN GSM ALGORITHM`` (INS 0x88), the real SIM command that feeds
  :class:`~repro.protocols.bearer.SIM`'s A3/A8, only after CHV1;
* a small file system (ICCID, IMSI) with read access control.

The over-the-air SIM cloning attack of paper ref. [25] goes through
this interface in the tests: chosen RUN-GSM challenges against a
weak-A3 card — which also shows the retry-gated PIN does not protect
against it (the attacker *has* CHV1 in the kiosk-cloning scenario).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .bearer import SIM

# Status words (ISO 7816-4).
SW_OK = 0x9000
SW_BLOCKED = 0x6983
SW_SECURITY_NOT_SATISFIED = 0x6982
SW_WRONG_PIN_BASE = 0x63C0  # low nibble = retries remaining
SW_INS_NOT_SUPPORTED = 0x6D00
SW_FILE_NOT_FOUND = 0x6A82
SW_WRONG_LENGTH = 0x6700

# Instruction bytes (GSM 11.11 subset).
INS_VERIFY_CHV = 0x20
INS_READ_BINARY = 0xB0
INS_SELECT_FILE = 0xA4
INS_RUN_GSM_ALGORITHM = 0x88

FILE_ICCID = 0x2FE2
FILE_IMSI = 0x6F07


@dataclass(frozen=True)
class APDU:
    """A command APDU."""

    cla: int
    ins: int
    p1: int = 0
    p2: int = 0
    data: bytes = b""


@dataclass(frozen=True)
class CardResponse:
    """Response data + status word."""

    data: bytes
    sw: int

    @property
    def ok(self) -> bool:
        """True for SW 9000."""
        return self.sw == SW_OK


@dataclass
class SIMCard:
    """The card: SIM application behind an APDU interface.

    ``nvm`` is the card's non-volatile memory — the PIN retry counter
    lives there, so :meth:`power_cycle` does NOT reset it (the bypass
    the tests attempt).
    """

    sim: SIM
    chv1: bytes = b"0000"
    iccid: bytes = b"\x89\x49\x00\x11\x22\x33\x44\x55\x66\x77"
    nvm: Dict[str, int] = field(default_factory=lambda: {"chv1_retries": 3})
    _chv1_verified: bool = False
    _selected_file: Optional[int] = None
    apdu_log: list = field(default_factory=list)

    MAX_RETRIES = 3

    def power_cycle(self) -> None:
        """Reset session state; NVM (retry counter) persists."""
        self._chv1_verified = False
        self._selected_file = None

    def transmit(self, apdu: APDU) -> CardResponse:
        """Process one command APDU."""
        self.apdu_log.append(apdu)
        handler = {
            INS_VERIFY_CHV: self._verify_chv,
            INS_SELECT_FILE: self._select_file,
            INS_READ_BINARY: self._read_binary,
            INS_RUN_GSM_ALGORITHM: self._run_gsm_algorithm,
        }.get(apdu.ins)
        if handler is None:
            return CardResponse(b"", SW_INS_NOT_SUPPORTED)
        return handler(apdu)

    # -- command handlers --------------------------------------------------------

    def _verify_chv(self, apdu: APDU) -> CardResponse:
        retries = self.nvm["chv1_retries"]
        if retries <= 0:
            return CardResponse(b"", SW_BLOCKED)
        if apdu.data == self.chv1:
            self.nvm["chv1_retries"] = self.MAX_RETRIES
            self._chv1_verified = True
            return CardResponse(b"", SW_OK)
        self.nvm["chv1_retries"] = retries - 1
        if self.nvm["chv1_retries"] == 0:
            return CardResponse(b"", SW_BLOCKED)
        return CardResponse(
            b"", SW_WRONG_PIN_BASE | self.nvm["chv1_retries"])

    def _select_file(self, apdu: APDU) -> CardResponse:
        if len(apdu.data) != 2:
            return CardResponse(b"", SW_WRONG_LENGTH)
        file_id = int.from_bytes(apdu.data, "big")
        if file_id not in (FILE_ICCID, FILE_IMSI):
            return CardResponse(b"", SW_FILE_NOT_FOUND)
        self._selected_file = file_id
        return CardResponse(b"", SW_OK)

    def _read_binary(self, apdu: APDU) -> CardResponse:
        if self._selected_file == FILE_ICCID:
            return CardResponse(self.iccid, SW_OK)  # world-readable
        if self._selected_file == FILE_IMSI:
            if not self._chv1_verified:
                return CardResponse(b"", SW_SECURITY_NOT_SATISFIED)
            return CardResponse(self.sim.imsi.encode(), SW_OK)
        return CardResponse(b"", SW_FILE_NOT_FOUND)

    def _run_gsm_algorithm(self, apdu: APDU) -> CardResponse:
        if not self._chv1_verified:
            return CardResponse(b"", SW_SECURITY_NOT_SATISFIED)
        if len(apdu.data) != 16:
            return CardResponse(b"", SW_WRONG_LENGTH)
        sres = self.sim.a3_response(apdu.data)
        kc = self.sim.a8_session_key(apdu.data)
        return CardResponse(sres + kc, SW_OK)


def kiosk_cloning_attack(card: SIMCard, chv1: bytes,
                         max_challenges: int = 4096) -> Optional[bytes]:
    """The [25] scenario through the real card interface.

    An attacker with brief physical access (and the PIN — the cloning
    kiosks of the era asked for it) runs chosen RUN-GSM challenges.
    Returns the recovered Ki for a weak-A3 card, None for a strong one.
    """
    from ..crypto.rng import DeterministicDRBG

    response = card.transmit(APDU(0xA0, INS_VERIFY_CHV, data=chv1))
    if not response.ok:
        return None
    if not card.sim.weak_a3:
        return None
    rng = DeterministicDRBG("kiosk")
    ki_length = len(card.sim.ki)
    recovered = bytearray(ki_length)
    known = [False] * ki_length
    for _ in range(max_challenges):
        challenge = rng.random_bytes(16)
        result = card.transmit(
            APDU(0xA0, INS_RUN_GSM_ALGORITHM, data=challenge))
        if not result.ok:
            return None
        index = challenge[0] % (ki_length - 1)
        recovered[index] = result.data[0]
        recovered[index + 1] = result.data[1]
        known[index] = known[index + 1] = True
        if all(known):
            return bytes(recovered)
    return None
