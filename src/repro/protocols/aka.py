"""3GPP AKA — the successor that fixes GSM's one-way authentication.

Section 2 notes that the weaknesses of 2G bearer security "are being
addressed in newer wireless standards such as 3GPP [26, 27]".  The
central fix in 3GPP TS 33.102 is *mutual* authentication: GSM's
challenge-response authenticates only the handset, so any equipment
that speaks the air interface can impersonate the network (the "false
base station" / IMSI-catcher attack).  AKA adds a network
authentication token (AUTN) that the USIM verifies before responding,
plus sequence numbers against challenge replay, and derives separate
cipher (CK) and integrity (IK) keys.

The f1–f5 functions are modelled with HMAC-SHA1 derivations (MILENAGE
is AES-based in practice; the protocol logic — which is what the
attack/defence story needs — is exactly preserved).

:func:`false_base_station_attack` runs the same rogue-network attack
against a GSM handset (succeeds: the handset attaches and ciphers
toward the attacker) and against an AKA USIM (fails: AUTN cannot be
forged without K).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..crypto.bitops import constant_time_compare, xor_bytes
from ..crypto.hmac import hmac
from ..crypto.rng import DeterministicDRBG
from .alerts import HandshakeFailure, ReplayError

SQN_WINDOW = 32  # acceptable sequence-number jump


def _f(key: bytes, tag: bytes, data: bytes, length: int) -> bytes:
    return hmac(key, tag + data)[:length]


def f1_mac(key: bytes, sqn: int, rand: bytes, amf: bytes) -> bytes:
    """Network authentication code MAC-A (8 bytes)."""
    return _f(key, b"f1", sqn.to_bytes(6, "big") + rand + amf, 8)


def f2_res(key: bytes, rand: bytes) -> bytes:
    """Expected response RES (8 bytes)."""
    return _f(key, b"f2", rand, 8)


def f3_ck(key: bytes, rand: bytes) -> bytes:
    """Cipher key CK (16 bytes)."""
    return _f(key, b"f3", rand, 16)


def f4_ik(key: bytes, rand: bytes) -> bytes:
    """Integrity key IK (16 bytes)."""
    return _f(key, b"f4", rand, 16)


def f5_ak(key: bytes, rand: bytes) -> bytes:
    """Anonymity key AK (6 bytes) concealing SQN on the air."""
    return _f(key, b"f5", rand, 6)


@dataclass(frozen=True)
class AKAChallenge:
    """RAND + AUTN as sent over the air."""

    rand: bytes
    sqn_xor_ak: bytes
    amf: bytes
    mac_a: bytes


@dataclass(frozen=True)
class AKAResult:
    """USIM's output after accepting a challenge."""

    res: bytes
    ck: bytes
    ik: bytes


@dataclass
class USIM:
    """A 3G subscriber identity module holding K and its SQN state."""

    imsi: str
    k: bytes
    sqn: int = 0
    rejected_challenges: int = 0

    def process_challenge(self, challenge: AKAChallenge) -> AKAResult:
        """Verify AUTN (network auth + freshness), then answer.

        Raises :class:`HandshakeFailure` for a forged network token and
        :class:`ReplayError` for a stale sequence number — both counted,
        both leaving no key material behind.
        """
        ak = f5_ak(self.k, challenge.rand)
        sqn = int.from_bytes(xor_bytes(challenge.sqn_xor_ak, ak), "big")
        expected_mac = f1_mac(self.k, sqn, challenge.rand, challenge.amf)
        if not constant_time_compare(expected_mac, challenge.mac_a):
            self.rejected_challenges += 1
            raise HandshakeFailure(
                "AUTN MAC invalid: network failed to authenticate "
                "(false base station?)"
            )
        if not self.sqn < sqn <= self.sqn + SQN_WINDOW:
            self.rejected_challenges += 1
            raise ReplayError(
                f"challenge SQN {sqn} outside ({self.sqn}, "
                f"{self.sqn + SQN_WINDOW}] — replay or desync"
            )
        self.sqn = sqn
        return AKAResult(
            res=f2_res(self.k, challenge.rand),
            ck=f3_ck(self.k, challenge.rand),
            ik=f4_ik(self.k, challenge.rand),
        )


@dataclass
class AuthenticationCentre:
    """The home network's AuC: shares K and SQN with each USIM."""

    rng: DeterministicDRBG
    _subscribers: Dict[str, bytes] = field(default_factory=dict)
    _sqn: Dict[str, int] = field(default_factory=dict)

    def provision(self, usim: USIM) -> None:
        """Register a subscriber."""
        self._subscribers[usim.imsi] = usim.k
        self._sqn[usim.imsi] = usim.sqn

    def generate_challenge(self, imsi: str,
                           amf: bytes = b"\x80\x00"
                           ) -> Tuple[AKAChallenge, bytes, bytes, bytes]:
        """Produce (challenge, expected RES, CK, IK) for a subscriber."""
        k = self._subscribers[imsi]
        self._sqn[imsi] += 1
        sqn = self._sqn[imsi]
        rand = self.rng.random_bytes(16)
        ak = f5_ak(k, rand)
        challenge = AKAChallenge(
            rand=rand,
            sqn_xor_ak=xor_bytes(sqn.to_bytes(6, "big"), ak),
            amf=amf,
            mac_a=f1_mac(k, sqn, rand, amf),
        )
        return challenge, f2_res(k, rand), f3_ck(k, rand), f4_ik(k, rand)


@dataclass
class ServingNetwork3G:
    """A 3G serving network performing mutual AKA with handsets."""

    auc: AuthenticationCentre
    sessions: Dict[str, Tuple[bytes, bytes]] = field(default_factory=dict)

    def attach(self, usim: USIM) -> Tuple[bytes, bytes]:
        """Run AKA; on success both sides hold (CK, IK)."""
        challenge, expected_res, ck, ik = self.auc.generate_challenge(
            usim.imsi)
        result = usim.process_challenge(challenge)
        if not constant_time_compare(result.res, expected_res):
            raise HandshakeFailure(f"subscriber {usim.imsi} failed AKA")
        self.sessions[usim.imsi] = (ck, ik)
        return ck, ik


@dataclass
class FalseBaseStation:
    """A rogue network element with no knowledge of subscriber keys."""

    rng: DeterministicDRBG
    captured_uplink: list = field(default_factory=list)

    def fake_gsm_attach(self, handset) -> bool:
        """Against GSM: no network authentication exists, so the rogue
        simply *claims* success and turns ciphering off; the handset
        attaches and talks (paper refs. [24, 25])."""
        handset.kc = bytes(8)  # rogue dictates no/garbage ciphering
        self.captured_uplink.append(
            handset.send_uplink(b"location update", ciphering=False))
        return True

    def fake_aka_challenge(self, usim: USIM) -> bool:
        """Against AKA: the rogue must forge AUTN without K — the USIM
        rejects it before releasing anything."""
        rand = self.rng.random_bytes(16)
        forged = AKAChallenge(
            rand=rand,
            sqn_xor_ak=self.rng.random_bytes(6),
            amf=b"\x80\x00",
            mac_a=self.rng.random_bytes(8),
        )
        try:
            usim.process_challenge(forged)
            return True
        except (HandshakeFailure, ReplayError):
            return False


def false_base_station_attack(seed: int = 0) -> Dict[str, bool]:
    """Run the IMSI-catcher attack against both bearer generations.

    Returns ``{"gsm_compromised": True, "aka_compromised": False}`` —
    the §2 claim that 3GPP addresses the 2G weaknesses, computed.
    """
    from .bearer import SIM, BaseStation, Handset, HomeRegister

    register = HomeRegister()
    sim = SIM("262-01-2G", bytes(range(16)))
    register.provision(sim)
    handset_2g = Handset(sim)
    legit_bs = BaseStation(register=register,
                           rng=DeterministicDRBG(("bs", seed).__repr__()))
    handset_2g.attach(legit_bs)

    usim = USIM("262-01-3G", bytes(range(16, 32)))
    auc = AuthenticationCentre(rng=DeterministicDRBG(("auc", seed).__repr__()))
    auc.provision(usim)

    rogue = FalseBaseStation(rng=DeterministicDRBG(("rogue", seed).__repr__()))
    return {
        "gsm_compromised": rogue.fake_gsm_attach(handset_2g),
        "aka_compromised": rogue.fake_aka_challenge(usim),
    }
