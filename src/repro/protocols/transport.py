"""In-memory transports connecting protocol endpoints.

The substitution for a radio link: a :class:`DuplexChannel` is a pair
of FIFO queues with optional adversarial hooks — an attacker callback
may observe, modify, drop, or inject frames in flight, which is how
the eavesdropping/tampering threat model of §2 ("the physical signal
is easily accessible to eavesdroppers") is exercised against the
protocol stacks.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

Interceptor = Callable[[bytes, str], Optional[bytes]]


class ChannelClosed(Exception):
    """Read from an empty, closed channel."""


class DuplexChannel:
    """A bidirectional in-memory link with an optional interceptor.

    The interceptor receives ``(frame, direction)`` where direction is
    ``"a->b"`` or ``"b->a"`` and returns the frame to deliver (possibly
    modified) or ``None`` to drop it.  All frames are also logged for
    passive eavesdropping analyses.
    """

    def __init__(self, interceptor: Optional[Interceptor] = None) -> None:
        self._a_to_b: Deque[bytes] = deque()
        self._b_to_a: Deque[bytes] = deque()
        self.interceptor = interceptor
        self.log: List[tuple] = []
        self.dropped = 0

    def endpoint_a(self) -> "Endpoint":
        """Endpoint that writes a->b and reads b->a."""
        return Endpoint(self, self._a_to_b, self._b_to_a, "a->b")

    def endpoint_b(self) -> "Endpoint":
        """Endpoint that writes b->a and reads a->b."""
        return Endpoint(self, self._b_to_a, self._a_to_b, "b->a")

    def _deliver(self, queue: Deque[bytes], frame: bytes, direction: str) -> None:
        self.log.append((direction, frame))
        if self.interceptor is not None:
            modified = self.interceptor(frame, direction)
            if modified is None:
                self.dropped += 1
                return
            frame = modified
        queue.append(frame)


class Endpoint:
    """One side's read/write handle on a duplex channel."""

    def __init__(self, channel: DuplexChannel, out_queue: Deque[bytes],
                 in_queue: Deque[bytes], direction: str) -> None:
        self._channel = channel
        self._out = out_queue
        self._in = in_queue
        self._direction = direction

    def send(self, frame: bytes) -> None:
        """Transmit one frame."""
        self._channel._deliver(self._out, frame, self._direction)

    def receive(self) -> bytes:
        """Pop the next inbound frame; raises if none pending."""
        if not self._in:
            raise ChannelClosed("no frame pending")
        return self._in.popleft()

    def pending(self) -> int:
        """Number of frames waiting to be read."""
        return len(self._in)
