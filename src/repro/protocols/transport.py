"""In-memory transports connecting protocol endpoints.

The substitution for a radio link: a :class:`DuplexChannel` is a pair
of FIFO queues with optional adversarial hooks — an attacker callback
may observe, modify, drop, or inject frames in flight, which is how
the eavesdropping/tampering threat model of §2 ("the physical signal
is easily accessible to eavesdroppers") is exercised against the
protocol stacks.

The channel distinguishes two read failures that a perfect FIFO never
had to: an *empty* read (:class:`ChannelEmpty` — the link is up but no
frame has arrived, the normal case on a lossy bearer) and a *closed*
read (:class:`ChannelClosed` — the writer half-closed or the link was
reset).  Recovery layers (:mod:`repro.protocols.reliable`,
:mod:`repro.protocols.recovery`) react very differently to the two:
empty means wait/retransmit, closed means reconnect.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

Interceptor = Callable[[bytes, str], Optional[bytes]]


class ChannelClosed(Exception):
    """The channel (or this direction of it) has been closed or reset."""


class ChannelEmpty(ChannelClosed):
    """Read from an open channel with no frame pending.

    Subclasses :class:`ChannelClosed` so pre-existing callers that
    treated "nothing to read" and "closed" uniformly keep working, but
    recovery code can catch :class:`ChannelEmpty` first and react to a
    merely-quiet link (wait, retransmit) instead of reconnecting.
    """


class DuplexChannel:
    """A bidirectional in-memory link with an optional interceptor.

    The interceptor receives ``(frame, direction)`` where direction is
    ``"a->b"`` or ``"b->a"`` and returns the frame to deliver (possibly
    modified) or ``None`` to drop it.  All frames are also logged for
    passive eavesdropping analyses.

    Each direction can be half-closed independently (TCP-style): the
    writer calls :meth:`Endpoint.close`, the reader drains whatever is
    already queued and then sees :class:`ChannelClosed`.  A full
    :meth:`close` closes both directions gracefully; :meth:`reset`
    models an abortive link reset (queued frames are lost).
    """

    def __init__(self, interceptor: Optional[Interceptor] = None) -> None:
        self._a_to_b: Deque[bytes] = deque()
        self._b_to_a: Deque[bytes] = deque()
        self.interceptor = interceptor
        self.log: List[tuple] = []
        self.dropped = 0
        self.resets = 0
        self._closed = {"a->b": False, "b->a": False}

    def endpoint_a(self) -> "Endpoint":
        """Endpoint that writes a->b and reads b->a."""
        return Endpoint(self, self._a_to_b, self._b_to_a, "a->b")

    def endpoint_b(self) -> "Endpoint":
        """Endpoint that writes b->a and reads a->b."""
        return Endpoint(self, self._b_to_a, self._a_to_b, "b->a")

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Gracefully close both directions; queued frames remain readable."""
        self._closed["a->b"] = True
        self._closed["b->a"] = True

    def reset(self) -> None:
        """Abortive link reset: both directions close, in-flight frames die."""
        self._a_to_b.clear()
        self._b_to_a.clear()
        self.close()
        self.resets += 1

    def direction_closed(self, direction: str) -> bool:
        """Whether the writer of ``direction`` has closed it."""
        return self._closed[direction]

    # -- delivery ----------------------------------------------------------

    def _deliver(self, queue: Deque[bytes], frame: bytes, direction: str) -> None:
        if self._closed[direction]:
            raise ChannelClosed(f"send on closed direction {direction}")
        self.log.append((direction, frame))
        if self.interceptor is not None:
            modified = self.interceptor(frame, direction)
            if modified is None:
                self.dropped += 1
                return
            frame = modified
        self._enqueue(queue, frame, direction)

    def _enqueue(self, queue: Deque[bytes], frame: bytes, direction: str) -> None:
        """Final delivery into the reader's queue (fault models override)."""
        queue.append(frame)


class Endpoint:
    """One side's read/write handle on a duplex channel."""

    def __init__(self, channel: DuplexChannel, out_queue: Deque[bytes],
                 in_queue: Deque[bytes], direction: str) -> None:
        self._channel = channel
        self._out = out_queue
        self._in = in_queue
        self._direction = direction
        # The direction this endpoint reads from is the opposite one.
        self._in_direction = "b->a" if direction == "a->b" else "a->b"

    def send(self, frame: bytes) -> None:
        """Transmit one frame; raises :class:`ChannelClosed` after close."""
        self._channel._deliver(self._out, frame, self._direction)

    def receive(self) -> bytes:
        """Pop the next inbound frame.

        Raises :class:`ChannelEmpty` when the link is open but quiet and
        :class:`ChannelClosed` once the peer's write side is closed and
        the queue has drained.
        """
        if self._in:
            return self._in.popleft()
        if self._channel.direction_closed(self._in_direction):
            raise ChannelClosed(
                f"direction {self._in_direction} closed and drained")
        raise ChannelEmpty("no frame pending")

    def close(self) -> None:
        """Half-close: no further sends from this endpoint; the peer may
        drain frames already in flight."""
        self._channel._closed[self._direction] = True

    @property
    def closed(self) -> bool:
        """Whether this endpoint's write direction is closed."""
        return self._channel.direction_closed(self._direction)

    def pending(self) -> int:
        """Number of frames waiting to be read."""
        return len(self._in)
