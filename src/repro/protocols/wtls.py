"""WTLS — the WAP transport-layer security profile.

"The WAP protocol stack includes a transport-layer security protocol,
called WTLS, which provides higher layer protocols and applications
with a secure transport service interface" (§2), and "WTLS bears a
close resemblance to the SSL/TLS standards" (§3.1).

The resemblances and the differences are both modelled:

* same handshake grammar and PRF as mini-TLS (we reuse them);
* **datagram-friendly records** — WTLS runs over unreliable wireless
  transports, so every record carries an explicit sequence number and
  the decoder tolerates loss (no implicit counter to desynchronise);
* **truncated MACs** (10 bytes vs 20) and optional **export-weakened
  keys**, reflecting WTLS's constrained-device concessions — which the
  attack literature the paper cites ([19]-[25]) shows is where
  wireless profiles historically gave up security margin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..crypto import fastpath
from ..crypto.hmac import HMAC
from ..observability import probe
from ..observability.attribution import record_cycles
from . import records_batch
from .alerts import BadRecordMAC, DecodeError, ReplayError
from .ciphersuites import CipherSuite
from .handshake import ClientConfig, ServerConfig, run_handshake
from .kdf import KeyBlock, derive_key_block
from .records_batch import WTLS_MAC_BYTES  # truncated HMAC (10 bytes)
from .transport import DuplexChannel, Endpoint


class WTLSRecordEncoder:
    """Datagram record protection: explicit sequence, truncated MAC.

    Block suites derive a per-record IV from the session IV and the
    sequence number (WTLS's ``IV xor seq`` construction) so records
    remain independently decryptable after loss.
    """

    def __init__(self, suite: CipherSuite, cipher_key: bytes, mac_key: bytes,
                 iv: bytes) -> None:
        self.suite = suite
        self._key = cipher_key
        self._mac_key = mac_key
        # One keyed HMAC per direction; per-record MACs clone its pad
        # states (the record layer never re-keys on the hot path).
        self._mac_base = HMAC(mac_key, suite.hash_factory)
        self._iv = iv
        self._sequence = 0
        # The suite's seal pipeline, compiled once: per-record key/IV
        # derivation (key xor seq / iv xor seq) collapses to a big-int
        # XOR and block suites reuse one cached key schedule.
        self._encode_one = records_batch.compile_wtls_encoder(self)

    @property
    def sequence(self) -> int:
        """Next datagram's explicit sequence number (diagnostics)."""
        return self._sequence

    def encode(self, payload: bytes) -> bytes:
        """Protect one datagram."""
        telemetry = probe.active
        if telemetry is None:          # hot path: one read, one branch
            return self._encode_one(payload)
        suite = self.suite
        with telemetry.span(
                "record.encode", layer="wtls", suite=suite.name,
                n=len(payload), path=fastpath.dispatch_path()):
            telemetry.add_cycles(
                record_cycles(suite.cipher, suite.mac, len(payload)),
                kind="record")
            return self._encode_one(payload)

    def _encode(self, payload: bytes) -> bytes:
        return self._encode_one(payload)

    def encode_batch(self, payloads: Iterable[bytes],
                     max_fragment: int = records_batch.MAX_FRAGMENT) -> bytes:
        """Protect N datagram payloads into one buffer of records.

        See :func:`repro.protocols.records_batch.wtls_encode_batch`."""
        return records_batch.wtls_encode_batch(self, payloads, max_fragment)


class WTLSRecordDecoder:
    """Datagram record opening with replay rejection.

    ``distinguishable_errors`` reproduces the historical WTLS flaw
    Vaudenay exploited in 2002: bad padding and bad MAC raised
    *different* alerts, handing attackers a padding oracle
    (:mod:`repro.attacks.padding_oracle`).  The secure default unifies
    both into :class:`~repro.protocols.alerts.BadRecordMAC`.
    """

    def __init__(self, suite: CipherSuite, cipher_key: bytes, mac_key: bytes,
                 iv: bytes, distinguishable_errors: bool = False) -> None:
        self.suite = suite
        self._key = cipher_key
        self._mac_key = mac_key
        self._mac_base = HMAC(mac_key, suite.hash_factory)
        self._iv = iv
        self._seen: set = set()
        self.distinguishable_errors = distinguishable_errors
        self.highest_sequence = -1
        self.received = 0
        self._decode_one = records_batch.compile_wtls_decoder(self)

    def decode(self, record: bytes) -> Tuple[int, bytes]:
        """Open one datagram -> (sequence, payload); tolerates gaps."""
        telemetry = probe.active
        if telemetry is None:          # hot path: one read, one branch
            return self._decode(record)
        suite = self.suite
        with telemetry.span(
                "record.decode", layer="wtls", suite=suite.name,
                n=len(record), path=fastpath.dispatch_path()) as span:
            try:
                sequence, payload = self._decode(record)
            except Exception as exc:
                span.set(error=type(exc).__name__)
                raise
            telemetry.add_cycles(
                record_cycles(suite.cipher, suite.mac, len(payload)),
                kind="record")
            return sequence, payload

    def _decode(self, record: bytes) -> Tuple[int, bytes]:
        if len(record) < 6:
            raise DecodeError("WTLS record shorter than header")
        sequence = int.from_bytes(record[:4], "big")
        length = int.from_bytes(record[4:6], "big")
        if len(record) - 6 != length:
            raise DecodeError("WTLS record length mismatch")
        return self._decode_one(sequence, memoryview(record)[6:])

    def decode_batch(self, buffer: bytes, skip_damaged: bool = False):
        """Open a buffer of records -> ``([(sequence, payload)], damaged)``.

        See :func:`repro.protocols.records_batch.wtls_decode_batch`."""
        return records_batch.wtls_decode_batch(self, buffer, skip_damaged)

    @property
    def records_lost(self) -> int:
        """Sequence gaps observed so far (datagrams that never decoded)."""
        return (self.highest_sequence + 1) - self.received


@dataclass
class WTLSConnection:
    """One endpoint of an established WTLS session."""

    encoder: WTLSRecordEncoder
    decoder: WTLSRecordDecoder
    endpoint: Endpoint
    suite_name: str
    discarded: int = 0

    def send(self, data: bytes) -> None:
        """Protect and transmit one datagram."""
        self.endpoint.send(self.encoder.encode(data))

    def receive(self) -> bytes:
        """Receive and open the next datagram."""
        _, payload = self.decoder.decode(self.endpoint.receive())
        return payload

    def send_batch(self, payloads: Iterable[bytes]) -> None:
        """Protect N datagrams into one transmission.

        The whole batch rides a single transport message, so the
        per-message transport overhead (ARQ framing, checksums, acks)
        is paid once per batch instead of once per record."""
        self.endpoint.send(self.encoder.encode_batch(payloads))

    def receive_batch(self) -> List[bytes]:
        """Receive one transmission and open every record in it.

        Damaged records are discarded (counted in ``discarded``) and
        their healthy neighbours delivered — the batched form of
        :meth:`receive_next`'s skip-and-continue discipline, safe
        because the decoder commits no state for a failed record."""
        records, damaged = self.decoder.decode_batch(
            self.endpoint.receive(), skip_damaged=True)
        self.discarded += len(damaged)
        return [payload for _, payload in records]

    def receive_next(self, max_skip: int = 16) -> bytes:
        """Receive the next *valid* datagram, skipping damaged ones.

        Datagram transports degrade gracefully: a corrupted, replayed,
        or truncated record is discarded (counted in ``discarded``) and
        the reader moves on, up to ``max_skip`` bad records in a row.
        Raises the last record error once the skip budget is spent, and
        :class:`~repro.protocols.transport.ChannelEmpty` when the link
        runs dry first.
        """
        last_error: Optional[Exception] = None
        for _ in range(max_skip + 1):
            raw = self.endpoint.receive()
            try:
                _, payload = self.decoder.decode(raw)
            except (BadRecordMAC, DecodeError, ReplayError) as exc:
                self.discarded += 1
                last_error = exc
                continue
            return payload
        assert last_error is not None
        raise last_error

    @property
    def records_lost(self) -> int:
        """Inbound datagrams lost in transit (sequence-gap estimate)."""
        return self.decoder.records_lost


def wtls_connect(client: ClientConfig, server: ServerConfig,
                 channel: Optional[DuplexChannel] = None,
                 endpoints: Optional[Tuple[Endpoint, Endpoint]] = None
                 ) -> Tuple[WTLSConnection, WTLSConnection]:
    """Run the (TLS-grammar) handshake, then switch to WTLS records.

    WTLS reuses the handshake machinery — "adaptations of the wired
    security protocols" — but the data phase uses the datagram record
    layer above.  ``endpoints`` lets the session ride pre-built
    endpoints (e.g. an ARQ-protected lossy link).
    """
    if endpoints is not None:
        client_ep, server_ep = endpoints
    else:
        channel = channel or DuplexChannel()
        client_ep = channel.endpoint_a()
        server_ep = channel.endpoint_b()
    with probe.span("session", kind="wtls",
                    server=server.certificate.subject):
        client_session, server_session = run_handshake(
            client, server, client_ep, server_ep
        )
    suite = client_session.suite
    client_keys = _rederive(client_session.master, client, server, suite)
    server_keys = _rederive(server_session.master, client, server, suite)
    client_conn = WTLSConnection(
        encoder=WTLSRecordEncoder(
            suite, client_keys.client_cipher_key,
            client_keys.client_mac_key, client_keys.client_iv),
        decoder=WTLSRecordDecoder(
            suite, client_keys.server_cipher_key,
            client_keys.server_mac_key, client_keys.server_iv),
        endpoint=client_ep, suite_name=suite.name,
    )
    server_conn = WTLSConnection(
        encoder=WTLSRecordEncoder(
            suite, server_keys.server_cipher_key,
            server_keys.server_mac_key, server_keys.server_iv),
        decoder=WTLSRecordDecoder(
            suite, server_keys.client_cipher_key,
            server_keys.client_mac_key, server_keys.client_iv),
        endpoint=server_ep, suite_name=suite.name,
    )
    return client_conn, server_conn


def _rederive(master: bytes, client: ClientConfig, server: ServerConfig,
              suite: CipherSuite) -> KeyBlock:
    # Independent label-space from the TLS record keys: WTLS derives its
    # own key block from the shared master secret.
    return derive_key_block(master, b"wtls-client", b"wtls-server", suite)
