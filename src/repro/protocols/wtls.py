"""WTLS — the WAP transport-layer security profile.

"The WAP protocol stack includes a transport-layer security protocol,
called WTLS, which provides higher layer protocols and applications
with a secure transport service interface" (§2), and "WTLS bears a
close resemblance to the SSL/TLS standards" (§3.1).

The resemblances and the differences are both modelled:

* same handshake grammar and PRF as mini-TLS (we reuse them);
* **datagram-friendly records** — WTLS runs over unreliable wireless
  transports, so every record carries an explicit sequence number and
  the decoder tolerates loss (no implicit counter to desynchronise);
* **truncated MACs** (10 bytes vs 20) and optional **export-weakened
  keys**, reflecting WTLS's constrained-device concessions — which the
  attack literature the paper cites ([19]-[25]) shows is where
  wireless profiles historically gave up security margin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..crypto import fastpath
from ..crypto.bitops import constant_time_compare
from ..crypto.errors import InvalidBlockSize, PaddingError
from ..crypto.hmac import hmac
from ..crypto.modes import CBC
from ..observability import probe
from ..observability.attribution import record_cycles
from .alerts import BadRecordMAC, DecodeError, ReplayError
from .ciphersuites import CipherSuite
from .handshake import ClientConfig, ServerConfig, run_handshake
from .kdf import KeyBlock, derive_key_block
from .transport import DuplexChannel, Endpoint

WTLS_MAC_BYTES = 10  # truncated HMAC, per WTLS's constrained profile


class WTLSRecordEncoder:
    """Datagram record protection: explicit sequence, truncated MAC.

    Block suites derive a per-record IV from the session IV and the
    sequence number (WTLS's ``IV xor seq`` construction) so records
    remain independently decryptable after loss.
    """

    def __init__(self, suite: CipherSuite, cipher_key: bytes, mac_key: bytes,
                 iv: bytes) -> None:
        self.suite = suite
        self._key = cipher_key
        self._mac_key = mac_key
        self._iv = iv
        self._sequence = 0

    def _record_iv(self, sequence: int) -> bytes:
        seed = sequence.to_bytes(len(self._iv), "big") if self._iv else b""
        return bytes(a ^ b for a, b in zip(self._iv, seed))

    def encode(self, payload: bytes) -> bytes:
        """Protect one datagram."""
        telemetry = probe.active
        if telemetry is None:          # hot path: one read, one branch
            return self._encode(payload)
        suite = self.suite
        with telemetry.span(
                "record.encode", layer="wtls", suite=suite.name,
                n=len(payload), path=fastpath.dispatch_path()):
            telemetry.add_cycles(
                record_cycles(suite.cipher, suite.mac, len(payload)),
                kind="record")
            return self._encode(payload)

    def _encode(self, payload: bytes) -> bytes:
        sequence = self._sequence
        self._sequence += 1
        header = sequence.to_bytes(4, "big")
        tag = hmac(
            self._mac_key, header + payload, self.suite.hash_factory
        )[:WTLS_MAC_BYTES]
        protected = payload + tag
        if self.suite.cipher == "NULL":
            body = protected
        elif self.suite.cipher_kind == "stream":
            # Stream suites re-key per record from key xor seq for loss
            # tolerance (mirrors WTLS's per-record keystream derivation).
            record_key = bytes(
                k ^ s for k, s in zip(
                    self._key, sequence.to_bytes(len(self._key), "big")
                )
            )
            body = self.suite.make_cipher(record_key).process(protected)
        else:
            cbc = CBC(self.suite.make_cipher(self._key), self._record_iv(sequence))
            body = cbc.encrypt(protected)
        return header + len(body).to_bytes(2, "big") + body


class WTLSRecordDecoder:
    """Datagram record opening with replay rejection.

    ``distinguishable_errors`` reproduces the historical WTLS flaw
    Vaudenay exploited in 2002: bad padding and bad MAC raised
    *different* alerts, handing attackers a padding oracle
    (:mod:`repro.attacks.padding_oracle`).  The secure default unifies
    both into :class:`~repro.protocols.alerts.BadRecordMAC`.
    """

    def __init__(self, suite: CipherSuite, cipher_key: bytes, mac_key: bytes,
                 iv: bytes, distinguishable_errors: bool = False) -> None:
        self.suite = suite
        self._key = cipher_key
        self._mac_key = mac_key
        self._iv = iv
        self._seen: set = set()
        self.distinguishable_errors = distinguishable_errors
        self.highest_sequence = -1
        self.received = 0

    def _record_iv(self, sequence: int) -> bytes:
        seed = sequence.to_bytes(len(self._iv), "big") if self._iv else b""
        return bytes(a ^ b for a, b in zip(self._iv, seed))

    def decode(self, record: bytes) -> Tuple[int, bytes]:
        """Open one datagram -> (sequence, payload); tolerates gaps."""
        telemetry = probe.active
        if telemetry is None:          # hot path: one read, one branch
            return self._decode(record)
        suite = self.suite
        with telemetry.span(
                "record.decode", layer="wtls", suite=suite.name,
                n=len(record), path=fastpath.dispatch_path()) as span:
            try:
                sequence, payload = self._decode(record)
            except Exception as exc:
                span.set(error=type(exc).__name__)
                raise
            telemetry.add_cycles(
                record_cycles(suite.cipher, suite.mac, len(payload)),
                kind="record")
            return sequence, payload

    def _decode(self, record: bytes) -> Tuple[int, bytes]:
        if len(record) < 6:
            raise DecodeError("WTLS record shorter than header")
        sequence = int.from_bytes(record[:4], "big")
        if sequence in self._seen:
            raise ReplayError(f"WTLS record {sequence} replayed")
        length = int.from_bytes(record[4:6], "big")
        body = record[6:]
        if len(body) != length:
            raise DecodeError("WTLS record length mismatch")
        if self.suite.cipher == "NULL":
            protected = body
        elif self.suite.cipher_kind == "stream":
            record_key = bytes(
                k ^ s for k, s in zip(
                    self._key, sequence.to_bytes(len(self._key), "big")
                )
            )
            protected = self.suite.make_cipher(record_key).process(body)
        else:
            cbc = CBC(self.suite.make_cipher(self._key), self._record_iv(sequence))
            try:
                protected = cbc.decrypt(body)
            except PaddingError as exc:
                if self.distinguishable_errors:
                    raise  # the Vaudenay-era flaw: padding error visible
                raise BadRecordMAC(f"WTLS padding invalid: {exc}") from exc
            except InvalidBlockSize as exc:
                raise BadRecordMAC(f"WTLS body misaligned: {exc}") from exc
        if len(protected) < WTLS_MAC_BYTES:
            raise BadRecordMAC("WTLS record too short for MAC")
        payload, tag = protected[:-WTLS_MAC_BYTES], protected[-WTLS_MAC_BYTES:]
        expected = hmac(
            self._mac_key,
            sequence.to_bytes(4, "big") + payload,
            self.suite.hash_factory,
        )[:WTLS_MAC_BYTES]
        if not constant_time_compare(expected, tag):
            raise BadRecordMAC("WTLS MAC verification failed")
        self._seen.add(sequence)
        self.highest_sequence = max(self.highest_sequence, sequence)
        self.received += 1
        return sequence, payload

    @property
    def records_lost(self) -> int:
        """Sequence gaps observed so far (datagrams that never decoded)."""
        return (self.highest_sequence + 1) - self.received


@dataclass
class WTLSConnection:
    """One endpoint of an established WTLS session."""

    encoder: WTLSRecordEncoder
    decoder: WTLSRecordDecoder
    endpoint: Endpoint
    suite_name: str
    discarded: int = 0

    def send(self, data: bytes) -> None:
        """Protect and transmit one datagram."""
        self.endpoint.send(self.encoder.encode(data))

    def receive(self) -> bytes:
        """Receive and open the next datagram."""
        _, payload = self.decoder.decode(self.endpoint.receive())
        return payload

    def receive_next(self, max_skip: int = 16) -> bytes:
        """Receive the next *valid* datagram, skipping damaged ones.

        Datagram transports degrade gracefully: a corrupted, replayed,
        or truncated record is discarded (counted in ``discarded``) and
        the reader moves on, up to ``max_skip`` bad records in a row.
        Raises the last record error once the skip budget is spent, and
        :class:`~repro.protocols.transport.ChannelEmpty` when the link
        runs dry first.
        """
        last_error: Optional[Exception] = None
        for _ in range(max_skip + 1):
            raw = self.endpoint.receive()
            try:
                _, payload = self.decoder.decode(raw)
            except (BadRecordMAC, DecodeError, ReplayError) as exc:
                self.discarded += 1
                last_error = exc
                continue
            return payload
        assert last_error is not None
        raise last_error

    @property
    def records_lost(self) -> int:
        """Inbound datagrams lost in transit (sequence-gap estimate)."""
        return self.decoder.records_lost


def wtls_connect(client: ClientConfig, server: ServerConfig,
                 channel: Optional[DuplexChannel] = None,
                 endpoints: Optional[Tuple[Endpoint, Endpoint]] = None
                 ) -> Tuple[WTLSConnection, WTLSConnection]:
    """Run the (TLS-grammar) handshake, then switch to WTLS records.

    WTLS reuses the handshake machinery — "adaptations of the wired
    security protocols" — but the data phase uses the datagram record
    layer above.  ``endpoints`` lets the session ride pre-built
    endpoints (e.g. an ARQ-protected lossy link).
    """
    if endpoints is not None:
        client_ep, server_ep = endpoints
    else:
        channel = channel or DuplexChannel()
        client_ep = channel.endpoint_a()
        server_ep = channel.endpoint_b()
    with probe.span("session", kind="wtls",
                    server=server.certificate.subject):
        client_session, server_session = run_handshake(
            client, server, client_ep, server_ep
        )
    suite = client_session.suite
    client_keys = _rederive(client_session.master, client, server, suite)
    server_keys = _rederive(server_session.master, client, server, suite)
    client_conn = WTLSConnection(
        encoder=WTLSRecordEncoder(
            suite, client_keys.client_cipher_key,
            client_keys.client_mac_key, client_keys.client_iv),
        decoder=WTLSRecordDecoder(
            suite, client_keys.server_cipher_key,
            client_keys.server_mac_key, client_keys.server_iv),
        endpoint=client_ep, suite_name=suite.name,
    )
    server_conn = WTLSConnection(
        encoder=WTLSRecordEncoder(
            suite, server_keys.server_cipher_key,
            server_keys.server_mac_key, server_keys.server_iv),
        decoder=WTLSRecordDecoder(
            suite, server_keys.client_cipher_key,
            server_keys.client_mac_key, server_keys.client_iv),
        endpoint=server_ep, suite_name=suite.name,
    )
    return client_conn, server_conn


def _rederive(master: bytes, client: ClientConfig, server: ServerConfig,
              suite: CipherSuite) -> KeyBlock:
    # Independent label-space from the TLS record keys: WTLS derives its
    # own key block from the shared master secret.
    return derive_key_block(master, b"wtls-client", b"wtls-server", suite)
