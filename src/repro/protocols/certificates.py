"""A minimal X.509-style certificate system.

The SSL/WTLS handshakes of this library authenticate peers with
certificates signed by a CA, as the paper's m-commerce scenarios
require ("authenticating the server and client, transmitting
certificates", §3.1).  Encoding is a deliberately simple deterministic
byte format (length-prefixed fields) rather than ASN.1 — the security
*logic* (chain of signatures, name binding, validity window) is what
the reproduction needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..crypto.errors import SignatureError
from ..crypto.rng import DeterministicDRBG
from ..crypto.rsa import RSAPublicKey, generate_keypair
from .alerts import CertificateError


def _encode_field(data: bytes) -> bytes:
    return len(data).to_bytes(2, "big") + data


def _decode_fields(blob: bytes, count: int):
    fields = []
    offset = 0
    for _ in range(count):
        if offset + 2 > len(blob):
            raise CertificateError("certificate truncated")
        length = int.from_bytes(blob[offset : offset + 2], "big")
        offset += 2
        fields.append(blob[offset : offset + length])
        offset += length
    return fields, blob[offset:]


@dataclass(frozen=True)
class Certificate:
    """A signed binding of a subject name to an RSA public key."""

    subject: str
    issuer: str
    public_key: RSAPublicKey
    not_before: int  # simulation epoch (arbitrary integer clock)
    not_after: int
    signature: bytes

    def tbs_bytes(self) -> bytes:
        """The to-be-signed payload."""
        return (
            _encode_field(self.subject.encode())
            + _encode_field(self.issuer.encode())
            + _encode_field(self.public_key.n.to_bytes(
                (self.public_key.n.bit_length() + 7) // 8, "big"))
            + _encode_field(self.public_key.e.to_bytes(4, "big"))
            + self.not_before.to_bytes(8, "big")
            + self.not_after.to_bytes(8, "big")
        )

    def to_bytes(self) -> bytes:
        """Serialize certificate including signature."""
        return self.tbs_bytes() + _encode_field(self.signature)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Certificate":
        """Parse a serialized certificate."""
        fields, rest = _decode_fields(blob, 4)
        subject, issuer, n_bytes, e_bytes = fields
        if len(rest) < 16:
            raise CertificateError("certificate validity truncated")
        not_before = int.from_bytes(rest[:8], "big")
        not_after = int.from_bytes(rest[8:16], "big")
        (signature,), leftover = _decode_fields(rest[16:], 1)
        if leftover:
            raise CertificateError("trailing bytes after certificate")
        if len(n_bytes) > 1024 or len(e_bytes) > 8:
            raise CertificateError("certificate key fields oversized")
        n = int.from_bytes(n_bytes, "big")
        e = int.from_bytes(e_bytes, "big")
        if n < 3 or e < 2:
            raise CertificateError("certificate key degenerate")
        try:
            subject_name = subject.decode()
            issuer_name = issuer.decode()
        except UnicodeDecodeError as exc:
            raise CertificateError(
                f"certificate name is not valid UTF-8: {exc}") from exc
        return cls(
            subject=subject_name,
            issuer=issuer_name,
            public_key=RSAPublicKey(n, e),
            not_before=not_before,
            not_after=not_after,
            signature=signature,
        )


class CertificateAuthority:
    """A toy CA that issues and validates certificates.

    >>> ca = CertificateAuthority("TestCA", DeterministicDRBG(7))
    >>> key, cert = ca.issue("server.example", DeterministicDRBG(8))
    >>> ca.validate(cert, now=500)
    """

    def __init__(self, name: str, rng: DeterministicDRBG,
                 key_bits: int = 512) -> None:
        self.name = name
        self._key = generate_keypair(key_bits, rng)
        self.public_key = self._key.public

    def issue(self, subject: str, rng: DeterministicDRBG,
              key_bits: int = 512, not_before: int = 0,
              not_after: int = 1_000_000) -> tuple:
        """Issue a key pair + certificate for ``subject``.

        Returns ``(private_key, certificate)``.
        """
        subject_key = generate_keypair(key_bits, rng)
        cert = self.sign_public_key(
            subject, subject_key.public, not_before, not_after
        )
        return subject_key, cert

    def sign_public_key(self, subject: str, public_key: RSAPublicKey,
                        not_before: int = 0,
                        not_after: int = 1_000_000) -> Certificate:
        """Sign an externally generated public key."""
        unsigned = Certificate(
            subject=subject, issuer=self.name, public_key=public_key,
            not_before=not_before, not_after=not_after, signature=b"",
        )
        signature = self._key.sign(unsigned.tbs_bytes())
        return Certificate(
            subject=subject, issuer=self.name, public_key=public_key,
            not_before=not_before, not_after=not_after, signature=signature,
        )

    def validate(self, cert: Certificate, now: int = 0,
                 expected_subject: Optional[str] = None) -> None:
        """Check issuer, signature, validity window, and subject name."""
        if cert.issuer != self.name:
            raise CertificateError(
                f"certificate issued by {cert.issuer!r}, not {self.name!r}"
            )
        try:
            self.public_key.verify(cert.tbs_bytes(), cert.signature)
        except SignatureError as exc:
            raise CertificateError(f"CA signature invalid: {exc}") from exc
        if not cert.not_before <= now <= cert.not_after:
            raise CertificateError("certificate outside validity window")
        if expected_subject is not None and cert.subject != expected_subject:
            raise CertificateError(
                f"subject {cert.subject!r} does not match expected "
                f"{expected_subject!r}"
            )
