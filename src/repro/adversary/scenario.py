"""The canonical mixed benign/attack load scenario.

One call builds the N-handset gateway world with telemetry active,
fronts it with the stateless-cookie DoS gate, seeds a four-class
attacker population on the same virtual clock, drives the chaos
traffic shape from :mod:`repro.observability.scenario` while the
population fires, and returns everything the survivability report
needs — with the same determinism contract as every other scenario in
the repo: same seed, byte-identical outcome.

The attacker intensity is parameterized as a *fraction of total
traffic*: ``attacker_fraction=0.5`` makes attacker events arrive at
the same aggregate rate as benign requests.  ``attacker_fraction=0``
is the attack-free baseline the survivability bound is declared
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..conformance.fuzzcorpus import default_targets, mutation_stream
from ..crypto.rng import DeterministicDRBG
from ..hardware.battery import Battery
from ..observability import probe
from ..observability.attribution import EnergyReconciliation, reconcile_energy
from ..observability.metrics import (
    export_adversary_population,
    export_dos_responder,
    export_runtime,
)
from ..observability.scenario import ORIGIN, classify_reply
from ..observability.spans import Telemetry
from ..protocols.dos import CookieProtectedResponder
from ..protocols.faults import FaultyChannel
from ..protocols.gateway_runtime import (
    OPEN,
    RuntimeConfig,
    RuntimeStats,
    build_gateway_runtime_world,
)
from ..protocols.alerts import ProtocolAlert
from ..protocols.reliable import VirtualClock
from ..protocols.transport import ChannelClosed
from .population import (
    AdversaryPopulation,
    CookieFloodAdversary,
    DowngradeAdversary,
    FuzzInjectionAdversary,
    TimingProbeAdversary,
)

GATEWAY_SUBJECT = "gateway.operator"
SECRET_ROTATION_S = 0.25


def survivability_config() -> RuntimeConfig:
    """The default runtime sizing for the survivability scenario.

    Unlike the chaos scenario (which deliberately overloads admission
    to exercise shedding), survivability needs a gateway *sized for its
    benign load*: the attack-free baseline serves essentially
    everything, so any goodput lost under attack is attributable to
    the attackers, not to an under-provisioned bucket.
    """
    return RuntimeConfig(queue_limit=64, bucket_capacity=64.0,
                         bucket_refill_per_s=200.0,
                         service_time_s=0.005)


@dataclass
class SurvivabilityResult:
    """Everything one seeded mixed-load run produced."""

    telemetry: Telemetry
    stats: RuntimeStats
    counts: Dict[str, int]
    batteries: Dict[str, Battery]
    population: AdversaryPopulation
    responder: CookieProtectedResponder
    breakers: Dict[str, List]
    reconciliation: EnergyReconciliation
    leftover_discarded: int = 0
    params: Dict[str, object] = field(default_factory=dict)
    #: Windowed attacker-vs-user battery-drain split (mJ per window),
    #: present only when ``energy_window_s`` was passed — the default
    #: run (and its byte-stable report) is unchanged.
    energy_split: Optional[Dict[str, object]] = None

    @property
    def benign_goodput(self) -> float:
        """Fraction of benign requests fully served."""
        answered = sum(self.counts.values())
        return self.counts.get("served", 0) / answered if answered else 0.0


def _build_population(seed: int, rate_per_class: float,
                      attacker_battery_j: float, runtime, responder,
                      channels, ca) -> AdversaryPopulation:
    wtls_target = next(t for t in default_targets()
                       if t.name == "wtls_record")
    flood = CookieFloodAdversary(
        "flood-0", rate_per_class, seed, responder,
        battery=Battery(capacity_j=attacker_battery_j))
    downgrade = DowngradeAdversary(
        "mitm-0", rate_per_class, seed,
        server_config=runtime.gateway.gateway_config, ca=ca,
        expected_server=GATEWAY_SUBJECT,
        battery=Battery(capacity_j=attacker_battery_j))
    timing = TimingProbeAdversary(
        "probe-0", rate_per_class, seed,
        battery=Battery(capacity_j=attacker_battery_j))
    fuzz = FuzzInjectionAdversary(
        "fuzz-0", rate_per_class, seed, channels,
        mutations=mutation_stream(wtls_target, seed),
        battery=Battery(capacity_j=attacker_battery_j))
    population = AdversaryPopulation(
        [flood, downgrade, timing, fuzz])

    population.add_rule(
        "dos-table-pressure",
        lambda: (f"pending-table evictions: {responder.evicted}"
                 if responder.evicted > 0 else None))
    population.add_rule(
        "wire-garbage",
        lambda: (f"malformed records discarded: "
                 f"{runtime.stats.malformed_discarded}"
                 if runtime.stats.malformed_discarded >= 4 else None))
    population.add_rule(
        "downgrade-attempts",
        lambda: (f"downgrade attempts blocked: "
                 f"{downgrade.downgrades_blocked}"
                 if downgrade.downgrades_blocked >= 1 else None))
    population.add_rule(
        "timing-probe-volume",
        lambda: (f"timing samples observed: {timing.samples_collected}"
                 if timing.samples_collected >= 128 else None))
    population.add_rule(
        "origin-breaker-open",
        lambda: ("origin breaker opened" if any(
            to == OPEN for breaker in runtime.breakers.values()
            for _, _, to in breaker.transitions) else None))
    return population


def run_survivability(sessions: int = 32, requests_per_session: int = 4,
                      interarrival_s: float = 0.1,
                      attacker_fraction: float = 0.5,
                      fault_rate: float = 0.0, seed: int = 2003,
                      battery_capacity_j: float = 5.0,
                      attacker_battery_j: float = 2.0,
                      config: Optional[RuntimeConfig] = None,
                      energy_window_s: Optional[float] = None
                      ) -> SurvivabilityResult:
    """One seeded mixed benign/attack run on a single virtual clock.

    The benign side is the chaos traffic shape (``sessions`` handsets,
    ``requests_per_session`` rounds); the attacker side is four
    adversary classes whose aggregate Poisson rate makes up
    ``attacker_fraction`` of total traffic.  Every benign request is
    answered (served / degraded / structured shed), every millijoule
    reconciles, and the whole run is a pure function of its parameters.

    ``energy_window_s`` (opt-in) additionally tracks the
    attacker-vs-user battery-drain split as windowed series
    (``result.energy_split`` with ``user_mj`` / ``attacker_mj``
    :class:`~repro.observability.timeseries.WindowedSeries`); the run
    itself — and the default survivability report — is unchanged.
    """
    if not 0.0 <= attacker_fraction < 1.0:
        raise ValueError("attacker fraction must be in [0, 1)")
    clock = VirtualClock()
    telemetry = Telemetry(
        seed=("survivability", sessions, requests_per_session,
              interarrival_s, attacker_fraction, fault_rate, seed),
        clock=clock, label="survivability")
    batteries = {
        f"handset-{index:02d}": Battery(capacity_j=battery_capacity_j)
        for index in range(sessions)
    }
    channels = {
        f"handset-{index:02d}": FaultyChannel(
            seed=seed * 1000 + index)
        for index in range(sessions)
    }
    horizon_s = requests_per_session * interarrival_s
    with probe.activate(telemetry):
        runtime, handsets, ca = build_gateway_runtime_world(
            sessions=sessions, seed=seed,
            config=config or survivability_config(),
            batteries=batteries, clock=clock,
            channel_factory=channels.__getitem__)
        if fault_rate > 0.0:
            runtime.set_fault_rate(ORIGIN, fault_rate, seed=seed)
        export_runtime(telemetry.registry, runtime)

        # The DoS front gate: benign handsets pass the cookie exchange
        # at attach time; the flood adversary hammers the same gate.
        responder = CookieProtectedResponder(
            rng=DeterministicDRBG(("surv-dos", seed).__repr__()),
            pending_limit=64)
        export_dos_responder(telemetry.registry, responder)
        gate_rng = DeterministicDRBG(("surv-gate", seed).__repr__())
        for index, session_id in enumerate(sorted(handsets)):
            address = f"192.168.1.{index + 2}"
            nonce = gate_rng.random_bytes(8)
            cookie = responder.first_contact(address, nonce)
            assert cookie is not None
            assert responder.second_contact(address, nonce, cookie)

        population = AdversaryPopulation([])
        if attacker_fraction > 0.0:
            benign_rate = sessions / interarrival_s
            attacker_rate = (attacker_fraction
                             / (1.0 - attacker_fraction)) * benign_rate
            population = _build_population(
                seed, attacker_rate / 4.0, attacker_battery_j,
                runtime, responder, channels, ca)
            export_adversary_population(telemetry.registry, population)
        runtime.add_ticker(population.tick)

        rotation_state = {"last": 0.0}

        def rotate(now: float) -> None:
            while now - rotation_state["last"] >= SECRET_ROTATION_S:
                rotation_state["last"] += SECRET_ROTATION_S
                responder.rotate_secret()

        runtime.add_ticker(rotate)

        energy_split: Optional[Dict[str, object]] = None
        if energy_window_s is not None:
            from ..observability.timeseries import WindowedSeries
            energy_split = {
                "user_mj": WindowedSeries("user_mj", energy_window_s),
                "attacker_mj": WindowedSeries("attacker_mj",
                                              energy_window_s),
            }
            drained = {"user": 0.0, "attacker": 0.0}

            def sample_energy(now: float) -> None:
                user = sum((b.capacity_j - b.remaining_j) * 1000.0
                           for b in batteries.values())
                attacker = sum(
                    (a.battery.capacity_j - a.battery.remaining_j) * 1000.0
                    for a in population.adversaries)
                energy_split["user_mj"].inc(now, user - drained["user"])
                energy_split["attacker_mj"].inc(
                    now, attacker - drained["attacker"])
                drained["user"] = user
                drained["attacker"] = attacker

            runtime.add_ticker(sample_energy)

        session_ids = sorted(handsets)
        for round_index in range(requests_per_session):
            for slot, session_id in enumerate(session_ids):
                handsets[session_id].send(
                    f"req-{session_id}-{round_index}".encode())
                runtime.submit(
                    session_id, ORIGIN,
                    arrival_offset_s=round_index * interarrival_s
                    + slot * interarrival_s / max(1, sessions))
        stats = runtime.run()

        # Let the population catch up to the scenario horizon, then
        # sweep any still-queued injected garbage through the gateway's
        # skip-and-count path (it must never crash on leftovers).
        if horizon_s > clock.now:
            clock.advance_to(horizon_s)
        population.tick(clock.now)
        leftover_before = sum(
            runtime.sessions[sid].conn.discarded for sid in session_ids)
        for session_id in session_ids:
            conn = runtime.sessions[session_id].conn
            for _ in range(256):
                try:
                    conn.receive_next(max_skip=64)
                except ChannelClosed:
                    break
                except ProtocolAlert:
                    continue  # budget spent mid-garbage: keep sweeping
        leftover_discarded = sum(
            runtime.sessions[sid].conn.discarded
            for sid in session_ids) - leftover_before
        population.finish(clock.now)
        if energy_split is not None:
            sample_energy(clock.now)  # final flush into the last window

        replies: List[str] = []
        for session_id in session_ids:
            conn = handsets[session_id]
            while conn.endpoint.pending():
                replies.append(classify_reply(conn.receive()))
    counts = {kind: replies.count(kind)
              for kind in ("served", "degraded", "shed")}
    all_batteries = list(batteries.values()) + [
        adversary.battery for adversary in population.adversaries]
    return SurvivabilityResult(
        telemetry=telemetry,
        stats=stats,
        counts=counts,
        batteries=batteries,
        population=population,
        responder=responder,
        breakers={origin: list(breaker.transitions)
                  for origin, breaker in sorted(runtime.breakers.items())},
        reconciliation=reconcile_energy(telemetry, all_batteries),
        leftover_discarded=leftover_discarded,
        params={
            "sessions": sessions,
            "requests_per_session": requests_per_session,
            "interarrival_s": interarrival_s,
            "attacker_fraction": attacker_fraction,
            "fault_rate": fault_rate,
            "seed": seed,
            "battery_capacity_j": battery_capacity_j,
            "attacker_battery_j": attacker_battery_j,
        },
        energy_split=energy_split,
    )
