"""Seeded attacker classes and the population that ticks them.

Each adversary is a generator with its own Poisson arrival process
(seeded exponential gaps on the shared virtual clock), its own DRBG,
its own battery (attackers pay radio energy too — the §3.3 ledger cuts
both ways), and a per-class damage counter.  The population is driven
as a :meth:`GatewayRuntime.add_ticker` hook, so attacker events and
benign arrivals interleave on one deterministic timeline.

Every fired event runs inside a ``probe.span("adversary.fire",
adversary=<class>, ...)`` so battery withdrawals made during the event
are attributed to the attacker class in the telemetry trace
(:func:`~repro.observability.attribution.adversary_energy_mj`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..attacks.timing import TimingAttack, measure_sqm
from ..crypto.rng import DeterministicDRBG
from ..hardware.battery import Battery, BatteryEmpty
from ..hardware.energy import EnergyModel
from ..observability import probe
from ..protocols.alerts import HandshakeFailure, ProtocolAlert
from ..protocols.certificates import CertificateAuthority
from ..protocols.ciphersuites import (
    ALL_SUITES,
    LIGHTWEIGHT_SUITES,
    NULL_WITH_SHA,
)
from ..protocols.dos import CookieProtectedResponder
from ..protocols.faults import FaultyChannel
from ..protocols.handshake import ClientConfig, ServerConfig, run_handshake
from ..protocols.messages import ClientHello
from ..protocols.transport import DuplexChannel

#: Modelled wire size of one spoofed hello / probe datagram (bytes).
PROBE_FRAME_BYTES = 64


class Adversary:
    """Base class: a seeded arrival process wrapped around an attack.

    Subclasses implement :meth:`fire` (one attack event) and
    :meth:`_extra_snapshot` (their damage counters).  ``rate_per_s`` is
    the Poisson intensity of the arrival process; a non-positive rate
    never fires.  The adversary stops (``exhausted``) when its battery
    refuses a withdrawal — attacks are not free.
    """

    kind = "abstract"

    def __init__(self, name: str, rate_per_s: float, seed: int,
                 battery: Optional[Battery] = None,
                 energy: Optional[EnergyModel] = None) -> None:
        self.name = name
        self.rate_per_s = float(rate_per_s)
        self.seed = seed
        self.battery = battery if battery is not None else Battery(
            capacity_j=2.0)
        self.energy = energy or EnergyModel()
        self.events = 0
        self.exhausted = False
        self.energy_spent_mj = 0.0
        self._drbg = DeterministicDRBG(
            ("adversary", self.kind, name, seed).__repr__())
        self._next_at = (self._gap() if self.rate_per_s > 0.0
                         else math.inf)

    # -- arrival process -----------------------------------------------------

    def _gap(self) -> float:
        """One exponential interarrival gap (inverse-CDF sampling)."""
        u = self._drbg.random()
        return -math.log(1.0 - u) / self.rate_per_s

    def tick(self, now: float) -> None:
        """Fire every event due at or before ``now``."""
        while not self.exhausted and self._next_at <= now:
            fire_at = self._next_at
            self._next_at = fire_at + self._gap()
            self.events += 1
            with probe.span("adversary.fire", adversary=self.kind,
                            actor=self.name):
                self.fire(fire_at)

    def _spend(self, num_bytes: int) -> float:
        """Drain attacker battery for one transmitted frame; an empty
        battery retires the adversary instead of raising."""
        millijoules = self.energy.frame_transmit_mj(num_bytes)
        try:
            self.battery.drain_mj(millijoules)
        except BatteryEmpty:
            self.exhausted = True
            return 0.0
        self.energy_spent_mj += millijoules
        return millijoules

    # -- subclass surface ----------------------------------------------------

    def fire(self, at: float) -> None:
        raise NotImplementedError

    def finish(self, now: float) -> None:
        """End-of-run hook (e.g. offline analysis of collected samples)."""

    def _extra_snapshot(self) -> Dict[str, object]:
        return {}

    def snapshot(self) -> Dict[str, object]:
        """The damage ledger as a plain dict (report/export seam)."""
        out: Dict[str, object] = {
            "events": self.events,
            "exhausted": self.exhausted,
            "rate_per_s": round(self.rate_per_s, 6),
            "energy_spent_mj": round(self.energy_spent_mj, 6),
            "battery_drained_mj": round(
                (self.battery.capacity_j - self.battery.remaining_j)
                * 1000.0, 6),
        }
        out.update(self._extra_snapshot())
        return out


class CookieFloodAdversary(Adversary):
    """Blind spoofed-source hello flood against the stateless-cookie
    gate (§3.2 amplification): drives the responder's bounded pending
    table toward eviction, and occasionally guesses a cookie blind
    (which the HMAC gate must reject)."""

    kind = "cookie-flood"

    def __init__(self, name: str, rate_per_s: float, seed: int,
                 responder: CookieProtectedResponder,
                 floods_per_event: int = 8, **kwargs) -> None:
        super().__init__(name, rate_per_s, seed, **kwargs)
        self.responder = responder
        self.floods_per_event = floods_per_event
        self.hellos_sent = 0
        self.forged_cookies = 0

    def fire(self, at: float) -> None:
        for _ in range(self.floods_per_event):
            if self._spend(PROBE_FRAME_BYTES) == 0.0:
                return
            address = ".".join(
                str(self._drbg.randrange(256)) for _ in range(4))
            nonce = self._drbg.random_bytes(8)
            self.responder.first_contact(address, nonce)
            self.hellos_sent += 1
            # Every fourth hello also tries a blind cookie guess: the
            # spoofed source never saw the real cookie, so the HMAC
            # gate must reject it (cookies_rejected on the responder).
            if self.hellos_sent % 4 == 0:
                if self._spend(PROBE_FRAME_BYTES) == 0.0:
                    return
                self.responder.second_contact(
                    address, nonce, self._drbg.random_bytes(16))
                self.forged_cookies += 1

    def _extra_snapshot(self) -> Dict[str, object]:
        return {"hellos_sent": self.hellos_sent,
                "forged_cookies": self.forged_cookies}


class DowngradeAdversary(Adversary):
    """On-path MITM that rewrites the ClientHello's suite preference
    down to the weakest suite.  The dual-transcript Finished exchange
    must catch the tamper (``verify_data`` diverges), so every attempt
    lands in ``downgrades_blocked``; a nonzero ``downgrades_succeeded``
    is a protocol break."""

    kind = "downgrade"

    def __init__(self, name: str, rate_per_s: float, seed: int,
                 server_config: ServerConfig, ca: CertificateAuthority,
                 expected_server: str, **kwargs) -> None:
        super().__init__(name, rate_per_s, seed, **kwargs)
        self.server_config = server_config
        self.ca = ca
        self.expected_server = expected_server
        self.downgrades_blocked = 0
        self.downgrades_succeeded = 0

    def fire(self, at: float) -> None:
        sent = {"bytes": 0, "rewritten": False}

        def intercept(frame: bytes, direction: str) -> Optional[bytes]:
            if direction == "a->b" and not sent["rewritten"]:
                sent["rewritten"] = True
                try:
                    hello = ClientHello.from_bytes(frame)
                except ProtocolAlert:  # pragma: no cover - hello is valid
                    pass
                else:
                    self._rewrite_hello(hello)
                    frame = hello.to_bytes()
            sent["bytes"] += len(frame)
            return frame

        channel = DuplexChannel(interceptor=intercept)
        client = ClientConfig(
            rng=DeterministicDRBG(
                ("downgrade-client", self.seed, self.events).__repr__()),
            ca=self.ca, expected_server=self.expected_server,
            suites=self._client_suites())
        try:
            run_handshake(client, self.server_config,
                          channel.endpoint_a(), channel.endpoint_b())
        except HandshakeFailure:
            self.downgrades_blocked += 1
        else:
            self.downgrades_succeeded += 1
        # The MITM pays to retransmit every frame it forwarded.
        self._spend(sent["bytes"])

    def _rewrite_hello(self, hello: ClientHello) -> None:
        """The tamper itself: force the weakest suite."""
        hello.suite_names = [NULL_WITH_SHA.name]

    def _client_suites(self) -> List:
        """The victim's suite preference list (overridable)."""
        return list(ALL_SUITES)

    def _extra_snapshot(self) -> Dict[str, object]:
        return {"downgrades_blocked": self.downgrades_blocked,
                "downgrades_succeeded": self.downgrades_succeeded}


class StreamStripAdversary(DowngradeAdversary):
    """Downgrade variant for the lightweight suite family: instead of
    forcing NULL, the MITM *strips* the stream suites from a handset
    that prefers them, leaving only the legacy block suites.

    Negotiation then quietly completes on a legacy suite — which is
    exactly why this is the more dangerous shape: nothing fails until
    the dual-transcript Finished, where the client's transcript (its
    genuine hello) diverges from the server's (the stripped one).
    Every attempt must land in ``downgrades_blocked``;
    ``downgrades_succeeded == 0`` is the acceptance bar."""

    kind = "stream-strip"

    def _rewrite_hello(self, hello: ClientHello) -> None:
        lightweight = {suite.name for suite in LIGHTWEIGHT_SUITES}
        stripped = [name for name in hello.suite_names
                    if name not in lightweight]
        hello.suite_names = stripped or [NULL_WITH_SHA.name]

    def _client_suites(self) -> List:
        # A victim that actually prefers the lightweight family, with
        # legacy fallbacks behind it.
        return LIGHTWEIGHT_SUITES + [
            suite for suite in ALL_SUITES
            if suite not in LIGHTWEIGHT_SUITES]


class TimingProbeAdversary(Adversary):
    """Kocher-style timing probe: each event collects total-time samples
    of the victim's square-and-multiply (``attacks/timing.py`` cost
    model); at end of run the collected budget funds one offline
    recovery attempt against a small demonstration modulus."""

    kind = "timing-probe"

    def __init__(self, name: str, rate_per_s: float, seed: int,
                 samples_per_event: int = 24, exponent_bits: int = 8,
                 max_samples: int = 400, **kwargs) -> None:
        super().__init__(name, rate_per_s, seed, **kwargs)
        self.samples_per_event = samples_per_event
        self.exponent_bits = exponent_bits
        self.max_samples = max_samples
        self.samples_collected = 0
        self.bits_recovered = 0
        self.recovered = False
        self.attack_ran = False
        # A small, odd (Montgomery-friendly) demonstration modulus and
        # a secret exponent with both end bits set, from the DRBG.
        self.modulus = self._drbg.getrandbits(16) | (1 << 15) | 1
        self.secret = (self._drbg.getrandbits(exponent_bits)
                       | (1 << (exponent_bits - 1)) | 1)

    def fire(self, at: float) -> None:
        for _ in range(self.samples_per_event):
            if self._spend(PROBE_FRAME_BYTES) == 0.0:
                return
            self.samples_collected += 1

    def finish(self, now: float) -> None:
        if self.attack_ran or self.samples_collected < 32:
            return
        self.attack_ran = True
        expected = pow(5, self.secret, self.modulus)

        with probe.span("adversary.finish", adversary=self.kind,
                        actor=self.name):
            attack = TimingAttack(
                self.modulus,
                oracle=lambda base: measure_sqm(
                    base, self.secret, self.modulus),
                verifier=lambda cand: pow(5, cand, self.modulus) == expected)
            result = attack.run(
                self.exponent_bits,
                samples=min(self.samples_collected, self.max_samples),
                seed=self.seed, max_retries=2)
        self.bits_recovered = result.bits_recovered
        self.recovered = result.succeeded

    def _extra_snapshot(self) -> Dict[str, object]:
        return {"samples_collected": self.samples_collected,
                "bits_recovered": self.bits_recovered,
                "recovered": self.recovered}


class FuzzInjectionAdversary(Adversary):
    """Wire-injection flood: feeds live mutants from the conformance
    fuzzer's mutation engine (:func:`~repro.conformance.fuzzcorpus
    .mutation_stream`) into victim sessions' FaultyChannels toward the
    gateway, which must skip-and-shed, never crash."""

    kind = "fuzz-injection"

    def __init__(self, name: str, rate_per_s: float, seed: int,
                 channels: Dict[str, FaultyChannel],
                 mutations, injections_per_event: int = 2,
                 burst_every: int = 4, burst_size: int = 24,
                 **kwargs) -> None:
        super().__init__(name, rate_per_s, seed, **kwargs)
        self._victims = sorted(channels)
        self._channels = channels
        self._mutations = mutations
        self.injections_per_event = injections_per_event
        self.burst_every = burst_every
        self.burst_size = burst_size
        self.frames_injected = 0
        self.bursts_fired = 0
        self.bytes_injected = 0

    def fire(self, at: float) -> None:
        # Every ``burst_every``-th event is a concentrated burst at one
        # victim, sized past the gateway's per-receive skip budget so
        # the structured ``malformed`` shed path gets exercised, not
        # just the silent skip-and-continue.
        count = self.injections_per_event
        if self.burst_every > 0 and self.events % self.burst_every == 0:
            count = self.burst_size
            self.bursts_fired += 1
        victim = self._victims[self._drbg.randrange(len(self._victims))]
        for _ in range(count):
            blob = next(self._mutations)
            if self._spend(max(1, len(blob))) == 0.0:
                return
            # Handset writes a->b: injected frames travel toward the
            # gateway, cutting ahead of the handset's queued requests
            # (the attacker transmits from beside the gateway).
            self._channels[victim].inject("a->b", blob, front=True)
            self.frames_injected += 1
            self.bytes_injected += len(blob)

    def _extra_snapshot(self) -> Dict[str, object]:
        return {"frames_injected": self.frames_injected,
                "bytes_injected": self.bytes_injected,
                "bursts_fired": self.bursts_fired}


# ---------------------------------------------------------------------------
# Alerts and the population.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Alert:
    """One latched detection: a threshold rule that fired."""

    name: str
    at_s: float
    detail: str


@dataclass(frozen=True)
class AlertRule:
    """A named detection rule: ``check()`` returns the alert detail
    string once the condition holds, else ``None``.  Latched — fires at
    most once."""

    name: str
    check: Callable[[], Optional[str]]


class AdversaryPopulation:
    """The attacker classes plus the defender's alert rules, ticked as
    one unit from the runtime event loop."""

    def __init__(self, adversaries: List[Adversary],
                 rules: Optional[List[AlertRule]] = None) -> None:
        self.adversaries = list(adversaries)
        self.rules = list(rules or [])
        self.alerts: List[Alert] = []
        self._latched: set = set()

    def add_rule(self, name: str,
                 check: Callable[[], Optional[str]]) -> None:
        self.rules.append(AlertRule(name, check))

    def tick(self, now: float) -> None:
        """The runtime ticker hook: fire due attacker events, then
        evaluate the (latched) alert rules."""
        for adversary in self.adversaries:
            adversary.tick(now)
        self._evaluate(now)

    def finish(self, now: float) -> None:
        """End of run: offline analyses, one final alert sweep."""
        for adversary in self.adversaries:
            adversary.finish(now)
        self._evaluate(now)

    def _evaluate(self, now: float) -> None:
        for rule in self.rules:
            if rule.name in self._latched:
                continue
            detail = rule.check()
            if detail is not None:
                self._latched.add(rule.name)
                self.alerts.append(Alert(rule.name, round(now, 6), detail))
                probe.event("adversary.alert", rule=rule.name,
                            detail=detail)

    def total_events(self) -> int:
        return sum(adversary.events for adversary in self.adversaries)

    def energy_spent_mj(self) -> float:
        """Energy the attacker population drained from its batteries."""
        return sum((a.battery.capacity_j - a.battery.remaining_j) * 1000.0
                   for a in self.adversaries)
