"""The adversarial traffic plane: seeded attacker populations sharing
the gateway's virtual clock with benign load.

The paper's appliance must keep serving legitimate users *while under
attack* on a battery budget (§2 "preventing denial-of-service
attacks", §3.3 the battery gap).  PR 3's fault injection and PR 5's
fuzzer exercise the stacks one blow at a time; this package promotes
them into a continuous adversary plane: each attacker class is a
generator with its own arrival process, seed, and energy cost, ticked
by the :class:`~repro.protocols.gateway_runtime.GatewayRuntime` event
loop, and the deliverable is a byte-stable **survivability report**.
"""

from .population import (
    Adversary,
    AdversaryPopulation,
    Alert,
    AlertRule,
    CookieFloodAdversary,
    DowngradeAdversary,
    FuzzInjectionAdversary,
    StreamStripAdversary,
    TimingProbeAdversary,
)
from .scenario import SurvivabilityResult, run_survivability

__all__ = [
    "Adversary",
    "AdversaryPopulation",
    "Alert",
    "AlertRule",
    "CookieFloodAdversary",
    "DowngradeAdversary",
    "FuzzInjectionAdversary",
    "StreamStripAdversary",
    "TimingProbeAdversary",
    "SurvivabilityResult",
    "run_survivability",
]
