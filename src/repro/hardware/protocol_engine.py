"""Programmable security protocol engines (Section 4.2.3).

Cryptographic accelerators leave the protocol-processing component —
header/trailer handling, parsing, session state — on the host.  A
security protocol engine (Safenet's IPSec packet engine [60], NEC's
MOSES platform [66-68]) offloads all of it, and a *programmable* one
can be re-targeted as standards evolve, combining "the benefits of
flexibility and efficiency".  :class:`ProtocolEngine` models both the
programmable and hardwired variants.
"""

from __future__ import annotations

from dataclasses import dataclass

from .accelerators import ExecutionReport, Workload
from .processors import Processor
from .workloads import BulkWorkload, HandshakeWorkload


@dataclass
class ProtocolEngine:
    """Option 4: a programmable security protocol engine (MOSES-style).

    Offloads cryptography *and* protocol processing; the host only
    submits descriptors.  ``programmable`` keeps flexibility high —
    the engine can be re-targeted to new protocol standards (§4.2.3),
    which is the property the MOSES work [66-68] contributes.
    """

    processor: Processor
    name: str = "protocol-engine"
    programmable: bool = True
    bulk_mbps: float = 100.0
    bulk_uj_per_byte: float = 0.015
    rsa_ops_per_s: float = 400.0
    rsa_mj_per_op: float = 0.6
    descriptor_instructions: float = 200.0

    @property
    def flexibility(self) -> float:
        """Programmable engines retain most software flexibility."""
        return 0.8 if self.programmable else 0.1

    def supports(self, workload: Workload) -> bool:
        """The engine executes full protocol workloads of any shape."""
        return True

    def execute(self, workload: Workload) -> ExecutionReport:
        """Charge nearly everything to the engine."""
        if isinstance(workload, BulkWorkload):
            megabits = workload.kilobytes * 8.192 / 1000.0
            hw_time = megabits / self.bulk_mbps
            hw_energy = self.bulk_uj_per_byte * workload.kilobytes * 1024.0 / 1000.0
            descriptors = workload.packets
        elif isinstance(workload, HandshakeWorkload):
            scale = (workload.rsa_bits / 1024.0) ** 3 / (4.0 if workload.use_crt else 1.0)
            hw_time = workload.count * scale / self.rsa_ops_per_s
            hw_energy = workload.count * self.rsa_mj_per_op * scale
            descriptors = workload.count
        else:
            hs_report = self.execute(workload.handshake)
            bulk_report = self.execute(workload.bulk)
            return ExecutionReport(
                self.name,
                hs_report.time_s + bulk_report.time_s,
                hs_report.energy_mj + bulk_report.energy_mj,
                hs_report.host_instructions + bulk_report.host_instructions,
            )
        host_instr = descriptors * self.descriptor_instructions
        host_time = host_instr / (self.processor.mips * 1e6)
        host_energy = host_instr * self.processor.energy_per_instruction_nj / 1e6
        return ExecutionReport(
            self.name, hw_time + host_time, hw_energy + host_energy, host_instr
        )
