"""Assemble complete mobile-appliance hardware platforms.

A :class:`HardwarePlatform` couples a processor, battery, radio, and a
set of security-processing engines (the §4.2 ladder) into one object
that the core layer (:mod:`repro.core.appliance`) drives.  Dispatch
policy: a workload is routed to the most efficient engine that
supports it — the behaviour of a real HW/SW codesign where drivers
fall back to software when hardware lacks an algorithm (the
flexibility/efficiency tension of §3.1 made concrete).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .accelerators import ExecutionReport, SoftwareEngine, Workload
from .battery import Battery
from .processors import ARM7, Processor
from .radio import GSM_RADIO, Radio


@dataclass
class HardwarePlatform:
    """A mobile appliance's hardware complement.

    Engines are tried in the given order; list them most-efficient
    first.  A plain software engine on the platform processor is always
    available as the final fallback, preserving full algorithm
    flexibility.
    """

    processor: Processor = ARM7
    battery: Battery = field(default_factory=Battery)
    radio: Radio = GSM_RADIO
    engines: List = field(default_factory=list)
    energy_spent_mj: float = 0.0
    time_spent_s: float = 0.0

    def __post_init__(self) -> None:
        self._fallback = SoftwareEngine(self.processor)

    def select_engine(self, workload: Workload):
        """First listed engine that supports the workload, else software."""
        for engine in self.engines:
            if engine.supports(workload):
                return engine
        return self._fallback

    def run_security_workload(self, workload: Workload,
                              engine=None) -> ExecutionReport:
        """Execute a workload, charging time and battery energy."""
        engine = engine or self.select_engine(workload)
        report = engine.execute(workload)
        self.battery.drain_mj(report.energy_mj)
        self.energy_spent_mj += report.energy_mj
        self.time_spent_s += report.time_s
        return report

    def transmit(self, kilobytes: float) -> float:
        """Send data over the radio; returns elapsed seconds."""
        energy = self.radio.tx_energy_mj(kilobytes)
        self.battery.drain_mj(energy)
        self.energy_spent_mj += energy
        elapsed = self.radio.tx_time_s(kilobytes)
        self.time_spent_s += elapsed
        return elapsed

    def receive(self, kilobytes: float) -> float:
        """Receive data over the radio; returns elapsed seconds."""
        energy = self.radio.rx_energy_mj(kilobytes)
        self.battery.drain_mj(energy)
        self.energy_spent_mj += energy
        elapsed = kilobytes * 8.0 / self.radio.data_rate_kbps
        self.time_spent_s += elapsed
        return elapsed

    def sustainable_data_rate_mbps(self, instructions_per_byte: float) -> float:
        """Highest protected data rate the CPU alone can sustain."""
        if instructions_per_byte <= 0:
            return float("inf")
        bytes_per_second = self.processor.mips * 1e6 / instructions_per_byte
        return bytes_per_second * 8.0 / 1e6


def sensor_node_platform() -> HardwarePlatform:
    """The paper's §3.3 sensor node: DragonBall + 26 KJ + 10 Kbps link."""
    from .processors import DRAGONBALL
    from .radio import SENSOR_RADIO

    return HardwarePlatform(
        processor=DRAGONBALL, battery=Battery(26_000.0), radio=SENSOR_RADIO
    )


def pda_platform(engines: Optional[List] = None) -> HardwarePlatform:
    """A StrongARM PDA on 802.11b — the §3.2 WLAN scenario."""
    from .processors import STRONGARM_SA1100
    from .radio import WLAN_RADIO

    return HardwarePlatform(
        processor=STRONGARM_SA1100, battery=Battery(14_400.0),
        radio=WLAN_RADIO, engines=engines or [],
    )


def phone_platform(engines: Optional[List] = None) -> HardwarePlatform:
    """An ARM7 cell phone on GSM — the §3.2 handset scenario."""
    return HardwarePlatform(
        processor=ARM7, battery=Battery(10_800.0),
        radio=GSM_RADIO, engines=engines or [],
    )
