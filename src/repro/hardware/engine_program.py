"""A microprogrammable security protocol engine (MOSES-style, §4.2.3).

"Programmable security protocol engines, such as the MOSES platform
developed at NEC [66-68], combine the benefits of flexibility and
efficiency for security processing."  The cost-level model in
:mod:`repro.hardware.protocol_engine` captures the efficiency half;
this module captures the *programmability* half with a small but real
microcode VM:

* an instruction set covering the per-packet work of the era's
  protocols — header build/parse, padding, CBC/stream cipher passes,
  (truncated) HMAC, replay checks;
* :class:`Microprogram`\\ s for ESP and WEP encapsulation/decapsulation
  whose outputs are **bit-exact** against the host protocol stacks
  (:mod:`repro.protocols.ipsec`, :mod:`repro.protocols.wep`) — the
  interop tests prove the engine really implements the protocols;
* a per-instruction cycle/energy table, so every program run yields
  engine time and energy alongside its output;
* field reprogrammability: when a *new* protocol standard arrives
  (the §3.1 evolution problem), a new program is loaded at run time —
  no silicon change — which the flexibility bench demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..crypto.bitops import constant_time_compare
from ..crypto.crc import crc32_bytes
from ..crypto.hmac import hmac
from ..crypto.modes import CBC
from ..crypto.padding import esp_pad, esp_unpad
from ..crypto.rc4 import RC4
from ..crypto.sha1 import SHA1
from ..crypto.tdes import TripleDES


class EngineFault(Exception):
    """The engine rejected a program or a packet."""


@dataclass(frozen=True)
class Instruction:
    """One microcode operation with an optional immediate argument."""

    op: str
    arg: Optional[str] = None


@dataclass(frozen=True)
class Microprogram:
    """A named sequence of engine instructions."""

    name: str
    instructions: Tuple[Instruction, ...]
    description: str = ""


@dataclass
class EngineContext:
    """Per-packet state flowing through a program.

    ``packet`` is the wire buffer being built or consumed; ``payload``
    the cleartext side; ``fields`` holds parsed/provided protocol
    fields (spi, sequence, iv...); ``keys`` the session material.
    """

    payload: bytes = b""
    packet: bytes = b""
    fields: Dict[str, bytes] = field(default_factory=dict)
    keys: Dict[str, bytes] = field(default_factory=dict)


@dataclass(frozen=True)
class InstructionCost:
    """Engine cycles charged by one instruction."""

    fixed_cycles: float
    cycles_per_byte: float


# Per-instruction cost table: dedicated datapaths make the crypto ops
# roughly 20x cheaper per byte than host software.
COST_TABLE: Dict[str, InstructionCost] = {
    "hdr_build": InstructionCost(40, 0.0),
    "hdr_parse": InstructionCost(50, 0.0),
    "pad": InstructionCost(10, 0.5),
    "unpad": InstructionCost(12, 0.5),
    "cbc_encrypt": InstructionCost(60, 22.0),   # 3DES datapath
    "cbc_decrypt": InstructionCost(60, 22.0),
    "stream_xor": InstructionCost(30, 1.0),     # RC4 datapath
    "mac_append": InstructionCost(50, 4.0),     # SHA-1 datapath
    "mac_verify": InstructionCost(55, 4.0),
    "crc_append": InstructionCost(20, 1.0),
    "crc_verify": InstructionCost(22, 1.0),
    "seq_check": InstructionCost(25, 0.0),
    "emit": InstructionCost(5, 0.2),
}

AUTH_BYTES = 12  # HMAC-SHA1-96, matching the ESP stack


@dataclass
class ProgramRunReport:
    """Outcome of one program execution."""

    program: str
    output: bytes
    cycles: float
    time_s: float
    energy_mj: float


@dataclass
class ProgrammableProtocolEngine:
    """The microcoded engine: load programs, run packets.

    ``clock_mhz``/``active_power_mw`` size the datapath; defaults are
    period-plausible for a 2003 security engine macro.
    """

    clock_mhz: float = 150.0
    active_power_mw: float = 120.0
    programs: Dict[str, Microprogram] = field(default_factory=dict)
    instructions_executed: int = 0

    def load_program(self, program: Microprogram) -> None:
        """Field-upgrade: validate and install a program."""
        for instruction in program.instructions:
            if instruction.op not in COST_TABLE:
                raise EngineFault(
                    f"program {program.name!r} uses unknown opcode "
                    f"{instruction.op!r}"
                )
        self.programs[program.name] = program

    def run(self, program_name: str, context: EngineContext
            ) -> ProgramRunReport:
        """Execute a loaded program over a packet context."""
        if program_name not in self.programs:
            raise EngineFault(f"no program named {program_name!r} loaded")
        program = self.programs[program_name]
        cycles = 0.0
        for instruction in program.instructions:
            handler = _SEMANTICS[instruction.op]
            touched = handler(context, instruction.arg)
            cost = COST_TABLE[instruction.op]
            cycles += cost.fixed_cycles + cost.cycles_per_byte * touched
            self.instructions_executed += 1
        time_s = cycles / (self.clock_mhz * 1e6)
        energy_mj = self.active_power_mw * time_s
        output = context.packet if context.packet else context.payload
        return ProgramRunReport(
            program=program_name, output=output, cycles=cycles,
            time_s=time_s, energy_mj=energy_mj,
        )


# ---------------------------------------------------------------------------
# Instruction semantics.  Each handler mutates the context and returns
# the number of bytes it touched (the cost driver).
# ---------------------------------------------------------------------------


def _hdr_build(ctx: EngineContext, arg: Optional[str]) -> int:
    parts = [ctx.fields[name] for name in (arg or "").split(",") if name]
    ctx.packet = b"".join(parts) + ctx.packet
    return sum(len(p) for p in parts)


def _hdr_parse(ctx: EngineContext, arg: Optional[str]) -> int:
    consumed = 0
    for item in (arg or "").split(","):
        name, width = item.split(":")
        width = int(width)
        ctx.fields[name] = ctx.packet[:width]
        ctx.packet = ctx.packet[width:]
        consumed += width
    return consumed


def _pad(ctx: EngineContext, arg: Optional[str]) -> int:
    block = int(arg or 8)
    ctx.payload = esp_pad(ctx.payload, block)
    return len(ctx.payload)


def _unpad(ctx: EngineContext, arg: Optional[str]) -> int:
    touched = len(ctx.payload)
    ctx.payload = esp_unpad(ctx.payload)
    return touched


def _cbc_encrypt(ctx: EngineContext, arg: Optional[str]) -> int:
    cipher = TripleDES(ctx.keys["cipher_key"])
    iv = ctx.fields["iv"]
    ctx.payload = CBC(cipher, iv).encrypt(ctx.payload, pad=False)
    return len(ctx.payload)


def _cbc_decrypt(ctx: EngineContext, arg: Optional[str]) -> int:
    cipher = TripleDES(ctx.keys["cipher_key"])
    iv = ctx.fields["iv"]
    ctx.payload = CBC(cipher, iv).decrypt(ctx.payload, pad=False)
    return len(ctx.payload)


def _stream_xor(ctx: EngineContext, arg: Optional[str]) -> int:
    key = ctx.fields.get("iv", b"") + ctx.keys["cipher_key"]
    ctx.payload = RC4(key).process(ctx.payload)
    return len(ctx.payload)


def _mac_append(ctx: EngineContext, arg: Optional[str]) -> int:
    data = ctx.packet + ctx.fields.get("iv", b"") + ctx.payload \
        if arg == "header+iv+payload" else ctx.payload
    tag = hmac(ctx.keys["mac_key"], data, SHA1)[:AUTH_BYTES]
    ctx.fields["auth"] = tag
    return len(data)


def _mac_verify(ctx: EngineContext, arg: Optional[str]) -> int:
    data = ctx.packet + ctx.fields.get("iv", b"") + ctx.payload \
        if arg == "header+iv+payload" else ctx.payload
    expected = hmac(ctx.keys["mac_key"], data, SHA1)[:AUTH_BYTES]
    if not constant_time_compare(expected, ctx.fields["auth"]):
        raise EngineFault("engine MAC verification failed")
    return len(data)


def _crc_append(ctx: EngineContext, arg: Optional[str]) -> int:
    ctx.payload = ctx.payload + crc32_bytes(ctx.payload)
    return len(ctx.payload)


def _crc_verify(ctx: EngineContext, arg: Optional[str]) -> int:
    body, icv = ctx.payload[:-4], ctx.payload[-4:]
    if crc32_bytes(body) != icv:
        raise EngineFault("engine ICV verification failed")
    ctx.payload = body
    return len(body)


def _seq_check(ctx: EngineContext, arg: Optional[str]) -> int:
    sequence = int.from_bytes(ctx.fields["sequence"], "big")
    highest = int.from_bytes(ctx.fields.get("highest_seen", b"\x00"), "big")
    if sequence <= highest:
        raise EngineFault(f"engine replay check: sequence {sequence} stale")
    ctx.fields["highest_seen"] = ctx.fields["sequence"]
    return 0


def _emit(ctx: EngineContext, arg: Optional[str]) -> int:
    if arg == "payload+auth":
        ctx.packet = ctx.packet + ctx.fields["iv"] + ctx.payload
        tag = ctx.fields.get("auth", b"")
        ctx.packet += tag
        return len(ctx.packet)
    if arg == "iv+payload":
        ctx.packet = ctx.packet + ctx.payload
        return len(ctx.packet)
    ctx.packet = ctx.packet + ctx.payload
    return len(ctx.packet)


_SEMANTICS: Dict[str, Callable[[EngineContext, Optional[str]], int]] = {
    "hdr_build": _hdr_build,
    "hdr_parse": _hdr_parse,
    "pad": _pad,
    "unpad": _unpad,
    "cbc_encrypt": _cbc_encrypt,
    "cbc_decrypt": _cbc_decrypt,
    "stream_xor": _stream_xor,
    "mac_append": _mac_append,
    "mac_verify": _mac_verify,
    "crc_append": _crc_append,
    "crc_verify": _crc_verify,
    "seq_check": _seq_check,
    "emit": _emit,
}


# ---------------------------------------------------------------------------
# Shipped program library
# ---------------------------------------------------------------------------

ESP_ENCAP = Microprogram(
    name="esp-encap",
    description="RFC 2406-style ESP: pad | CBC | SPI/seq header | HMAC-96",
    instructions=(
        Instruction("pad", "8"),
        Instruction("cbc_encrypt"),
        Instruction("hdr_build", "spi,sequence"),
        Instruction("mac_append", "header+iv+payload"),
        Instruction("emit", "payload+auth"),
    ),
)

ESP_DECAP = Microprogram(
    name="esp-decap",
    description="ESP receive: parse | replay | verify | decrypt | unpad",
    instructions=(
        Instruction("hdr_parse", "spi:4,sequence:4,iv:8"),
        Instruction("seq_check"),
        # Fused verify+decrypt+unpad tail (real engines pipeline it).
        Instruction("hdr_parse_tail"),
    ),
)

WEP_ENCAP = Microprogram(
    name="wep-encap",
    description="802.11 WEP: CRC ICV | RC4(IV||key) | IV header",
    instructions=(
        Instruction("crc_append"),
        Instruction("stream_xor"),
        Instruction("hdr_build", "iv,key_id"),
        Instruction("emit", "iv+payload"),
    ),
)

WEP_DECAP = Microprogram(
    name="wep-decap",
    description="WEP receive: parse IV | RC4 | CRC verify",
    instructions=(
        Instruction("hdr_parse", "iv:3,key_id:1"),
        # Fused RC4 + ICV-check tail.
        Instruction("swap_packet_payload"),
    ),
)


def _hdr_parse_tail(ctx: EngineContext, arg: Optional[str]) -> int:
    # Split trailing auth tag, verify, then decrypt + unpad: a fused op
    # (real engines pipeline these stages).
    body, tag = ctx.packet, None
    ciphertext, tag = body[:-AUTH_BYTES], body[-AUTH_BYTES:]
    header = ctx.fields["spi"] + ctx.fields["sequence"]
    expected = hmac(
        ctx.keys["mac_key"], header + ctx.fields["iv"] + ciphertext, SHA1
    )[:AUTH_BYTES]
    if not constant_time_compare(expected, tag):
        raise EngineFault("engine MAC verification failed")
    plaintext = CBC(
        TripleDES(ctx.keys["cipher_key"]), ctx.fields["iv"]
    ).decrypt(ciphertext, pad=False)
    ctx.payload = esp_unpad(plaintext)
    ctx.packet = b""
    return len(body)


def _swap_packet_payload(ctx: EngineContext, arg: Optional[str]) -> int:
    # WEP receive tail: RC4 then CRC verify over the remaining packet.
    key = ctx.fields["iv"] + ctx.keys["cipher_key"]
    body = RC4(key).process(ctx.packet)
    plaintext, icv = body[:-4], body[-4:]
    if crc32_bytes(plaintext) != icv:
        raise EngineFault("engine ICV verification failed")
    ctx.payload = plaintext
    ctx.packet = b""
    return len(body)


_SEMANTICS["hdr_parse_tail"] = _hdr_parse_tail
_SEMANTICS["swap_packet_payload"] = _swap_packet_payload
COST_TABLE["hdr_parse_tail"] = InstructionCost(120, 26.0)
COST_TABLE["swap_packet_payload"] = InstructionCost(60, 2.0)


def stock_engine() -> ProgrammableProtocolEngine:
    """An engine shipped with the 2003 protocol program library."""
    engine = ProgrammableProtocolEngine()
    for program in (ESP_ENCAP, ESP_DECAP, WEP_ENCAP, WEP_DECAP):
        engine.load_program(program)
    return engine
