"""Radio / bearer models: data rates and link energy.

The paper frames its sweeps in terms of bearer technologies — GSM/GPRS
cellular, 802.11 WLAN ("current and emerging data rates ... 2–60
Mbps"), Bluetooth PAN, and the 10 Kbps sensor link of [36].  A
:class:`Radio` couples a data rate with per-KB link energy so the
appliance simulation can charge communication costs consistently with
Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Radio:
    """A wireless interface model.

    ``tx_mj_per_kb`` / ``rx_mj_per_kb`` default to the paper's measured
    sensor-node values; higher-rate radios scale energy-per-byte down
    (faster radios are more efficient per bit, roughly linearly in the
    era's hardware).
    """

    name: str
    data_rate_kbps: float
    tx_mj_per_kb: float
    rx_mj_per_kb: float

    def tx_time_s(self, kilobytes: float) -> float:
        """Seconds to transmit a payload at the link rate."""
        return kilobytes * 8.0 / self.data_rate_kbps

    def tx_energy_mj(self, kilobytes: float) -> float:
        """Transmit energy for a payload."""
        return self.tx_mj_per_kb * kilobytes

    def rx_energy_mj(self, kilobytes: float) -> float:
        """Receive energy for a payload."""
        return self.rx_mj_per_kb * kilobytes


SENSOR_RADIO = Radio("Sensor link (10 Kbps)", 10.0, 21.5, 14.3)
GSM_RADIO = Radio("GSM/GPRS (40 Kbps)", 40.0, 12.0, 8.0)
BLUETOOTH_RADIO = Radio("Bluetooth (723 Kbps)", 723.0, 2.0, 1.4)
WLAN_RADIO = Radio("802.11b (11 Mbps)", 11_000.0, 0.6, 0.4)
WLAN_A_RADIO = Radio("802.11a (54 Mbps)", 54_000.0, 0.35, 0.25)

BEARERS: Dict[str, Radio] = {
    radio.name: radio
    for radio in (SENSOR_RADIO, GSM_RADIO, BLUETOOTH_RADIO, WLAN_RADIO, WLAN_A_RADIO)
}
