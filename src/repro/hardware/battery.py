"""Battery model: capacity ledger and the slow-growth trend of §3.3.

"There has only been a slow growth (5–8 % per year) in the battery
capacities" (paper ref. [37]) while security workload energy grows
with data rates — the *battery gap*.  :class:`Battery` is a simple
energy ledger used by the transaction simulations of Figure 4;
:func:`battery_capacity_trend` projects capacity under the paper's
growth band for the battery-gap bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..observability import probe


class BatteryEmpty(Exception):
    """Raised when a drain request exceeds the remaining charge.

    Carries the refused request so supervision logic
    (:mod:`repro.core.supervisor`) can decide what to degrade without
    re-querying the battery: ``requested_mj`` is what the caller asked
    for, ``remaining_mj`` what the (untouched) battery still holds.
    """

    def __init__(self, message: str, requested_mj: float = 0.0,
                 remaining_mj: float = 0.0) -> None:
        super().__init__(message)
        self.requested_mj = requested_mj
        self.remaining_mj = remaining_mj


@dataclass
class Battery:
    """An ideal energy reservoir measured in joules.

    The paper's sensor-node battery is 26 KJ; phone batteries of the
    era were ~2–4 Wh (7.2–14.4 KJ).  Self-discharge and rate-dependent
    capacity effects are out of scope (the paper's analysis is a pure
    energy ledger, and we match it).
    """

    capacity_j: float = 26_000.0
    remaining_j: float = field(default=-1.0)

    def __post_init__(self) -> None:
        if self.remaining_j < 0:
            self.remaining_j = self.capacity_j

    def drain_mj(self, millijoules: float) -> None:
        """Withdraw energy; raises :class:`BatteryEmpty` if insufficient.

        The drain is transactional: a refused request leaves the charge
        exactly as it was (the check precedes the withdrawal), and the
        exception carries the refused amounts, so brownout supervision
        can act on a consistent ledger.
        """
        if millijoules < 0:
            raise ValueError("cannot drain negative energy")
        joules = millijoules / 1000.0
        if joules > self.remaining_j:
            raise BatteryEmpty(
                f"requested {joules:.3f} J but only "
                f"{self.remaining_j:.3f} J remain",
                requested_mj=millijoules,
                remaining_mj=self.remaining_j * 1000.0,
            )
        self.remaining_j -= joules
        # Attribute only *successful* withdrawals: refused drains leave
        # the ledger untouched, so telemetry reconciles by construction.
        telemetry = probe.active
        if telemetry is not None:
            telemetry.add_energy_mj(millijoules, kind="battery")

    def can_supply_mj(self, millijoules: float) -> bool:
        """Whether the battery can supply the requested energy."""
        return self.remaining_j >= millijoules / 1000.0

    @property
    def fraction_remaining(self) -> float:
        """Remaining charge as a fraction of capacity."""
        return self.remaining_j / self.capacity_j

    def recharge(self) -> None:
        """Restore to full capacity."""
        self.remaining_j = self.capacity_j


def battery_capacity_trend(initial_j: float, years: int,
                           annual_growth: float) -> List[float]:
    """Project battery capacity year by year.

    ``annual_growth`` is a fraction (0.05–0.08 for the paper's 5–8 %
    band).  Returns ``years + 1`` values, index 0 = initial capacity.
    """
    if not 0.0 <= annual_growth <= 1.0:
        raise ValueError("annual growth must be a fraction in [0, 1]")
    return [initial_j * (1.0 + annual_growth) ** year for year in range(years + 1)]
