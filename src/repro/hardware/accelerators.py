"""Security processing architecture options (Section 4.2).

The paper surveys a ladder of architectures trading flexibility for
efficiency:

1. **Software** on the embedded CPU — fully flexible, slowest;
2. **ISA extensions** (SmartMIPS, SecurCore, permutation instructions
   [55], symmetric-key support [56]) — software with cheaper crypto
   inner loops;
3. **Crypto hardware accelerators** (Discretix CryptoCell, Safenet
   EmbeddedIP, OMAP1510's DSP) — fixed-function offload of named
   algorithms;
4. **Programmable security protocol engines** (NEC MOSES, Safenet
   IPSec packet engine) — offload the *whole* protocol including
   packet processing, while staying reprogrammable.

Every option exposes the same interface — ``execute(workload) ->
ExecutionReport`` — so the Figure 6 / T7 / T8 benches can rank them on
identical workloads.  Speedup and energy parameters are
order-of-magnitude values for early-2000s parts (documented per
class); the paper's argument is about the *shape* of the ladder, which
survives parameter perturbation (the ablation bench sweeps them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Union

from .processors import Processor
from .workloads import BulkWorkload, HandshakeWorkload, SessionWorkload

Workload = Union[BulkWorkload, HandshakeWorkload, SessionWorkload]


class UnsupportedWorkload(Exception):
    """The engine cannot execute (part of) the workload."""


@dataclass(frozen=True)
class ExecutionReport:
    """Outcome of running a workload on an architecture option."""

    engine: str
    time_s: float
    energy_mj: float
    host_instructions: float  # instructions still executed on the host CPU

    def throughput_mbps(self, kilobytes: float) -> float:
        """Achieved protected-data throughput for a bulk payload."""
        return kilobytes * 8.192 / 1000.0 / self.time_s if self.time_s else float("inf")


@dataclass
class SoftwareEngine:
    """Option 1: everything in software on the host processor."""

    processor: Processor
    name: str = "software"
    flexibility: float = 1.0  # can adopt any future algorithm via update

    def supports(self, workload: Workload) -> bool:
        """Software supports every workload."""
        return True

    def execute(self, workload: Workload) -> ExecutionReport:
        """Charge the full instruction count to the host CPU."""
        instructions = workload.total_instructions
        time_s = instructions / (self.processor.mips * 1e6)
        energy_mj = instructions * self.processor.energy_per_instruction_nj / 1e6
        return ExecutionReport(self.name, time_s, energy_mj, instructions)


@dataclass
class CryptoAccelerator:
    """Option 3: fixed-function cryptographic hardware.

    Handles only the algorithms in ``bulk_mbps`` /
    ``rsa_ops_per_s``; protocol processing stays on the host.  Energy
    is charged per byte (bulk) or per operation (RSA) at levels ~50x
    better than software on the host, typical of dedicated datapaths.
    """

    processor: Processor  # host, still runs protocol processing
    name: str = "crypto-accelerator"
    flexibility: float = 0.2  # fixed algorithm set
    bulk_mbps: Dict[str, float] = field(default_factory=lambda: {
        "DES": 120.0, "3DES": 60.0, "AES": 200.0,
        "SHA1": 250.0, "MD5": 300.0, "RC4": 150.0, "NULL": float("inf"),
    })
    bulk_uj_per_byte: float = 0.02
    rsa_ops_per_s: float = 200.0       # 1024-bit private ops (no CRT)
    rsa_mj_per_op: float = 1.0
    setup_instructions: float = 500.0  # host driver cost per request

    def supports(self, workload: Workload) -> bool:
        """True if every algorithm in the workload is in hardware."""
        if isinstance(workload, BulkWorkload):
            return workload.cipher in self.bulk_mbps and workload.mac in self.bulk_mbps
        if isinstance(workload, HandshakeWorkload):
            return True
        return self.supports(workload.handshake) and self.supports(workload.bulk)

    def _bulk(self, bulk: BulkWorkload):
        if not self.supports(bulk):
            raise UnsupportedWorkload(
                f"{self.name} lacks hardware for {bulk.cipher}/{bulk.mac}"
            )
        megabits = bulk.kilobytes * 8.192 / 1000.0
        time_s = megabits / self.bulk_mbps[bulk.cipher]
        if self.bulk_mbps[bulk.mac] != float("inf"):
            time_s += megabits / self.bulk_mbps[bulk.mac]
        energy_mj = self.bulk_uj_per_byte * bulk.kilobytes * 1024.0 / 1000.0
        host_instr = bulk.protocol_instructions + self.setup_instructions
        return time_s, energy_mj, host_instr

    def _handshake(self, hs: HandshakeWorkload):
        # Scale the 1024-bit op rating by the cubic cost law.
        scale = (hs.rsa_bits / 1024.0) ** 3 / (4.0 if hs.use_crt else 1.0)
        time_s = hs.count * scale / self.rsa_ops_per_s
        energy_mj = hs.count * self.rsa_mj_per_op * scale
        host_instr = hs.count * (
            self.setup_instructions + 1e6  # protocol/state machine stays on host
        )
        return time_s, energy_mj, host_instr

    def execute(self, workload: Workload) -> ExecutionReport:
        """Split the workload between hardware and host driver code."""
        if isinstance(workload, BulkWorkload):
            hw_time, hw_energy, host_instr = self._bulk(workload)
        elif isinstance(workload, HandshakeWorkload):
            hw_time, hw_energy, host_instr = self._handshake(workload)
        else:
            t1, e1, h1 = self._handshake(workload.handshake)
            t2, e2, h2 = self._bulk(workload.bulk)
            hw_time, hw_energy, host_instr = t1 + t2, e1 + e2, h1 + h2
        host_time = host_instr / (self.processor.mips * 1e6)
        host_energy = host_instr * self.processor.energy_per_instruction_nj / 1e6
        return ExecutionReport(
            self.name, hw_time + host_time, hw_energy + host_energy, host_instr
        )


def architecture_ladder(processor: Processor) -> list:
    """The four §4.2 options on a common host, efficiency ascending."""
    from .isa_extensions import ISAExtensionEngine
    from .protocol_engine import ProtocolEngine

    return [
        SoftwareEngine(processor),
        ISAExtensionEngine(processor),
        CryptoAccelerator(processor),
        ProtocolEngine(processor),
    ]
