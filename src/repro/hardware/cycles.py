"""Instruction-cost model for security workloads.

This is the quantitative engine behind Figure 3 ("the wireless
security processing gap") and the Section 3.2 text claims.  Costs are
expressed in *instructions* so that demand in MIPS falls straight out
of ``instructions x rate``; the model is calibrated to the paper's two
anchors:

* **Bulk anchor** — "3DES for encryption/decryption and SHA for
  message authentication at 10 Mbps is around 651.3 MIPS" [12].
  10 Mbps = 1.25 MB/s, so the combined per-byte cost must be
  651.3 / 1.25 = **521.04 instructions/byte**.  We split this as
  3DES = 450.00 (3 x 150 for DES, consistent with optimised C on a
  32-bit core) and SHA-1 = 71.04.
* **Handshake anchor** — "a 235 MIPS embedded processor can be used to
  establish connection latencies at 0.5 sec or 1 sec, but not at
  0.1 sec" [12].  Our SSL-style handshake model (one non-CRT RSA-1024
  private operation + three public operations + protocol processing)
  costs ~57.6 M instructions, i.e. 576 MIPS at 0.1 s (infeasible on
  the SA-1100) but 115 MIPS at 0.5 s (feasible).

Per-algorithm constants for the other ciphers are order-of-magnitude
values for optimised C on a 32-bit embedded core, documented inline.
They only need to be *relatively* sensible: every paper-anchored
number above is exact by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

# -- symmetric/hash bulk costs (instructions per byte) ------------------------

DES_IPB = 150.0          # bit-permutation heavy; Section 4.2.1's pain point
TDES_IPB = 3 * DES_IPB   # EDE = three DES passes
SHA1_IPB = 521.04 - TDES_IPB  # calibration residual = 71.04
MD5_IPB = 55.0           # cheaper than SHA-1 (fewer rounds, simpler schedule)
AES_IPB = 100.0          # table-driven AES on 32-bit
RC4_IPB = 12.0           # byte-swap PRGA, famously cheap
RC2_IPB = 120.0          # 16-bit MIX/MASH rounds

# The lightweight stream family (Pourghasem et al., PAPERS.md):
# bit-serial designs whose software cost is the clocking loop.  A5/1
# pays the majority-clock branch per bit; Grain batches x16 and
# Trivium x64 per word, so the per-byte cost falls in that order.
A51_IPB = 18.0           # 8 majority-clocked LFSR steps per byte
GRAIN_IPB = 14.0         # 16-step batched NFSR/LFSR word updates
TRIVIUM_IPB = 9.0        # 64-step batched cascade, cheapest of all

BULK_IPB: Dict[str, float] = {
    "DES": DES_IPB,
    "3DES": TDES_IPB,
    "AES": AES_IPB,
    "RC4": RC4_IPB,
    "RC2": RC2_IPB,
    "A51": A51_IPB,
    "GRAIN": GRAIN_IPB,
    "TRIVIUM": TRIVIUM_IPB,
    "SHA1": SHA1_IPB,
    "MD5": MD5_IPB,
    "NULL": 0.0,
}

# -- public-key costs ---------------------------------------------------------

MODMULT_INSTR_COEFF = 35.0  # instructions per (bits/32)^2 modular multiply


def modmult_instructions(bits: int) -> float:
    """Instructions for one modular multiplication at a given size."""
    words = bits / 32.0
    return MODMULT_INSTR_COEFF * words * words


def rsa_private_instructions(bits: int, use_crt: bool = False) -> float:
    """RSA private operation: ~1.5*bits modular multiplies (square-and-
    multiply with ~50% multiply density); CRT quarters the cost."""
    base = 1.5 * bits * modmult_instructions(bits)
    return base / 4.0 if use_crt else base


def rsa_public_instructions(bits: int, e: int = 65537) -> float:
    """RSA public operation: one multiply per exponent bit + one per set
    bit (e = 65537 -> 17 multiplies)."""
    mults = e.bit_length() + bin(e).count("1") - 1
    return mults * modmult_instructions(bits)


def dh_instructions(bits: int) -> float:
    """One DH exponentiation (full-size exponent)."""
    return 1.5 * bits * modmult_instructions(bits)


# -- protocol-level costs -----------------------------------------------------

HANDSHAKE_PROTOCOL_OVERHEAD_MI = 1.0   # parsing, cert decode, state machine
RECORD_OVERHEAD_IPB = 2.0              # per-byte framing/copy cost
PACKET_OVERHEAD_INSTR = 4000.0         # per-packet header processing


@dataclass(frozen=True)
class HandshakeCost:
    """Cost breakdown of an SSL/WTLS-style connection setup."""

    rsa_bits: int
    private_mi: float
    public_mi: float
    protocol_mi: float

    @property
    def total_mi(self) -> float:
        """Total handshake cost in millions of instructions."""
        return self.private_mi + self.public_mi + self.protocol_mi


def handshake_cost(rsa_bits: int = 1024, use_crt: bool = False,
                   mutual_auth: bool = True,
                   resumed: bool = False) -> HandshakeCost:
    """Cost of one RSA-based handshake (client side with client auth).

    The default (non-CRT, mutual auth) reproduces the paper's
    SA-1100 feasibility claim; enabling CRT shows the 4x speedup that
    Section 3.4 warns invites the Bellcore fault attack; ``resumed``
    prices the abbreviated (session-resumption) handshake, which skips
    every public-key operation and keeps only the protocol machinery —
    the protocol-level mitigation of the §3.2 gap.
    """
    if resumed:
        return HandshakeCost(
            rsa_bits=rsa_bits, private_mi=0.0, public_mi=0.0,
            protocol_mi=HANDSHAKE_PROTOCOL_OVERHEAD_MI,
        )
    private_ops = 1 if mutual_auth else 0
    public_ops = 3 if mutual_auth else 2  # verify cert(s) + encrypt premaster
    return HandshakeCost(
        rsa_bits=rsa_bits,
        private_mi=private_ops * rsa_private_instructions(rsa_bits, use_crt) / 1e6,
        public_mi=public_ops * rsa_public_instructions(rsa_bits) / 1e6,
        protocol_mi=HANDSHAKE_PROTOCOL_OVERHEAD_MI,
    )


def bulk_ipb(cipher: str, mac: str, record_overhead: bool = True) -> float:
    """Combined instructions/byte for bulk protection with cipher + MAC."""
    total = BULK_IPB[cipher] + BULK_IPB[mac]
    if record_overhead:
        total += RECORD_OVERHEAD_IPB
    return total


def bulk_mips_demand(data_rate_mbps: float, cipher: str = "3DES",
                     mac: str = "SHA1", record_overhead: bool = False) -> float:
    """MIPS needed to protect a stream at ``data_rate_mbps``.

    With the default (no record overhead, matching how [12] reports the
    bare crypto number): 10 Mbps of 3DES+SHA1 -> 651.3 MIPS.
    """
    bytes_per_second = data_rate_mbps * 1e6 / 8.0
    return bulk_ipb(cipher, mac, record_overhead) * bytes_per_second / 1e6


def handshake_mips_demand(latency_s: float, rsa_bits: int = 1024,
                          use_crt: bool = False) -> float:
    """MIPS needed to complete a handshake within ``latency_s`` seconds."""
    if latency_s <= 0:
        raise ValueError("connection latency must be positive")
    return handshake_cost(rsa_bits, use_crt).total_mi / latency_s


def total_mips_demand(data_rate_mbps: float, latency_s: float,
                      cipher: str = "3DES", mac: str = "SHA1",
                      rsa_bits: int = 1024, use_crt: bool = False) -> float:
    """The Figure 3 demand surface: handshake + bulk protection.

    One connection setup must finish within ``latency_s`` while the
    link simultaneously sustains ``data_rate_mbps`` of protected data.
    """
    return (
        bulk_mips_demand(data_rate_mbps, cipher, mac)
        + handshake_mips_demand(latency_s, rsa_bits, use_crt)
    )
