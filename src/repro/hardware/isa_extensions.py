"""ISA extensions for security processing (Section 4.2.1).

SmartMIPS [57], ARM SecurCore [58], subword-permutation instructions
[53, 55] and symmetric-key architectural support [56] cut the
instruction counts of crypto inner loops while keeping the workload in
software.  :class:`ISAExtensionEngine` models this as per-algorithm
instruction-count divisors on the host processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .accelerators import ExecutionReport, Workload
from .processors import Processor
from .workloads import BulkWorkload, HandshakeWorkload


@dataclass
class ISAExtensionEngine:
    """Option 2: host CPU with security ISA extensions.

    ``speedups`` maps algorithm names to the factor by which the
    extension cuts the instruction count (permutation instructions
    help DES most — Lee et al. [55] report ~2-4x on permutation-bound
    kernels; modular-arithmetic support helps RSA ~2x, per SmartMIPS
    marketing of the era).
    """

    processor: Processor
    name: str = "isa-extensions"
    flexibility: float = 0.9  # still software, minor ISA lock-in
    speedups: Dict[str, float] = field(default_factory=lambda: {
        "DES": 2.5, "3DES": 2.5, "RC2": 1.5, "RC4": 1.2,
        "AES": 1.8, "SHA1": 1.4, "MD5": 1.4, "NULL": 1.0, "RSA": 2.0,
    })

    def supports(self, workload: Workload) -> bool:
        """Extensions accelerate everything software can run."""
        return True

    def _bulk_instructions(self, bulk: BulkWorkload) -> float:
        payload_bytes = bulk.kilobytes * 1024.0
        from .cycles import BULK_IPB  # local import avoids cycle at module load
        crypto = (
            BULK_IPB[bulk.cipher] / self.speedups.get(bulk.cipher, 1.0)
            + BULK_IPB[bulk.mac] / self.speedups.get(bulk.mac, 1.0)
        ) * payload_bytes
        return crypto + bulk.protocol_instructions

    def _handshake_instructions(self, hs: HandshakeWorkload) -> float:
        return hs.total_instructions / self.speedups.get("RSA", 1.0)

    def execute(self, workload: Workload) -> ExecutionReport:
        """Charge reduced instruction counts to the host CPU."""
        if isinstance(workload, BulkWorkload):
            instructions = self._bulk_instructions(workload)
        elif isinstance(workload, HandshakeWorkload):
            instructions = self._handshake_instructions(workload)
        else:
            instructions = self._handshake_instructions(
                workload.handshake
            ) + self._bulk_instructions(workload.bulk)
        time_s = instructions / (self.processor.mips * 1e6)
        energy_mj = instructions * self.processor.energy_per_instruction_nj / 1e6
        return ExecutionReport(self.name, time_s, energy_mj, instructions)
