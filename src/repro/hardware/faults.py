"""Seeded fault injection for the appliance's hardware domain.

The protocol-side harness (:mod:`repro.protocols.faults`) made the
*link* hostile; this module makes the *device* hostile, per the paper's
§3.3–§3.4 operating conditions: crypto engines die (transiently after a
glitch, or permanently from electromigration/latch-up), battery packs
sag far below their ledger value mid-mission, and fault-injection
campaigns deliver clock/voltage excursions that may or may not clear
the tamper mesh's sensor envelope.

Everything is driven by a virtual-time schedule and/or a
:class:`~repro.crypto.rng.DeterministicDRBG`, so — like the link-fault
harness — **every hardware failure schedule is an exact function of its
seed** and the supervisor's responses can be tested byte-for-byte.

The consumer is :class:`repro.core.supervisor.ApplianceSupervisor`,
which polls a :class:`FaultPlan` as virtual time advances and converts
each failure into a *measured degraded mode* instead of an uncaught
exception.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from ..crypto.rng import DeterministicDRBG
from .battery import Battery

if TYPE_CHECKING:  # deferred: hardware must stay importable before core
    from ..core.tamper_response import EnvironmentEvent


class AcceleratorFailure(Exception):
    """A hardware crypto engine died mid-operation.

    Distinct from :class:`~repro.hardware.accelerators.UnsupportedWorkload`
    (a capability gap known before dispatch): this is the engine
    *breaking* — the supervisor reacts to both by walking down the
    architecture ladder, but only this one marks the engine dead.
    """


@dataclass
class HardwareFaultLog:
    """Ledger of every hardware fault the plan injected."""

    entries: List[Tuple[float, str, str]] = field(default_factory=list)

    def record(self, time_s: float, kind: str, detail: str) -> None:
        """Append one (virtual time, kind, detail) row."""
        self.entries.append((time_s, kind, detail))

    def kinds(self) -> List[str]:
        """The kinds injected, in order."""
        return [kind for _, kind, _ in self.entries]


class _Clock:
    """Minimal clock protocol: anything with a ``now`` float attribute."""

    now: float = 0.0


class FlakyEngine:
    """Wraps any §4.2 ladder engine with a failure process.

    Two composable failure modes:

    * a **scheduled outage**: from ``fail_at_s`` (until ``recover_at_s``
      when given, else forever) every ``execute`` raises
      :class:`AcceleratorFailure` — the permanent-death / long-brownout
      case;
    * a **seeded transient** process: each ``execute`` independently
      fails with probability ``transient_rate`` — the glitch-induced
      case.

    ``supports`` still answers from the wrapped engine: a real driver
    only discovers a dead datapath when the operation faults, which is
    exactly the condition the supervisor's ladder walk must handle.
    """

    def __init__(self, inner, clock, *, fail_at_s: Optional[float] = None,
                 recover_at_s: Optional[float] = None,
                 transient_rate: float = 0.0, seed: int = 0,
                 log: Optional[HardwareFaultLog] = None) -> None:
        if not 0.0 <= transient_rate <= 1.0:
            raise ValueError("transient_rate must be a probability")
        self.inner = inner
        self.clock = clock
        self.fail_at_s = fail_at_s
        self.recover_at_s = recover_at_s
        self.transient_rate = transient_rate
        self.log = log
        self.failures = 0
        self.transient_failures = 0
        self._drbg = DeterministicDRBG(("flaky-engine", seed).__repr__())

    @property
    def name(self) -> str:
        """Engine name, marked as fault-wrapped."""
        return f"flaky({self.inner.name})"

    @property
    def flexibility(self) -> float:
        """Delegates to the wrapped engine."""
        return self.inner.flexibility

    def in_outage(self, now: Optional[float] = None) -> bool:
        """Whether the scheduled outage window covers ``now``."""
        if self.fail_at_s is None:
            return False
        now = self.clock.now if now is None else now
        if now < self.fail_at_s:
            return False
        return self.recover_at_s is None or now < self.recover_at_s

    def supports(self, workload) -> bool:
        """Capability check (failure only manifests at execution)."""
        return self.inner.supports(workload)

    def execute(self, workload):
        """Run the workload, unless the failure process strikes first."""
        now = self.clock.now
        if self.in_outage(now):
            self.failures += 1
            if self.log is not None:
                self.log.record(now, "accelerator-outage", self.name)
            raise AcceleratorFailure(
                f"{self.name}: scheduled outage at t={now:.3f}s")
        if self.transient_rate > 0.0 and \
                self._drbg.random() < self.transient_rate:
            self.failures += 1
            self.transient_failures += 1
            if self.log is not None:
                self.log.record(now, "accelerator-transient", self.name)
            raise AcceleratorFailure(
                f"{self.name}: transient fault at t={now:.3f}s")
        return self.inner.execute(workload)


@dataclass
class BatteryBrownout:
    """A scheduled charge collapse (§3.3's battery gap, weaponised).

    At ``at_s`` virtual seconds the pack sags to ``to_fraction`` of
    capacity — modelling cell aging, cold, or a parasitic drain the
    energy ledger never saw.  Idempotent: fires once, and never *adds*
    charge (a battery already below the target is left alone).
    """

    battery: Battery
    at_s: float
    to_fraction: float = 0.05
    applied: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.to_fraction <= 1.0:
            raise ValueError("to_fraction must be in [0, 1]")

    def poll(self, now: float,
             log: Optional[HardwareFaultLog] = None) -> bool:
        """Apply the sag if due; returns True the one time it fires."""
        if self.applied or now < self.at_s:
            return False
        target_j = self.battery.capacity_j * self.to_fraction
        if self.battery.remaining_j > target_j:
            self.battery.remaining_j = target_j
        self.applied = True
        if log is not None:
            log.record(now, "battery-brownout",
                       f"sagged to {self.to_fraction:.0%} of capacity")
        return True


@dataclass(frozen=True)
class ScheduledGlitch:
    """One environmental excursion due at a virtual time."""

    at_s: float
    event: EnvironmentEvent


@dataclass
class GlitchCampaign:
    """A seeded stream of clock/voltage excursions (§3.4 fault attacks).

    ``seeded`` draws a campaign whose events are each *sub-threshold*
    (inside the tamper mesh's sensor envelope — the dangerous Bellcore
    regime) with probability ``1 - p_super`` and super-threshold (the
    mesh trips, keys zeroise) otherwise.  Thresholds mirror the default
    sensor suite of :mod:`repro.core.tamper_response`.
    """

    glitches: List[ScheduledGlitch] = field(default_factory=list)
    delivered: int = 0

    @classmethod
    def seeded(cls, seed: int = 0, count: int = 8, start_s: float = 1.0,
               period_s: float = 1.0,
               p_super: float = 0.25) -> "GlitchCampaign":
        """Draw a deterministic campaign from the seed."""
        from ..core.tamper_response import EnvironmentEvent

        if not 0.0 <= p_super <= 1.0:
            raise ValueError("p_super must be a probability")
        drbg = DeterministicDRBG(("glitch-campaign", seed).__repr__())
        thresholds = {"clock": 0.5, "voltage": 0.3}
        glitches = []
        for index in range(count):
            kind = "clock" if drbg.random() < 0.5 else "voltage"
            threshold = thresholds[kind]
            if drbg.random() < p_super:
                magnitude = threshold * (1.2 + 1.8 * drbg.random())
            else:
                magnitude = threshold * (0.2 + 0.7 * drbg.random())
            glitches.append(ScheduledGlitch(
                at_s=start_s + index * period_s,
                event=EnvironmentEvent(kind, round(magnitude, 6))))
        return cls(glitches=glitches)

    def due(self, now: float) -> List[EnvironmentEvent]:
        """Pop and return every event scheduled at or before ``now``."""
        ready = [g.event for g in self.glitches[self.delivered:]
                 if g.at_s <= now]
        self.delivered += len(ready)
        return ready


@dataclass
class FaultPlan:
    """Everything that will go wrong, on one virtual timeline.

    Aggregates brownouts and glitch campaigns behind a single
    ``poll(now)`` the supervisor calls as time advances; engine faults
    (:class:`FlakyEngine`) fire at their own call sites but share the
    plan's :class:`HardwareFaultLog`.
    """

    brownouts: List[BatteryBrownout] = field(default_factory=list)
    campaigns: List[GlitchCampaign] = field(default_factory=list)
    log: HardwareFaultLog = field(default_factory=HardwareFaultLog)

    def add_brownout(self, brownout: BatteryBrownout) -> "FaultPlan":
        """Schedule a battery sag."""
        self.brownouts.append(brownout)
        return self

    def add_campaign(self, campaign: GlitchCampaign) -> "FaultPlan":
        """Schedule a glitch campaign."""
        self.campaigns.append(campaign)
        return self

    def poll(self, now: float) -> List[EnvironmentEvent]:
        """Apply due brownouts; return due environmental events."""
        for brownout in self.brownouts:
            brownout.poll(now, log=self.log)
        events: List[EnvironmentEvent] = []
        for campaign in self.campaigns:
            for event in campaign.due(now):
                self.log.record(now, "glitch",
                                f"{event.kind} magnitude {event.magnitude}")
                events.append(event)
        return events


def wrap_engines(engines: Sequence, clock, *, fail_at_s: float,
                 recover_at_s: Optional[float] = None, seed: int = 0,
                 log: Optional[HardwareFaultLog] = None) -> List:
    """Wrap every hardware engine (software stays pristine) in a
    :class:`FlakyEngine` sharing one outage schedule — the 'the whole
    security coprocessor went away' scenario."""
    from .accelerators import SoftwareEngine

    wrapped = []
    for index, engine in enumerate(engines):
        if isinstance(engine, SoftwareEngine):
            wrapped.append(engine)
        else:
            wrapped.append(FlakyEngine(
                engine, clock, fail_at_s=fail_at_s,
                recover_at_s=recover_at_s, seed=seed + index, log=log))
    return wrapped
