"""Embedded processor catalog with the paper's published MIPS ratings.

Section 3.2 anchors the wireless security processing gap on four data
points: a 2.6 GHz Pentium 4 desktop at ~2890 MIPS, the Intel StrongARM
SA-1100 PDA processor at 235 MIPS (206 MHz), ARM7/ARM9 cell-phone CPUs
at 15–20 MIPS (30–40 MHz), and the Motorola 68EC000 DragonBall at
~2.7 MIPS.  These are the "supply planes" that Figure 3 slices through
the demand surface.

Power figures are not given by the paper; we use order-of-magnitude
public datasheet values (documented per entry) because the energy
model only needs them for *relative* comparisons — the absolute
battery-life numbers of Figure 4 come from the paper's own measured
mJ/KB constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class Processor:
    """An embedded (or desktop) processor model.

    Attributes
    ----------
    name:
        Marketing name as the paper cites it.
    mips:
        Sustained million-instructions-per-second rating.
    clock_mhz:
        Nominal clock.
    active_power_mw:
        Power while executing (order-of-magnitude datasheet value).
    idle_power_mw:
        Power while idle/clock-gated.
    wordsize_bits:
        Native word size — bit-permutation costs scale with this
        (Section 4.2.1's word-oriented-CPU argument).
    klass:
        ``desktop``, ``pda``, ``phone`` or ``sensor``.
    """

    name: str
    mips: float
    clock_mhz: float
    active_power_mw: float
    idle_power_mw: float
    wordsize_bits: int
    klass: str

    @property
    def energy_per_instruction_nj(self) -> float:
        """Average energy per instruction in nanojoules."""
        return self.active_power_mw / self.mips  # mW / MIPS == nJ/instr

    def seconds_for(self, million_instructions: float) -> float:
        """Wall-clock seconds to execute a workload of given size."""
        return million_instructions / self.mips

    def energy_for_mj(self, million_instructions: float) -> float:
        """Energy in millijoules to execute a workload of given size."""
        return million_instructions * self.energy_per_instruction_nj / 1000.0


PENTIUM4 = Processor(
    name="Pentium 4 (2.6 GHz)", mips=2890.0, clock_mhz=2600.0,
    active_power_mw=60000.0, idle_power_mw=8000.0, wordsize_bits=32,
    klass="desktop",
)

STRONGARM_SA1100 = Processor(
    name="StrongARM SA-1100 (206 MHz)", mips=235.0, clock_mhz=206.0,
    active_power_mw=400.0, idle_power_mw=50.0, wordsize_bits=32,
    klass="pda",
)

ARM7 = Processor(
    name="ARM7 (36 MHz)", mips=17.5, clock_mhz=36.0,
    active_power_mw=45.0, idle_power_mw=5.0, wordsize_bits=32,
    klass="phone",
)

ARM9 = Processor(
    name="ARM9 (40 MHz)", mips=20.0, clock_mhz=40.0,
    active_power_mw=60.0, idle_power_mw=6.0, wordsize_bits=32,
    klass="phone",
)

DRAGONBALL = Processor(
    name="Motorola 68EC000 DragonBall", mips=2.7, clock_mhz=16.6,
    active_power_mw=45.0, idle_power_mw=2.0, wordsize_bits=16,
    klass="sensor",
)

CATALOG: Dict[str, Processor] = {
    proc.name: proc
    for proc in (PENTIUM4, STRONGARM_SA1100, ARM7, ARM9, DRAGONBALL)
}


def by_class(klass: str) -> List[Processor]:
    """All catalogued processors of a device class."""
    return [p for p in CATALOG.values() if p.klass == klass]


def embedded_catalog() -> List[Processor]:
    """The embedded (non-desktop) processors, weakest first."""
    return sorted(
        (p for p in CATALOG.values() if p.klass != "desktop"),
        key=lambda p: p.mips,
    )
