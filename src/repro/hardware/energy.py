"""Energy model for security processing — the engine behind Figure 4.

Section 3.3 works from the NAI Labs sensor-node measurements (paper
ref. [36]): on a DragonBall MC68328 node at 10 Kbps, transmitting
costs 21.5 mJ/KB, receiving 14.3 mJ/KB, and RSA-based encryption adds
42 mJ/KB; the battery holds 26 KJ.  Those constants are primary model
parameters here (they are *measured*, so we adopt them verbatim), and
the general path derives per-algorithm energy from the instruction
model of :mod:`repro.hardware.cycles` times the processor's
energy-per-instruction — letting the same machinery answer questions
the paper's constants don't cover (e.g. 3DES on an ARM7).
"""

from __future__ import annotations

from dataclasses import dataclass

from .cycles import (
    BULK_IPB,
    rsa_private_instructions,
    rsa_public_instructions,
)
from .processors import DRAGONBALL, Processor

# Paper / [36] measured constants (millijoules per kilobyte).
TX_MJ_PER_KB = 21.5
RX_MJ_PER_KB = 14.3
RSA_SECURITY_OVERHEAD_MJ_PER_KB = 42.0
SENSOR_BATTERY_KJ = 26.0
SENSOR_DATA_RATE_KBPS = 10.0


@dataclass(frozen=True)
class EnergyModel:
    """Computes energy for communication and crypto workloads.

    Parameters default to the paper's sensor-node scenario but every
    constant is overridable so the analysis sweeps (battery-gap bench,
    architecture ablations) can explore the design space.
    """

    processor: Processor = DRAGONBALL
    tx_mj_per_kb: float = TX_MJ_PER_KB
    rx_mj_per_kb: float = RX_MJ_PER_KB
    security_overhead_mj_per_kb: float = RSA_SECURITY_OVERHEAD_MJ_PER_KB

    def transmit_mj(self, kilobytes: float) -> float:
        """Radio energy to transmit ``kilobytes`` of data."""
        return self.tx_mj_per_kb * kilobytes

    def receive_mj(self, kilobytes: float) -> float:
        """Radio energy to receive ``kilobytes`` of data."""
        return self.rx_mj_per_kb * kilobytes

    def frame_transmit_mj(self, num_bytes: int) -> float:
        """Radio energy to transmit one ``num_bytes``-byte frame.

        Byte-denominated convenience for the ARQ layer, which charges
        every (re)transmission against this model (§3.3: retries are
        paid for in battery energy).
        """
        return self.transmit_mj(num_bytes / 1024.0)

    def frame_receive_mj(self, num_bytes: int) -> float:
        """Radio energy to receive one ``num_bytes``-byte frame."""
        return self.receive_mj(num_bytes / 1024.0)

    def security_mj(self, kilobytes: float) -> float:
        """Measured security-processing overhead (RSA mode, per [36])."""
        return self.security_overhead_mj_per_kb * kilobytes

    def transaction_mj(self, kilobytes: float = 1.0, secure: bool = False) -> float:
        """Energy for one transaction: send + receive ``kilobytes`` each
        way, plus security overhead when operating in the secure mode."""
        energy = self.transmit_mj(kilobytes) + self.receive_mj(kilobytes)
        if secure:
            energy += self.security_mj(kilobytes)
        return energy

    # -- derived (model-based) energies --------------------------------------

    def bulk_crypto_mj(self, algorithm: str, kilobytes: float) -> float:
        """Energy for bulk symmetric/hash processing, from the cycle model."""
        instructions = BULK_IPB[algorithm] * kilobytes * 1024.0
        return instructions * self.processor.energy_per_instruction_nj / 1e6

    def rsa_private_mj(self, bits: int, use_crt: bool = False) -> float:
        """Energy for one RSA private operation."""
        instr = rsa_private_instructions(bits, use_crt)
        return instr * self.processor.energy_per_instruction_nj / 1e6

    def rsa_public_mj(self, bits: int) -> float:
        """Energy for one RSA public operation."""
        instr = rsa_public_instructions(bits)
        return instr * self.processor.energy_per_instruction_nj / 1e6
