"""On-chip communication architecture security (§3.4).

"Sensitive data can also be compromised, while it is being
communicated between various components of the system through the
on-chip communication architecture, or, even when simply stored in the
mobile appliance (in secondary storage like Flash memory, main memory,
cache, or even CPU registers)."

This module models the SoC interconnect of a secure handset:

* :class:`BusMaster` components (CPU-secure, CPU-normal, DMA engines,
  peripherals) issue read/write transactions to an address space;
* an **address-space firewall** (the TrustZone-style NS-bit check of
  the era's secure bus fabrics) partitions the map into open and
  secure regions and rejects non-secure masters touching secure
  targets;
* a transaction log makes *bus snooping* analysable: the paper's
  on-chip eavesdropper is a malicious master — the tests show it
  reading key SRAM on an unprotected fabric and being refused (and
  logged) on a firewalled one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class BusFault(Exception):
    """A transaction violated the fabric's protection rules."""


@dataclass(frozen=True)
class BusRegion:
    """One address-space window."""

    name: str
    base: int
    size: int
    secure_only: bool

    def contains(self, address: int) -> bool:
        """Whether an address falls in this region."""
        return self.base <= address < self.base + self.size


@dataclass(frozen=True)
class BusMaster:
    """A component that can drive transactions."""

    name: str
    secure: bool  # asserted by hardware (world wire), not by software


@dataclass
class Transaction:
    """One logged bus transfer."""

    master: str
    kind: str          # "read" / "write"
    address: int
    size: int
    allowed: bool


DEFAULT_MEMORY_MAP: Tuple[BusRegion, ...] = (
    BusRegion("dram", base=0x0000_0000, size=0x0400_0000, secure_only=False),
    BusRegion("peripherals", base=0x4000_0000, size=0x0100_0000,
              secure_only=False),
    BusRegion("secure-sram", base=0x8000_0000, size=0x0001_0000,
              secure_only=True),
    BusRegion("key-registers", base=0x8001_0000, size=0x0000_1000,
              secure_only=True),
    BusRegion("boot-rom", base=0xFFFF_0000, size=0x0001_0000,
              secure_only=True),
)


@dataclass
class SystemBus:
    """The interconnect with an optional firewall.

    ``firewall_enabled=False`` models a 2003 commodity fabric: every
    master sees everything — the vulnerable baseline the paper warns
    about.  Memory contents are simulated as a sparse byte store so
    snooping attacks retrieve *actual data*, not a flag.
    """

    regions: Tuple[BusRegion, ...] = DEFAULT_MEMORY_MAP
    firewall_enabled: bool = True
    log: List[Transaction] = field(default_factory=list)
    violations: int = 0
    _memory: Dict[int, int] = field(default_factory=dict)

    def region_of(self, address: int) -> Optional[BusRegion]:
        """The region containing an address, if any."""
        for region in self.regions:
            if region.contains(address):
                return region
        return None

    def _gate(self, master: BusMaster, kind: str, address: int,
              size: int) -> None:
        region = self.region_of(address)
        end_region = self.region_of(address + size - 1)
        if region is None or end_region is not region:
            self.log.append(Transaction(master.name, kind, address, size,
                                        allowed=False))
            raise BusFault(
                f"{master.name}: {kind} at {address:#x} decodes to no "
                "single region"
            )
        if self.firewall_enabled and region.secure_only and not master.secure:
            self.violations += 1
            self.log.append(Transaction(master.name, kind, address, size,
                                        allowed=False))
            raise BusFault(
                f"{master.name} (non-secure) {kind} to secure region "
                f"{region.name!r} blocked by bus firewall"
            )
        self.log.append(Transaction(master.name, kind, address, size,
                                    allowed=True))

    def write(self, master: BusMaster, address: int, data: bytes) -> None:
        """One write burst."""
        self._gate(master, "write", address, len(data))
        for offset, byte in enumerate(data):
            self._memory[address + offset] = byte

    def read(self, master: BusMaster, address: int, size: int) -> bytes:
        """One read burst."""
        self._gate(master, "read", address, size)
        return bytes(self._memory.get(address + i, 0) for i in range(size))


# Convenience masters for tests and examples.
CPU_SECURE = BusMaster("cpu-secure-world", secure=True)
CPU_NORMAL = BusMaster("cpu-normal-world", secure=False)
CRYPTO_ENGINE = BusMaster("crypto-engine", secure=True)
ROGUE_DMA = BusMaster("downloaded-driver-dma", secure=False)

KEY_REGISTER_BASE = 0x8001_0000


def provision_keys_on_bus(bus: SystemBus, key_material: bytes) -> int:
    """Secure boot writes key material into the key registers."""
    bus.write(CPU_SECURE, KEY_REGISTER_BASE, key_material)
    return KEY_REGISTER_BASE


def dma_snoop_attack(bus: SystemBus, address: int,
                     size: int) -> Optional[bytes]:
    """A rogue DMA master tries to read secret addresses.

    Returns the stolen bytes on success, None when the firewall blocks
    the transfer — the outcome the tests assert in both fabric
    configurations.
    """
    try:
        return bus.read(ROGUE_DMA, address, size)
    except BusFault:
        return None
