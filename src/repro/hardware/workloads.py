"""Security-processing workload descriptions.

Section 4.2 defines *security processing* as "computations that need
to be performed specifically for the purpose of security": the
cryptographic algorithms plus the protocol-processing component
(packet header/trailer handling, parsing).  Workloads here capture
both parts so the architecture options of
:mod:`repro.hardware.accelerators` /
:mod:`repro.hardware.protocol_engine` can be compared fairly — a
crypto accelerator offloads only the first part, a protocol engine
offloads both.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cycles import (
    PACKET_OVERHEAD_INSTR,
    bulk_ipb,
    handshake_cost,
)


@dataclass(frozen=True)
class BulkWorkload:
    """Bulk data protection: encrypt + MAC a payload.

    ``packets`` models the protocol-processing component: per-packet
    header construction/parsing charged at
    :data:`~repro.hardware.cycles.PACKET_OVERHEAD_INSTR`.
    """

    cipher: str = "3DES"
    mac: str = "SHA1"
    kilobytes: float = 1.0
    packets: int = 1

    @property
    def crypto_instructions(self) -> float:
        """Instructions for the cryptographic part (software baseline)."""
        return bulk_ipb(self.cipher, self.mac, record_overhead=False) * (
            self.kilobytes * 1024.0
        )

    @property
    def protocol_instructions(self) -> float:
        """Instructions for the protocol-processing part."""
        return PACKET_OVERHEAD_INSTR * self.packets

    @property
    def total_instructions(self) -> float:
        """Full software cost in instructions."""
        return self.crypto_instructions + self.protocol_instructions


@dataclass(frozen=True)
class HandshakeWorkload:
    """Connection setups: RSA-based authenticated key exchange."""

    rsa_bits: int = 1024
    use_crt: bool = False
    count: int = 1

    @property
    def total_instructions(self) -> float:
        """Full software cost in instructions."""
        return self.count * handshake_cost(self.rsa_bits, self.use_crt).total_mi * 1e6


@dataclass(frozen=True)
class SessionWorkload:
    """A complete secure session: handshake then protected bulk data."""

    handshake: HandshakeWorkload = HandshakeWorkload()
    bulk: BulkWorkload = BulkWorkload()

    @property
    def total_instructions(self) -> float:
        """Full software cost in instructions."""
        return self.handshake.total_instructions + self.bulk.total_instructions
