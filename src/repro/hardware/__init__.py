"""Embedded hardware substrate.

Models everything the paper's quantitative sections need from
hardware: the processor catalog with published MIPS ratings (§3.2),
the calibrated instruction-cost model behind Figure 3, the measured
energy constants behind Figure 4, batteries and radios, and the §4.2
ladder of security-processing architectures (software → ISA
extensions → crypto accelerator → programmable protocol engine).
"""

from .accelerators import (
    CryptoAccelerator,
    ExecutionReport,
    SoftwareEngine,
    UnsupportedWorkload,
    architecture_ladder,
)
from .battery import Battery, BatteryEmpty, battery_capacity_trend
from .bus import (
    BusFault,
    BusMaster,
    BusRegion,
    SystemBus,
    dma_snoop_attack,
    provision_keys_on_bus,
)
from .cycles import (
    BULK_IPB,
    bulk_ipb,
    bulk_mips_demand,
    handshake_cost,
    handshake_mips_demand,
    rsa_private_instructions,
    rsa_public_instructions,
    total_mips_demand,
)
from .faults import (
    AcceleratorFailure,
    BatteryBrownout,
    FaultPlan,
    FlakyEngine,
    GlitchCampaign,
    HardwareFaultLog,
    ScheduledGlitch,
    wrap_engines,
)
from .energy import (
    RSA_SECURITY_OVERHEAD_MJ_PER_KB,
    RX_MJ_PER_KB,
    SENSOR_BATTERY_KJ,
    TX_MJ_PER_KB,
    EnergyModel,
)
from .engine_program import (
    EngineContext,
    EngineFault,
    Instruction,
    Microprogram,
    ProgrammableProtocolEngine,
    stock_engine,
)
from .isa_extensions import ISAExtensionEngine
from .platform_builder import (
    HardwarePlatform,
    pda_platform,
    phone_platform,
    sensor_node_platform,
)
from .processors import (
    ARM7,
    ARM9,
    CATALOG,
    DRAGONBALL,
    PENTIUM4,
    STRONGARM_SA1100,
    Processor,
    embedded_catalog,
)
from .protocol_engine import ProtocolEngine
from .radio import BEARERS, GSM_RADIO, SENSOR_RADIO, WLAN_RADIO, Radio
from .workloads import BulkWorkload, HandshakeWorkload, SessionWorkload

__all__ = [
    "Processor", "CATALOG", "PENTIUM4", "STRONGARM_SA1100", "ARM7", "ARM9",
    "DRAGONBALL", "embedded_catalog",
    "BULK_IPB", "bulk_ipb", "bulk_mips_demand", "handshake_cost",
    "handshake_mips_demand", "total_mips_demand",
    "rsa_private_instructions", "rsa_public_instructions",
    "EnergyModel", "TX_MJ_PER_KB", "RX_MJ_PER_KB",
    "RSA_SECURITY_OVERHEAD_MJ_PER_KB", "SENSOR_BATTERY_KJ",
    "Battery", "BatteryEmpty", "battery_capacity_trend",
    "AcceleratorFailure", "FlakyEngine", "BatteryBrownout",
    "GlitchCampaign", "ScheduledGlitch", "FaultPlan", "HardwareFaultLog",
    "wrap_engines",
    "Radio", "BEARERS", "SENSOR_RADIO", "GSM_RADIO", "WLAN_RADIO",
    "BulkWorkload", "HandshakeWorkload", "SessionWorkload",
    "SoftwareEngine", "ISAExtensionEngine", "CryptoAccelerator",
    "ProtocolEngine", "ExecutionReport", "UnsupportedWorkload",
    "architecture_ladder",
    "HardwarePlatform", "sensor_node_platform", "pda_platform",
    "phone_platform",
    "ProgrammableProtocolEngine", "Microprogram", "Instruction",
    "EngineContext", "EngineFault", "stock_engine",
    "SystemBus", "BusRegion", "BusMaster", "BusFault",
    "provision_keys_on_bus", "dma_snoop_attack",
]
