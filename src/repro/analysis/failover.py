"""The failover report: what the multi-shard chaos run survived.

Turns one :class:`~repro.fleet.scenario.FailoverResult` into a plain
dict (and its canonical JSON form): the benign answer ledger with the
``recovering`` shed window broken out, the crash/detection/migration
timeline counters, the warm / cold-resume / cold-full recovery split,
journal health (checkpoints, torn frames, index evictions), the
recovery-latency distribution, per-shard sections, and the energy
block reconciled exactly against the battery ledgers.

``format_report`` is byte-stable: ``json.dumps(..., sort_keys=True)``
over rounded floats, so two same-seed runs compare with ``cmp`` — the
CI gate for deterministic failover.
"""

from __future__ import annotations

import json
from typing import Dict

#: The declared availability bound for the acceptance chaos run: every
#: submitted request is answered (served/degraded/structured shed) —
#: a crash may cost latency and recovering sheds, never silence.
DECLARED_ANSWER_RATE = 1.0


def _round_map(values: Dict[str, float], digits: int = 6) -> Dict[str, float]:
    return {key: round(value, digits)
            for key, value in sorted(values.items())}


def build_report(result) -> Dict[str, object]:
    """The failover report as a plain, JSON-ready dict."""
    stats = result.stats
    fleet = result.fleet
    recon = result.reconciliation
    totals = fleet.runtime_totals()
    answered = sum(result.per_session_replies.values())
    user_mj = sum(
        (battery.capacity_j - battery.remaining_j) * 1000.0
        for battery in result.batteries.values())
    shards = {}
    for shard in fleet.shards:
        ledgers = list(shard.retired_stats) + [shard.runtime.stats]
        shards[shard.name] = {
            "crashes": shard.crash_count,
            "incarnations": len(ledgers),
            "served": sum(ledger.served for ledger in ledgers),
            "degraded": sum(ledger.degraded for ledger in ledgers),
            "shed": sum(ledger.shed for ledger in ledgers),
            "checkpoints_written": shard.journal.checkpoints_written,
            "journal_bytes": len(shard.journal),
            "journal_evictions": shard.journal.evictions,
            "journal_torn_records": shard.journal.torn_records,
            "sessions_now": len(shard.runtime.sessions),
        }
    report: Dict[str, object] = {
        "params": dict(result.params),
        "benign": {
            "submitted": fleet.submitted,
            "answered": answered,
            "answer_rate": round(
                answered / fleet.submitted if fleet.submitted else 1.0, 6),
            "counts": dict(result.counts),
            "shed_reasons": {key: result.shed_reasons[key]
                             for key in sorted(result.shed_reasons)},
            "runtime_totals": {key: totals[key] for key in sorted(totals)},
            "requests_while_down": stats.requests_while_down,
            "black_holed_frames": stats.black_holed_frames,
            "flushed_replies": stats.flushed_replies,
        },
        "failover": {
            "crashes": stats.crashes,
            "detections": stats.detections,
            "restarts": stats.restarts,
            "heartbeat_misses": stats.heartbeat_misses,
            "migration_deferrals": stats.migration_deferrals,
            "sessions_migrated": stats.sessions_migrated,
            "migrations": {
                "warm": stats.migrations_warm,
                "cold_resume": stats.migrations_cold_resume,
                "cold_full": stats.migrations_cold_full,
            },
            "checkpoints_written": fleet.checkpoints_written(),
            "checkpoints_restored": stats.checkpoints_restored,
            "journal_evictions": fleet.journal_evictions(),
            "journal_torn_records": fleet.journal_torn_records(),
            "journal_bytes_torn": stats.journal_bytes_torn,
            "shed_recovering": stats.shed_recovering,
            "recovery_latency_s": {
                "count": len(stats.recovery_latencies),
                "p50": round(stats.recovery_p50_s(), 6),
                "p95": round(stats.recovery_p95_s(), 6),
                "max": round(max(stats.recovery_latencies), 6)
                if stats.recovery_latencies else 0.0,
            },
        },
        "tickets": {
            "cached": len(fleet.ticket_cache),
            "hits": fleet.ticket_cache.hits,
            "misses": fleet.ticket_cache.misses,
            "evictions": fleet.ticket_cache.evictions,
            "rotations": fleet.ticket_cache.rotations,
            "expired": fleet.ticket_cache.expired,
        },
        "shards": shards,
        "energy": {
            "user_mj": round(user_mj, 6),
            "gateway_radio_mj": round(totals["energy_mj"], 6),
            "recovery_mj": round(stats.recovery_energy_mj, 6),
            "attributed_mj": round(recon.attributed_mj, 6),
            "battery_drain_mj": round(recon.battery_drain_mj, 6),
            "battery_refusals": (stats.battery_refusals
                                 + int(totals["battery_refusals"])),
            "reconciled": recon.ok,
        },
    }
    return report


def format_report(report: Dict[str, object]) -> str:
    """Canonical byte-stable JSON rendering (trailing newline)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"
