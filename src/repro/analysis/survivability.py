"""The survivability report: what the mixed benign/attack run cost.

Turns one :class:`~repro.adversary.scenario.SurvivabilityResult` into
a plain dict (and its canonical JSON form): per-adversary-class damage
and energy ledgers, the benign served/degraded/shed breakdown with
per-reason shed energy, the DoS gate's cookie accounting, breaker
transitions, latched alerts, and the attacker-vs-user energy split —
reconciled exactly against the battery ledgers.

``format_report`` is byte-stable: ``json.dumps(..., sort_keys=True)``
over rounded floats, so two same-seed runs compare with ``cmp``.
"""

from __future__ import annotations

import json
from typing import Dict

from ..observability.attribution import adversary_energy_mj

#: The declared survivability bound: benign goodput under a 50%
#: attacker mix must stay within this much (absolute served-fraction)
#: of the attack-free baseline.  Asserted by the acceptance tests and
#: the committed ``BENCH_survivability.json`` artifact.
DECLARED_GOODPUT_BOUND = 0.1


def _round_map(values: Dict[str, float], digits: int = 6) -> Dict[str, float]:
    return {key: round(value, digits)
            for key, value in sorted(values.items())}


def build_report(result) -> Dict[str, object]:
    """The survivability report as a plain, JSON-ready dict."""
    stats = result.stats
    recon = result.reconciliation
    user_mj = sum(
        (battery.capacity_j - battery.remaining_j) * 1000.0
        for battery in result.batteries.values())
    attacker_mj = result.population.energy_spent_mj()
    answered = sum(result.counts.values())
    report: Dict[str, object] = {
        "params": dict(result.params),
        "benign": {
            "counts": dict(result.counts),
            "goodput": round(result.benign_goodput, 6),
            "answered": answered,
            "submitted": stats.submitted,
            "admitted": stats.admitted,
            "served": stats.served,
            "degraded": stats.degraded,
            "shed": {
                "rate_limited": stats.shed_rate_limited,
                "queue_full": stats.shed_queue_full,
                "deadline": stats.shed_deadline,
                "malformed": stats.shed_malformed,
                "total": stats.shed,
            },
            "shed_energy_mj": _round_map(stats.shed_energy_mj),
            "malformed_discarded": stats.malformed_discarded,
            "leftover_discarded": result.leftover_discarded,
            "battery_refusals": stats.battery_refusals,
            "p95_latency_s": round(stats.p95_latency_s(), 6),
        },
        "adversaries": {
            adversary.name: dict(adversary.snapshot(),
                                 **{"class": adversary.kind})
            for adversary in result.population.adversaries
        },
        "dos_responder": result.responder.snapshot(),
        "breakers": {
            origin: [[round(at, 6), frm, to]
                     for at, frm, to in transitions]
            for origin, transitions in result.breakers.items()
        },
        "alerts": [
            {"name": alert.name, "at_s": alert.at_s,
             "detail": alert.detail}
            for alert in result.population.alerts
        ],
        "energy": {
            "user_mj": round(user_mj, 6),
            "attacker_mj": round(attacker_mj, 6),
            "per_adversary_class_mj": _round_map(
                adversary_energy_mj(result.telemetry)),
            "gateway_radio_mj": round(stats.energy_mj, 6),
            "attributed_mj": round(recon.attributed_mj, 6),
            "battery_drain_mj": round(recon.battery_drain_mj, 6),
            "reconciled": recon.ok,
        },
    }
    return report


def format_report(report: Dict[str, object]) -> str:
    """Canonical byte-stable JSON rendering (trailing newline)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"
