"""Analysis utilities: figure regeneration, reporting, sweeps."""

from .chaos import chaos_point, chaos_sweep, classify_reply
from .figures import (
    all_figures,
    figure1_data,
    figure2_data,
    figure3_data,
    figure4_data,
    figure5_data,
    figure6_data,
)
from .report import format_series, format_table
from .sidechannel_metrics import (
    SuccessCurve,
    cpa_success_curve,
    leakage_snr,
    timing_attack_success_curve,
)
from .sweep import SweepResult, sweep

__all__ = [
    "figure1_data", "figure2_data", "figure3_data", "figure4_data",
    "figure5_data", "figure6_data", "all_figures",
    "format_table", "format_series",
    "sweep", "SweepResult",
    "chaos_point", "chaos_sweep", "classify_reply",
    "leakage_snr", "cpa_success_curve", "timing_attack_success_curve",
    "SuccessCurve",
]
