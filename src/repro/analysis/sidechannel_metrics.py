"""Side-channel attack evaluation metrology.

Quantifies *how leaky* an implementation is and *how strong* an attack
is — the measurements a tamper-resistance engineer (§3.4) runs before
and after adding countermeasures:

* **SNR** of a trace set with respect to a target intermediate — the
  standard leakage-assessment number (signal variance across classes
  over noise variance within them);
* **success rate vs. trace count** — the attack-strength curve: rerun
  CPA on growing prefixes of a campaign and record when the right key
  wins;
* **measurements-to-disclosure (MTD)** — the smallest trace count at
  which the attack stays successful, the figure of merit hardware
  vendors quoted for DPA resistance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple


def leakage_snr(traces: Sequence[Tuple[bytes, List[float]]],
                sample_index: int,
                classifier: Callable[[bytes], int]) -> float:
    """Signal-to-noise ratio of one trace sample for a partitioning.

    ``classifier`` maps each input (plaintext) to a class (e.g. the
    true S-box output's Hamming weight).  SNR = Var(class means) /
    mean(within-class variance).  Unmasked implementations show SNR >>
    0 at the right sample; masked ones collapse towards 0.
    """
    classes: Dict[int, List[float]] = {}
    for data, samples in traces:
        classes.setdefault(classifier(data), []).append(
            samples[sample_index])
    means = []
    within = []
    for values in classes.values():
        if len(values) < 2:
            continue
        mean = sum(values) / len(values)
        means.append(mean)
        within.append(
            sum((v - mean) ** 2 for v in values) / (len(values) - 1))
    if len(means) < 2 or not within:
        return 0.0
    grand = sum(means) / len(means)
    signal = sum((m - grand) ** 2 for m in means) / (len(means) - 1)
    noise = sum(within) / len(within)
    return signal / noise if noise else float("inf")


@dataclass
class SuccessCurve:
    """Attack success as a function of campaign size."""

    trace_counts: List[int]
    successes: List[bool]

    @property
    def measurements_to_disclosure(self) -> Optional[int]:
        """Smallest count from which the attack stays successful."""
        mtd = None
        for count, success in zip(self.trace_counts, self.successes):
            if success and mtd is None:
                mtd = count
            elif not success:
                mtd = None
        return mtd


def cpa_success_curve(acquire: Callable[[int], Sequence],
                      attack: Callable[[Sequence], bytes],
                      true_key: bytes,
                      trace_counts: Sequence[int]) -> SuccessCurve:
    """Run an attack at increasing trace counts.

    ``acquire(n)`` returns n traces (deterministic prefix property is
    the caller's responsibility), ``attack(traces)`` returns the
    recovered key.
    """
    successes = []
    largest = max(trace_counts)
    full_campaign = acquire(largest)
    for count in trace_counts:
        recovered = attack(full_campaign[:count])
        successes.append(recovered == true_key)
    return SuccessCurve(trace_counts=list(trace_counts),
                        successes=successes)


def timing_attack_success_curve(run_attack: Callable[[int], bool],
                                sample_counts: Sequence[int]
                                ) -> SuccessCurve:
    """Success-vs-samples curve for the timing attack."""
    successes = [run_attack(count) for count in sample_counts]
    return SuccessCurve(trace_counts=list(sample_counts),
                        successes=successes)
