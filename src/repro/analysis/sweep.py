"""Generic parameter-sweep helper used by benches and examples.

A tiny experiment harness: cartesian-product sweeps with named axes,
collecting one result row per point.  Keeps the bench files focused on
*what* they sweep rather than loop plumbing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class SweepResult:
    """All rows of a completed sweep."""

    axes: Tuple[str, ...]
    rows: Tuple[Tuple, ...]  # (*axis values, result)

    def column(self, axis: str) -> List:
        """Values of one axis across rows."""
        index = self.axes.index(axis)
        return [row[index] for row in self.rows]

    def results(self) -> List:
        """The result value of every row."""
        return [row[-1] for row in self.rows]

    def filter(self, **fixed) -> List[Tuple]:
        """Rows where the given axes take the given values."""
        indices = {self.axes.index(k): v for k, v in fixed.items()}
        return [
            row for row in self.rows
            if all(row[i] == v for i, v in indices.items())
        ]


def sweep(func: Callable[..., Any],
          **axes: Sequence) -> SweepResult:
    """Evaluate ``func`` over the cartesian product of named axes.

    >>> result = sweep(lambda a, b: a * b, a=[1, 2], b=[10, 20])
    >>> result.rows
    ((1, 10, 10), (1, 20, 20), (2, 10, 20), (2, 20, 40))
    """
    names = tuple(axes)
    rows = []
    for values in itertools.product(*(axes[name] for name in names)):
        kwargs: Dict[str, Any] = dict(zip(names, values))
        rows.append((*values, func(**kwargs)))
    return SweepResult(axes=names, rows=tuple(rows))
