"""Plain-text table/series rendering for the figure benches.

The reproduction regenerates each figure's *data*; these helpers print
it as aligned rows so the bench output reads like the paper's figures
in tabular form (EXPERIMENTS.md records the same rows).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 float_format: str = "{:.2f}") -> str:
    """Render rows as an aligned ASCII table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered_rows))
        if rendered_rows else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt_line(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = [fmt_line(headers), fmt_line(["-" * w for w in widths])]
    lines.extend(fmt_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_series(name: str, points: Iterable, x_label: str = "x",
                  y_label: str = "y") -> str:
    """Render an (x, y) series with a title line."""
    body = format_table((x_label, y_label), points)
    return f"== {name} ==\n{body}"
