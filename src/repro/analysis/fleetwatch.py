"""The fleetwatch ops report: one watched chaos run, rendered.

Turns one :class:`~repro.observability.fleetwatch.FleetwatchResult`
into a plain dict (and its canonical JSON form) with four sections on
top of the embedded failover report:

* ``traces`` — the stitched cross-shard journeys: for every session
  that was ever migrated, its trace id, the shard streams it crossed,
  the recovery tiers it took, and the crash milestones it witnessed;
  plus the stream inventory of the merged fleet trace;
* ``windows`` — the fleet-wide per-window table (goodput, shed mix,
  recovery-tier counts, serve-vs-recovery energy split, latency and
  recovery-latency percentiles) and per-shard window tables with
  merged whole-run percentiles;
* ``slo`` — per-spec attainment and burn statistics, the policy set,
  and the latched alert ledger (every firing and clear the run ever
  raised, in order);
* the ``failover`` section is the unmodified byte-stable failover
  report — watching a run must not change what the run did.

``format_report`` matches the repo convention: ``json.dumps(...,
sort_keys=True)`` over rounded floats, trailing newline — the CI
``cmp`` gate for deterministic fleet observability.
"""

from __future__ import annotations

import json
from typing import Dict

from ..observability.tracecontext import CTX_TRACE
from .failover import build_report as build_failover_report


def _journey_rows(result) -> Dict[str, object]:
    """JSON-ready journey section, keyed by session id."""
    store = result.store
    telemetry = result.failover.telemetry
    crash_milestones: Dict[str, int] = {}
    for event in telemetry.events:
        trace_id = event.attrs.get(CTX_TRACE)
        if trace_id is not None and event.name == "fleet.session_orphaned":
            crash_milestones[str(trace_id)] = (
                crash_milestones.get(str(trace_id), 0) + 1)
    rows: Dict[str, object] = {}
    for trace_id, journey in sorted(store.journeys().items()):
        rows[journey.session] = {
            "trace_id": trace_id,
            "shards": list(journey.shards),
            "tiers": list(journey.tiers),
            "spans": journey.span_count,
            "crash_milestones": crash_milestones.get(trace_id, 0),
            "stitched": journey.span_count >= 1 + len(journey.tiers),
        }
    return rows


def build_report(result) -> Dict[str, object]:
    """The fleetwatch report as a plain, JSON-ready dict."""
    watch = result.watch
    store = result.store
    config = result.config
    journeys = _journey_rows(result)
    tiers_seen = sorted({tier for row in journeys.values()
                         for tier in row["tiers"]})
    merged = store.merged()
    spans_per_stream: Dict[str, int] = {}
    for _start, stream, _span_id, _span in merged:
        spans_per_stream[stream] = spans_per_stream.get(stream, 0) + 1
    report: Dict[str, object] = {
        "params": {
            **dict(result.failover.params),
            "window_s": config.window_s,
            "slide_s": config.slide_s,
            "sample_interval_s": config.sample_interval_s,
            "samples_taken": watch.samples_taken,
        },
        "failover": build_failover_report(result.failover),
        "traces": {
            "streams": store.streams(),
            "spans_total": len(merged),
            "spans_per_stream": {key: spans_per_stream[key]
                                 for key in sorted(spans_per_stream)},
            "journeys": journeys,
            "tiers_seen": tiers_seen,
            "migrated_sessions": sum(
                1 for row in journeys.values() if row["tiers"]),
        },
        "windows": {
            "width_s": config.window_s,
            "slide_s": config.slide_s,
            "fleet": watch.fleet_windows(),
            "shards": watch.shard_windows(),
            "overall_latency": watch.overall_latency(),
        },
        "slo": watch.engine.summary(),
    }
    return report


def format_report(report: Dict[str, object]) -> str:
    """Canonical byte-stable JSON rendering (trailing newline)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"
