"""Regeneration of every figure's data (the per-experiment index).

One function per paper figure, each returning the printable structure
the corresponding bench emits and EXPERIMENTS.md records.  Everything
is computed from the library's models — nothing is transcribed from
the paper beyond the calibration constants documented in DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.battery_life import figure4_report
from ..core.concerns import coverage_table, verify_mechanisms_importable
from ..core.evolution import (
    cumulative_revisions,
    domain_cadence,
    mean_revision_interval,
    protocols,
)
from ..core.gap import compute_surface
from ..core.layers import default_stack, dependency_edges, validate_stack
from ..hardware.processors import ARM7, PENTIUM4, STRONGARM_SA1100
from .report import format_series, format_table


def figure1_data() -> str:
    """Figure 1: the concern taxonomy with verified mechanism backing."""
    failures = verify_mechanisms_importable()
    table = format_table(
        ("concern", "threats", "mechanism modules"), coverage_table())
    status = (
        "all mechanisms importable"
        if not failures else f"MISSING: {failures}"
    )
    return f"{table}\n[{status}]"


def figure2_data() -> str:
    """Figure 2: protocol evolution timelines + domain cadence."""
    sections = []
    for protocol in protocols():
        series = cumulative_revisions(protocol)
        interval = mean_revision_interval(protocol)
        label = (
            f"{protocol} (mean {interval:.2f} yr between revisions)"
            if interval is not None else protocol
        )
        sections.append(format_series(label, series, "year", "revisions"))
    cadence = domain_cadence()
    sections.append(
        format_series("domain cadence", sorted(cadence.items()),
                      "domain", "mean years/revision")
    )
    return "\n\n".join(sections)


def figure3_data() -> Tuple[str, Dict[str, float]]:
    """Figure 3: the demand surface + per-processor feasible fractions."""
    surface = compute_surface()
    rows = [
        (p.latency_s, p.data_rate_mbps, p.demand_mips)
        for p in surface.points
    ]
    table = format_table(
        ("latency_s", "rate_mbps", "demand_MIPS"), rows)
    fractions = {
        proc.name: surface.feasible_fraction(proc)
        for proc in (ARM7, STRONGARM_SA1100, PENTIUM4)
    }
    lines = [table, ""]
    for name, fraction in fractions.items():
        lines.append(f"feasible fraction on {name}: {fraction:.2f}")
    return "\n".join(lines), fractions


def figure4_data() -> str:
    """Figure 4: transactions-to-empty, plain vs. secure."""
    report = figure4_report()
    rows = [
        ("plain (tx+rx)", report.plain_transactions),
        ("secure (tx+rx+RSA)", report.secure_transactions),
        ("ratio", round(report.ratio, 4)),
        ("less than half?", report.less_than_half),
    ]
    return format_table(("mode", "1-KB transactions on 26 KJ"), rows)


def figure5_data() -> str:
    """Figure 5: the layer stack with resolved dependencies."""
    stack = default_stack()
    violations = validate_stack(stack)
    table = format_table(
        ("layer", "requires", "provided by"),
        [(layer, service, provider)
         for layer, service, provider in dependency_edges(stack)],
    )
    status = "hierarchy sound" if not violations else f"VIOLATIONS: {violations}"
    return f"{table}\n[{status}]"


def figure6_data() -> str:
    """Figure 6: the base architecture, engine vs software on one
    secure-transaction workload."""
    from ..core.base_architecture import reference_architecture
    from ..hardware.workloads import BulkWorkload, HandshakeWorkload, SessionWorkload

    workload = SessionWorkload(
        handshake=HandshakeWorkload(),
        bulk=BulkWorkload(kilobytes=64.0, packets=50),
    )
    rows = []
    for with_engine in (False, True):
        architecture = reference_architecture(with_engine=with_engine)
        report = architecture.execute(workload)
        rows.append((
            "crypto engine" if with_engine else "software only",
            report.time_s,
            report.energy_mj,
        ))
    speedup = rows[0][1] / rows[1][1]
    energy_gain = rows[0][2] / rows[1][2]
    table = format_table(("configuration", "time_s", "energy_mJ"), rows,
                         float_format="{:.4f}")
    return (
        f"{table}\nengine speedup: {speedup:.1f}x, "
        f"energy gain: {energy_gain:.1f}x"
    )


def all_figures() -> List[Tuple[str, str]]:
    """(figure id, rendered data) for the full evaluation section."""
    return [
        ("Figure 1", figure1_data()),
        ("Figure 2", figure2_data()),
        ("Figure 3", figure3_data()[0]),
        ("Figure 4", figure4_data()),
        ("Figure 5", figure5_data()),
        ("Figure 6", figure6_data()),
    ]
