"""Chaos sweep over the multi-session gateway runtime.

The gateway analogue of the lossy-link drop sweep: drive the
:class:`~repro.protocols.gateway_runtime.GatewayRuntime` across a grid
of **offered load** (request interarrival time per handset) × **origin
fault rate** (seeded i.i.d. wired-leg failures) and report, per point,
how the overload/fault machinery split the traffic — served, degraded,
shed — plus p95 virtual-time latency and handset radio energy per
served request.  Every point is a pure function of its seed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..protocols.gateway_runtime import (
    BUSY_PREFIX,
    RuntimeConfig,
    build_gateway_runtime_world,
)
from ..protocols.wap import DEGRADED_PREFIX
from .sweep import SweepResult, sweep

ORIGIN = "origin.example"


def classify_reply(reply: bytes) -> str:
    """One of ``served`` / ``degraded`` / ``shed`` for a runtime reply."""
    if reply.startswith(BUSY_PREFIX):
        return "shed"
    if reply.startswith(DEGRADED_PREFIX):
        return "degraded"
    return "served"


def chaos_point(sessions: int = 4, requests_per_session: int = 8,
                interarrival_s: float = 0.2, fault_rate: float = 0.0,
                seed: int = 0,
                config: Optional[RuntimeConfig] = None) -> Dict[str, float]:
    """Run one grid point and return its ledger.

    ``interarrival_s`` is the per-handset request period; the aggregate
    offered load is ``sessions / interarrival_s`` requests per virtual
    second, which the runtime's admission rate then accepts or sheds.
    """
    runtime, handsets, _ = build_gateway_runtime_world(
        sessions=sessions, seed=seed, config=config)
    if fault_rate > 0.0:
        runtime.set_fault_rate(ORIGIN, fault_rate, seed=seed)
    session_ids = sorted(handsets)
    for round_index in range(requests_per_session):
        for slot, session_id in enumerate(session_ids):
            handsets[session_id].send(
                f"req-{session_id}-{round_index}".encode())
            runtime.submit(
                session_id, ORIGIN,
                arrival_offset_s=round_index * interarrival_s
                + slot * interarrival_s / max(1, sessions))
    stats = runtime.run()
    replies: List[str] = []
    for session_id in session_ids:
        conn = handsets[session_id]
        while conn.endpoint.pending():
            replies.append(classify_reply(conn.receive()))
    counts = {kind: replies.count(kind)
              for kind in ("served", "degraded", "shed")}
    assert stats.answered == stats.submitted, "a request went unanswered"
    return {
        "sessions": sessions,
        "offered_per_s": round(sessions / interarrival_s, 3),
        "fault_rate": fault_rate,
        "submitted": stats.submitted,
        "served": counts["served"],
        "degraded": counts["degraded"],
        "shed": counts["shed"],
        "breaker_fast_fails": stats.breaker_fast_fails,
        "wired_failures": stats.wired_failures,
        "p95_latency_s": round(stats.p95_latency_s(), 6),
        "energy_per_served_mj": round(stats.energy_per_served_mj(), 6),
    }


def chaos_sweep(interarrivals: Sequence[float] = (0.4, 0.1, 0.025),
                fault_rates: Sequence[float] = (0.0, 0.2, 0.5),
                sessions: int = 4, requests_per_session: int = 8,
                seed: int = 0) -> SweepResult:
    """The full offered-load × fault-rate grid as a
    :class:`~repro.analysis.sweep.SweepResult`."""
    return sweep(
        lambda interarrival_s, fault_rate: chaos_point(
            sessions=sessions,
            requests_per_session=requests_per_session,
            interarrival_s=interarrival_s,
            fault_rate=fault_rate,
            seed=seed),
        interarrival_s=list(interarrivals),
        fault_rate=list(fault_rates),
    )
