"""The m-commerce workload report: what a transaction costs, by suite
and by battery class.

Turns one :class:`~repro.workloads.mcommerce.MCommerceResult` into a
plain dict (and its canonical JSON form): the traffic ledger (session
mix, arrivals, answer counts), the SET payment audit (every purchase
authorised, every dual-signature binding holding), the per-suite
transaction economics — transactions, airlink bytes, bulk compute
millijoules, millijoules per transaction — the per-battery-class
drain, and the energy block reconciled exactly against the battery
ledgers.

``format_report`` is byte-stable: ``json.dumps(..., sort_keys=True)``
over rounded floats, so two same-seed runs compare with ``cmp`` — the
CI gate for a deterministic workload plane.
"""

from __future__ import annotations

import json
from typing import Dict

from ..fleet.runtime import _channel_bytes
from ..workloads.mcommerce import BATTERY_CLASSES


def build_report(result) -> Dict[str, object]:
    """The m-commerce report as a plain, JSON-ready dict."""
    fleet = result.fleet
    recon = result.reconciliation
    totals = fleet.runtime_totals()
    answered = sum(result.per_session_replies.values())
    horizon_s = max((max(plan.arrivals_s) for plan in result.plans
                     if plan.arrivals_s), default=0.0)

    by_suite: Dict[str, Dict[str, float]] = {}
    by_class: Dict[str, Dict[str, float]] = {}
    for plan in result.plans:
        battery = result.batteries[plan.session_id]
        drained_mj = (battery.capacity_j - battery.remaining_j) * 1000.0
        wire_bytes = _channel_bytes(fleet.channels[plan.session_id])
        transactions = len(plan.arrivals_s)
        suite_row = by_suite.setdefault(plan.suite_name, {
            "sessions": 0, "transactions": 0, "answered": 0,
            "wire_bytes": 0, "battery_drain_mj": 0.0})
        suite_row["sessions"] += 1
        suite_row["transactions"] += transactions
        suite_row["answered"] += result.per_session_replies[plan.session_id]
        suite_row["wire_bytes"] += wire_bytes
        suite_row["battery_drain_mj"] += drained_mj
        class_row = by_class.setdefault(plan.battery_class, {
            "sessions": 0, "transactions": 0,
            "capacity_mj": 0.0, "battery_drain_mj": 0.0})
        class_row["sessions"] += 1
        class_row["transactions"] += transactions
        class_row["capacity_mj"] += battery.capacity_j * 1000.0
        class_row["battery_drain_mj"] += drained_mj

    for name, row in by_suite.items():
        row["compute_mj"] = round(result.compute_mj.get(name, 0.0), 6)
        row["battery_drain_mj"] = round(row["battery_drain_mj"], 6)
        row["mj_per_transaction"] = round(
            row["battery_drain_mj"] / row["transactions"]
            if row["transactions"] else 0.0, 6)
    for row in by_class.values():
        row["battery_drain_mj"] = round(row["battery_drain_mj"], 6)
        row["capacity_mj"] = round(row["capacity_mj"], 6)
        row["mj_per_transaction"] = round(
            row["battery_drain_mj"] / row["transactions"]
            if row["transactions"] else 0.0, 6)
        row["drain_fraction"] = round(
            row["battery_drain_mj"] / row["capacity_mj"]
            if row["capacity_mj"] else 0.0, 6)

    transactions_total = sum(len(plan.arrivals_s)
                             for plan in result.plans)
    user_mj = sum(
        (battery.capacity_j - battery.remaining_j) * 1000.0
        for battery in result.batteries.values())
    report: Dict[str, object] = {
        "params": dict(result.params),
        "traffic": {
            "sessions": len(result.plans),
            "session_mix": {
                kind: sum(1 for p in result.plans if p.kind == kind)
                for kind in ("browse", "authenticate", "purchase")},
            "battery_classes": {
                klass.name: sum(1 for p in result.plans
                                if p.battery_class == klass.name)
                for klass in BATTERY_CLASSES},
            "transactions": transactions_total,
            "truncated_sessions": sum(1 for p in result.plans
                                      if p.truncated),
            "submitted": fleet.submitted,
            "answered": answered,
            "answer_rate": round(
                answered / fleet.submitted if fleet.submitted else 1.0, 6),
            "counts": dict(result.counts),
            "horizon_s": round(horizon_s, 6),
            "transactions_per_s": round(
                transactions_total / horizon_s if horizon_s else 0.0, 6),
        },
        "payments": {
            "purchases": len(result.payments),
            "authorised": sum(1 for p in result.payments
                              if p["auth_code"]),
            "bindings_hold": all(p["binding_holds"]
                                 for p in result.payments),
            "amount_cents_total": sum(p["amount_cents"]
                                      for p in result.payments),
            "orders": [p["order_id"] for p in result.payments],
        },
        "by_suite": by_suite,
        "by_battery_class": by_class,
        "energy": {
            "user_mj": round(user_mj, 6),
            "gateway_radio_mj": round(totals["energy_mj"], 6),
            "bulk_compute_mj": round(sum(result.compute_mj.values()), 6),
            "dual_signature_mj": round(result.dual_signature_mj, 6),
            "attributed_mj": round(recon.attributed_mj, 6),
            "battery_drain_mj": round(recon.battery_drain_mj, 6),
            "battery_refusals": int(totals["battery_refusals"]),
            "brownouts": {key: result.brownouts[key]
                          for key in sorted(result.brownouts)},
            "reconciled": recon.ok,
        },
    }
    return report


def format_report(report: Dict[str, object]) -> str:
    """Canonical byte-stable JSON (the CI ``cmp`` target)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"
