"""Explicit handshake/session state-machine model, exhaustively checked.

:func:`repro.protocols.handshake.run_handshake` drives both peers
through the happy path in one call, so nothing in the library ever
*states* what a server must do with an out-of-order, replayed, or
garbage message.  This module makes that contract explicit:

* :class:`ReferenceServerMachine` — a reactive server built from the
  same primitives (messages, certificates, KDF, record layer) that
  consumes **one wire blob at a time**;
* :data:`TRANSITIONS` — the declared model: for every (state, symbol)
  pair, either the successor state or the exact
  :class:`~repro.protocols.alerts.ProtocolAlert` subclass the machine
  must die with;
* :func:`check_model` — exhaustive enumeration of *every* input
  sequence up to a small depth, verifying the machine's observed
  behaviour matches the declared matrix and that any alert lands the
  machine in ``CLOSED`` (further input → ``UnexpectedMessage``, the
  §3.4 software-attack containment property).

Determinism: all randomness comes from fixed-seed DRBGs, so the golden
client messages are byte-identical across runs and valid against every
fresh machine instance.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..crypto.errors import CryptoError
from ..crypto.rng import DeterministicDRBG
from ..crypto.sha1 import sha1
from ..protocols.alerts import (
    BadRecordMAC,
    DecodeError,
    HandshakeFailure,
    ProtocolAlert,
    UnexpectedMessage,
)
from ..protocols.certificates import Certificate, CertificateAuthority
from ..protocols.ciphersuites import RSA_WITH_3DES_SHA
from ..protocols.handshake import PREMASTER_BYTES
from ..protocols.kdf import (
    derive_key_block,
    finished_verify_data,
    master_secret,
)
from ..protocols.messages import (
    MSG_CERTIFICATE_VERIFY,
    MSG_CLIENT_HELLO,
    MSG_CLIENT_KEY_EXCHANGE,
    ClientHello,
    ClientKeyExchange,
    Finished,
    ServerHello,
)
from ..protocols.records import (
    CONTENT_APPLICATION,
    CONTENT_HANDSHAKE,
    make_record_pair,
)

# -- states ------------------------------------------------------------------

AWAIT_HELLO = "AWAIT_HELLO"
AWAIT_KEY_EXCHANGE = "AWAIT_KEY_EXCHANGE"
AWAIT_FINISHED = "AWAIT_FINISHED"
ESTABLISHED = "ESTABLISHED"
DATA_RECEIVED = "DATA_RECEIVED"
CLOSED = "CLOSED"

#: All model states, in lifecycle order.
STATES = (AWAIT_HELLO, AWAIT_KEY_EXCHANGE, AWAIT_FINISHED,
          ESTABLISHED, DATA_RECEIVED, CLOSED)

# -- input symbols -----------------------------------------------------------

#: The symbol alphabet: each names one golden wire blob from
#: :func:`golden_messages`.
SYMBOLS = ("client_hello", "server_hello", "client_key_exchange",
           "finished", "appdata", "junk")

#: Declared model.  Value is either a successor state (str — the
#: machine must accept the input) or a ProtocolAlert subclass (the
#: machine must raise exactly that alert and close).  Plaintext states
#: classify by leading byte: a known handshake type in the wrong state
#: is ``UnexpectedMessage``; anything else (record framing, garbage)
#: is ``DecodeError``.  Record states treat a raw handshake byte as
#: ``UnexpectedMessage`` and surface record-layer failures
#: (out-of-order/replayed → ``BadRecordMAC``) unchanged.
TRANSITIONS: Dict[Tuple[str, str], object] = {
    (AWAIT_HELLO, "client_hello"): AWAIT_KEY_EXCHANGE,
    (AWAIT_HELLO, "server_hello"): UnexpectedMessage,
    (AWAIT_HELLO, "client_key_exchange"): UnexpectedMessage,
    (AWAIT_HELLO, "finished"): DecodeError,       # record framing, not a msg
    (AWAIT_HELLO, "appdata"): DecodeError,
    (AWAIT_HELLO, "junk"): DecodeError,

    (AWAIT_KEY_EXCHANGE, "client_hello"): UnexpectedMessage,
    (AWAIT_KEY_EXCHANGE, "server_hello"): UnexpectedMessage,
    (AWAIT_KEY_EXCHANGE, "client_key_exchange"): AWAIT_FINISHED,
    (AWAIT_KEY_EXCHANGE, "finished"): DecodeError,
    (AWAIT_KEY_EXCHANGE, "appdata"): DecodeError,
    (AWAIT_KEY_EXCHANGE, "junk"): DecodeError,

    (AWAIT_FINISHED, "client_hello"): UnexpectedMessage,
    (AWAIT_FINISHED, "server_hello"): UnexpectedMessage,
    (AWAIT_FINISHED, "client_key_exchange"): UnexpectedMessage,
    (AWAIT_FINISHED, "finished"): ESTABLISHED,
    (AWAIT_FINISHED, "appdata"): BadRecordMAC,    # out-of-order record
    (AWAIT_FINISHED, "junk"): DecodeError,

    (ESTABLISHED, "client_hello"): UnexpectedMessage,
    (ESTABLISHED, "server_hello"): UnexpectedMessage,
    (ESTABLISHED, "client_key_exchange"): UnexpectedMessage,
    (ESTABLISHED, "finished"): BadRecordMAC,      # replayed record
    (ESTABLISHED, "appdata"): DATA_RECEIVED,
    (ESTABLISHED, "junk"): DecodeError,

    (DATA_RECEIVED, "client_hello"): UnexpectedMessage,
    (DATA_RECEIVED, "server_hello"): UnexpectedMessage,
    (DATA_RECEIVED, "client_key_exchange"): UnexpectedMessage,
    (DATA_RECEIVED, "finished"): BadRecordMAC,    # replayed record
    (DATA_RECEIVED, "appdata"): BadRecordMAC,     # replayed record
    (DATA_RECEIVED, "junk"): DecodeError,
}
# Once closed, everything is rejected uniformly.
for _symbol in SYMBOLS:
    TRANSITIONS[(CLOSED, _symbol)] = UnexpectedMessage

#: The single suite the model runs (RSA kex keeps the machine's
#: server-side premaster recovery deterministic).
SUITE = RSA_WITH_3DES_SHA

_CREDENTIALS: Optional[tuple] = None


def _credentials():
    """Shared CA + server credential (created once; keygen is the only
    expensive step and the certificate is immutable)."""
    global _CREDENTIALS
    if _CREDENTIALS is None:
        ca = CertificateAuthority(
            "ConformanceCA", DeterministicDRBG("conformance-sm-ca"))
        key, cert = ca.issue(
            "conformance.server", DeterministicDRBG("conformance-sm-key"))
        _CREDENTIALS = (ca, key, cert)
    return _CREDENTIALS


class ReferenceServerMachine:
    """A reactive mini-TLS server: one :meth:`feed` call per wire blob.

    Mirrors the server half of
    :func:`repro.protocols.handshake.run_handshake` message for
    message, but holds its state explicitly so the model checker can
    compare every step against :data:`TRANSITIONS`.  Any
    :class:`~repro.protocols.alerts.ProtocolAlert` closes the machine.
    """

    def __init__(self) -> None:
        _, self._key, self._certificate = _credentials()
        self._rng = DeterministicDRBG("conformance-sm-server")
        self.state = AWAIT_HELLO
        self._transcript: List[bytes] = []
        self._master: Optional[bytes] = None
        self._encoder = None
        self._decoder = None
        self.inbox: List[bytes] = []

    def feed(self, blob: bytes) -> Optional[bytes]:
        """Consume one wire blob; returns the response bytes, if any.

        Raises a :class:`~repro.protocols.alerts.ProtocolAlert`
        subclass per the declared matrix; the machine is ``CLOSED``
        afterwards.
        """
        try:
            return self._feed(blob)
        except ProtocolAlert:
            self.state = CLOSED
            raise

    def _feed(self, blob: bytes) -> Optional[bytes]:
        if self.state == CLOSED:
            raise UnexpectedMessage("connection closed")
        if self.state in (AWAIT_HELLO, AWAIT_KEY_EXCHANGE):
            return self._feed_plaintext(blob)
        return self._feed_record(blob)

    # -- plaintext handshake phase -------------------------------------------

    def _feed_plaintext(self, blob: bytes) -> bytes:
        if not blob:
            raise DecodeError("empty handshake message")
        msg_type = blob[0]
        if not MSG_CLIENT_HELLO <= msg_type <= MSG_CERTIFICATE_VERIFY:
            raise DecodeError(
                f"not a handshake message (leading byte {msg_type})")
        expected = (MSG_CLIENT_HELLO if self.state == AWAIT_HELLO
                    else MSG_CLIENT_KEY_EXCHANGE)
        if msg_type != expected:
            raise UnexpectedMessage(
                f"message type {msg_type} in state {self.state}")
        if self.state == AWAIT_HELLO:
            return self._on_client_hello(blob)
        return self._on_client_key_exchange(blob)

    def _on_client_hello(self, blob: bytes) -> bytes:
        hello = ClientHello.from_bytes(blob)
        if SUITE.name not in hello.suite_names:
            raise HandshakeFailure("no common cipher suite")
        self._client_random = hello.client_random
        self._transcript.append(blob)
        self._server_random = self._rng.random_bytes(32)
        reply = ServerHello(
            server_random=self._server_random,
            suite_name=SUITE.name,
            certificate=self._certificate.to_bytes(),
            key_exchange=b"",
            request_client_auth=False,
        ).to_bytes()
        self._transcript.append(reply)
        self.state = AWAIT_KEY_EXCHANGE
        return reply

    def _on_client_key_exchange(self, blob: bytes) -> None:
        ckx = ClientKeyExchange.from_bytes(blob)
        self._transcript.append(blob)
        try:
            premaster = self._key.decrypt(ckx.key_exchange)
        except CryptoError as exc:
            raise HandshakeFailure(
                f"premaster decryption failed: {exc}") from exc
        if len(premaster) != PREMASTER_BYTES:
            raise HandshakeFailure("premaster has wrong length")
        self._master = master_secret(
            premaster, self._client_random, self._server_random)
        keys = derive_key_block(
            self._master, self._client_random, self._server_random, SUITE)
        self._encoder, self._decoder = make_record_pair(
            SUITE, keys, is_client=False)
        self.state = AWAIT_FINISHED
        return None

    # -- record phase ---------------------------------------------------------

    def _feed_record(self, blob: bytes) -> Optional[bytes]:
        if blob and MSG_CLIENT_HELLO <= blob[0] <= MSG_CERTIFICATE_VERIFY:
            raise UnexpectedMessage(
                f"raw handshake message (type {blob[0]}) where a "
                f"protected record was expected")
        content_type, payload = self._decoder.decode(blob)
        if self.state == AWAIT_FINISHED:
            if content_type != CONTENT_HANDSHAKE:
                raise UnexpectedMessage(
                    f"content type {content_type} before Finished")
            finished = Finished.from_bytes(payload)
            expected = finished_verify_data(
                self._master, sha1(b"".join(self._transcript)),
                b"client finished")
            if finished.verify_data != expected:
                raise HandshakeFailure("client Finished verify_data mismatch")
            reply = Finished(finished_verify_data(
                self._master, sha1(b"".join(self._transcript)),
                b"server finished"))
            self.state = ESTABLISHED
            return self._encoder.encode(CONTENT_HANDSHAKE, reply.to_bytes())
        if content_type != CONTENT_APPLICATION:
            raise UnexpectedMessage(
                f"content type {content_type} after handshake")
        self.inbox.append(payload)
        self.state = DATA_RECEIVED
        return None


_GOLDEN: Optional[Dict[str, bytes]] = None


def golden_messages() -> Dict[str, bytes]:
    """The six symbol blobs, produced by one scripted golden client run.

    Valid against any fresh :class:`ReferenceServerMachine` (both sides
    use fixed-seed DRBGs, so the server's nonce — and therefore the
    transcript the Finished message binds — replays identically).
    """
    global _GOLDEN
    if _GOLDEN is not None:
        return _GOLDEN
    machine = ReferenceServerMachine()
    rng = DeterministicDRBG("conformance-sm-client")

    client_random = rng.random_bytes(32)
    client_hello = ClientHello(client_random, [SUITE.name]).to_bytes()
    server_hello_bytes = machine.feed(client_hello)
    server_hello = ServerHello.from_bytes(server_hello_bytes)
    certificate = Certificate.from_bytes(server_hello.certificate)

    premaster = rng.random_bytes(PREMASTER_BYTES)
    ckx = ClientKeyExchange(
        certificate.public_key.encrypt(premaster, rng)).to_bytes()
    machine.feed(ckx)

    master = master_secret(
        premaster, client_random, server_hello.server_random)
    keys = derive_key_block(
        master, client_random, server_hello.server_random, SUITE)
    encoder, decoder = make_record_pair(SUITE, keys, is_client=True)
    transcript = sha1(b"".join([client_hello, server_hello_bytes, ckx]))
    finished_record = encoder.encode(
        CONTENT_HANDSHAKE,
        Finished(finished_verify_data(
            master, transcript, b"client finished")).to_bytes())
    server_finished = machine.feed(finished_record)
    # Close the loop: the golden client verifies the server's Finished.
    content_type, payload = decoder.decode(server_finished)
    assert content_type == CONTENT_HANDSHAKE
    expected = finished_verify_data(master, transcript, b"server finished")
    assert Finished.from_bytes(payload).verify_data == expected

    appdata_record = encoder.encode(
        CONTENT_APPLICATION, b"conformance: application data")
    machine.feed(appdata_record)
    assert machine.state == DATA_RECEIVED

    _GOLDEN = {
        "client_hello": client_hello,
        "server_hello": server_hello_bytes,
        "client_key_exchange": ckx,
        "finished": finished_record,
        "appdata": appdata_record,
        "junk": b"\xff\x00\x03xx",  # bogus type + mismatched length field
    }
    return _GOLDEN


@dataclass
class Mismatch:
    """One divergence between the declared model and the machine."""

    sequence: Tuple[str, ...]
    step: int
    state: str
    symbol: str
    expected: str
    observed: str


@dataclass
class StateMachineReport:
    """Aggregate result of the exhaustive enumeration."""

    depth: int
    sequences: int = 0
    steps: int = 0
    alerts: int = 0
    transitions_covered: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every observed step matched the declared model."""
        return not self.mismatches


def check_model(depth: int = 4) -> StateMachineReport:
    """Drive every input sequence up to ``depth`` symbols.

    For each step the observed behaviour (accepted, or alert class
    raised) must equal the declared :data:`TRANSITIONS` entry, and an
    alert must leave the machine ``CLOSED``.
    """
    golden = golden_messages()
    report = StateMachineReport(depth=depth)
    covered = set()
    for length in range(1, depth + 1):
        for sequence in itertools.product(SYMBOLS, repeat=length):
            report.sequences += 1
            machine = ReferenceServerMachine()
            state = AWAIT_HELLO
            for step, symbol in enumerate(sequence):
                declared = TRANSITIONS[(state, symbol)]
                report.steps += 1
                covered.add((state, symbol))
                observed: object
                try:
                    machine.feed(golden[symbol])
                except ProtocolAlert as alert:
                    observed = type(alert)
                    report.alerts += 1
                else:
                    observed = machine.state
                if isinstance(declared, str):
                    expected_state = declared
                    matched = observed == declared
                else:
                    expected_state = CLOSED
                    matched = observed is declared and machine.state == CLOSED
                if not matched:
                    report.mismatches.append(Mismatch(
                        sequence=sequence, step=step, state=state,
                        symbol=symbol,
                        expected=(declared if isinstance(declared, str)
                                  else declared.__name__),
                        observed=(observed if isinstance(observed, str)
                                  else observed.__name__),
                    ))
                    break
                state = expected_state
    report.transitions_covered = len(covered)
    return report
