"""Conformance and differential-verification plane.

The paper's premise (§2–§3.1) is that the mobile appliance must speak
*exactly* the wired Internet's protocols — interoperability is the
security property.  This subpackage is the standing proof obligation
for the whole reproduction:

``vectors``
    Declarative registry over the JSON corpus in ``tests/vectors/``:
    official KATs (FIPS 197/46-3, RFC 6229, RFC 2268, RFC 1321,
    FIPS 180-1, RFC 2202, frozen RSA/DH pairs) executed through both
    the reference loops and the fast-path kernels.
``oracles``
    Differential oracles against ``hashlib``/``hmac``, cross-path
    round-trip properties for ciphers with no stdlib twin, and the
    TLS↔WTLS record-layer agreement oracle.
``statemachine``
    The explicit handshake state-machine model (states, allowed
    transitions, forbidden-message matrix) checked by exhaustive
    small-depth enumeration.
``fuzzcorpus``
    A seeded, deterministic mutation fuzzer over every wire parser,
    with greedy crash minimization and a persisted regression corpus
    replayed forever after.
``runner``
    One-call orchestration behind ``python -m repro conformance``,
    rendering a byte-stable report for CI's run-twice-and-``cmp``
    discipline.
"""

from .fuzzcorpus import (
    CrashRecord,
    FuzzReport,
    FuzzTarget,
    default_targets,
    load_regressions,
    minimize,
    persist_crashers,
    replay_regression,
    run_fuzz,
)
from .oracles import ORACLES, run_oracles
from .runner import ConformanceReport, format_report, run_conformance
from .statemachine import (
    STATES,
    SYMBOLS,
    TRANSITIONS,
    ReferenceServerMachine,
    StateMachineReport,
    check_model,
    golden_messages,
)
from .vectors import (
    CheckResult,
    VectorCorpus,
    VectorFile,
    check_vector,
    load_corpus,
    run_vectors,
)

__all__ = [
    "CheckResult", "VectorCorpus", "VectorFile",
    "load_corpus", "check_vector", "run_vectors",
    "ORACLES", "run_oracles",
    "STATES", "SYMBOLS", "TRANSITIONS",
    "ReferenceServerMachine", "StateMachineReport",
    "check_model", "golden_messages",
    "FuzzTarget", "FuzzReport", "CrashRecord",
    "default_targets", "run_fuzz", "minimize",
    "persist_crashers", "load_regressions", "replay_regression",
    "ConformanceReport", "run_conformance", "format_report",
]
