"""Seeded, deterministic mutation fuzzer over every wire parser.

``test_fuzzing.py`` already throws *pure garbage* at the parsers under
a loose contract (any library exception is acceptable, ``ValueError``
included).  This module tightens both halves:

* **structure-aware inputs** — mutations start from *valid* wire blobs
  (a real ClientHello, a real ESP packet...), so the fuzzer reaches
  the deep parser paths random garbage never finds (length fields that
  parse, certificates whose outer framing is intact);
* **strict contract** — each target declares exactly which exception
  types are acceptable (its :class:`~repro.protocols.alerts
  .ProtocolAlert` family; the engine additionally its
  :class:`~repro.hardware.engine_program.EngineFault`/crypto errors).
  Anything else — ``UnicodeDecodeError``, ``ValueError`` from ``pow``,
  an unbounded-modexp hang class — is a **crasher**.

Crashers are minimized greedily (chunk deletion, then per-byte
simplification) and persisted as JSON into
``tests/vectors/regressions/``, where :func:`load_regressions` replays
them as ordinary corpus entries — every bug the fuzzer ever found
stays fixed.  Everything is driven by one ``random.Random(seed)``:
same seed, byte-identical behaviour.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from ..crypto.errors import CryptoError
from ..crypto.sha1 import sha1
from ..hardware.engine_program import EngineContext, EngineFault, stock_engine
from ..protocols.alerts import ProtocolAlert
from ..protocols.certificates import Certificate
from ..protocols.ciphersuites import RSA_WITH_3DES_SHA, RSA_WITH_TRIVIUM_SHA
from ..protocols.ipsec import make_tunnel
from ..protocols.messages import (
    ClientHello,
    ClientKeyExchange,
    Finished,
    ServerHello,
)
from ..protocols.records import CONTENT_APPLICATION, RecordDecoder
from ..protocols.wep import WEPFrame, WEPStation
from ..protocols.wtls import WTLSRecordDecoder
from . import statemachine

#: Default regression-corpus location: ``<repo>/tests/vectors/regressions``.
REGRESSION_DIR = (Path(__file__).resolve().parents[3]
                  / "tests" / "vectors" / "regressions")


@dataclass(frozen=True)
class FuzzTarget:
    """One parser under test.

    ``parse`` must be stateless across calls (fresh decoder per blob
    where the parser carries state); ``allowed`` is the strict
    exception contract; ``seeds`` are valid wire blobs mutations start
    from.
    """

    name: str
    parse: Callable[[bytes], object]
    allowed: Tuple[type, ...]
    seeds: Tuple[bytes, ...]


@dataclass(frozen=True)
class CrashRecord:
    """A minimized input that escaped a target's exception contract."""

    target: str
    blob: bytes
    error: str
    note: str = ""


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzzing run."""

    seed: int
    iterations: int
    executions: int = 0
    rejections: int = 0        # inputs cleanly refused (allowed exceptions)
    accepted: int = 0          # inputs that parsed successfully
    crashers: List[CrashRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no input escaped any target's contract."""
        return not self.crashers


# ---------------------------------------------------------------------------
# Targets: every wire parser in the library, seeded with valid blobs.
# ---------------------------------------------------------------------------


def _tls_record_seed() -> bytes:
    suite = RSA_WITH_3DES_SHA
    from ..protocols.records import RecordEncoder

    encoder = RecordEncoder(suite, bytes(24), bytes(20), bytes(8))
    return encoder.encode(CONTENT_APPLICATION, b"fuzz seed payload")


def _tls_record_parse(blob: bytes):
    decoder = RecordDecoder(RSA_WITH_3DES_SHA, bytes(24), bytes(20), bytes(8))
    return decoder.decode(blob)


def _wtls_record_seed() -> bytes:
    from ..protocols.wtls import WTLSRecordEncoder

    encoder = WTLSRecordEncoder(
        RSA_WITH_3DES_SHA, bytes(24), bytes(20), bytes(8))
    return encoder.encode(b"fuzz seed payload")


def _wtls_record_parse(blob: bytes):
    decoder = WTLSRecordDecoder(
        RSA_WITH_3DES_SHA, bytes(24), bytes(20), bytes(8))
    return decoder.decode(blob)


def _wtls_stream_record_seed() -> bytes:
    from ..protocols.wtls import WTLSRecordEncoder

    encoder = WTLSRecordEncoder(
        RSA_WITH_TRIVIUM_SHA, bytes(20), bytes(20), b"")
    return encoder.encode(b"fuzz seed purchase")


def _wtls_stream_record_parse(blob: bytes):
    """The lightweight-suite record path: the per-record re-keyed
    stream decoder (key XOR sequence landing in the IV bytes) must
    reject every mutation with a declared alert, never a crash."""
    decoder = WTLSRecordDecoder(
        RSA_WITH_TRIVIUM_SHA, bytes(20), bytes(20), b"")
    return decoder.decode(blob)


def _esp_seed() -> bytes:
    sender, _ = make_tunnel(0xC0DE, seed=5)
    return sender.encapsulate(b"fuzz seed datagram")


def _esp_parse(blob: bytes):
    _, receiver = make_tunnel(0xC0DE, seed=5)
    return receiver.decapsulate(blob)


def _wep_seed() -> bytes:
    return WEPStation(b"abcde").encrypt(b"fuzz seed frame").to_bytes()


def _wep_parse(blob: bytes):
    return WEPStation(b"abcde").decrypt(WEPFrame.from_bytes(blob))


def _engine_parse(program: str) -> Callable[[bytes], object]:
    def parse(blob: bytes):
        engine = stock_engine()
        context = EngineContext(
            packet=blob,
            keys={"cipher_key": bytes(24), "mac_key": bytes(20)})
        return engine.run(program, context)
    return parse


#: Strict contract for protocol-stack parsers: declared alerts only.
ALERTS_ONLY = (ProtocolAlert,)
#: The engine's declared failure surface: its own fault type plus the
#: crypto layer's typed errors (padding, block size) its datapaths use.
ENGINE_ERRORS = (EngineFault, CryptoError, ProtocolAlert)


def default_targets() -> List[FuzzTarget]:
    """Every wire parser, each seeded with at least one valid blob."""
    golden = statemachine.golden_messages()
    certificate = statemachine._credentials()[2].to_bytes()
    finished_msg = Finished(b"\x00" * 12).to_bytes()
    ckx = golden["client_key_exchange"]
    return [
        FuzzTarget("client_hello", ClientHello.from_bytes, ALERTS_ONLY,
                   (golden["client_hello"],)),
        FuzzTarget("server_hello", ServerHello.from_bytes, ALERTS_ONLY,
                   (golden["server_hello"],)),
        FuzzTarget("client_key_exchange", ClientKeyExchange.from_bytes,
                   ALERTS_ONLY, (ckx,)),
        FuzzTarget("finished", Finished.from_bytes, ALERTS_ONLY,
                   (finished_msg,)),
        FuzzTarget("certificate", Certificate.from_bytes, ALERTS_ONLY,
                   (certificate,)),
        FuzzTarget("tls_record", _tls_record_parse, ALERTS_ONLY,
                   (_tls_record_seed(),)),
        FuzzTarget("wtls_record", _wtls_record_parse, ALERTS_ONLY,
                   (_wtls_record_seed(),)),
        FuzzTarget("wtls_stream_record", _wtls_stream_record_parse,
                   ALERTS_ONLY, (_wtls_stream_record_seed(),)),
        FuzzTarget("esp_packet", _esp_parse, ALERTS_ONLY, (_esp_seed(),)),
        FuzzTarget("wep_frame", _wep_parse, ALERTS_ONLY, (_wep_seed(),)),
        FuzzTarget("engine_esp_decap", _engine_parse("esp-decap"),
                   ENGINE_ERRORS, (_esp_seed(),)),
        FuzzTarget("engine_wep_decap", _engine_parse("wep-decap"),
                   ENGINE_ERRORS, (_wep_seed(),)),
    ]


# ---------------------------------------------------------------------------
# Mutation engine.
# ---------------------------------------------------------------------------


def _mutate(blob: bytes, rng: random.Random, seeds: Tuple[bytes, ...]) -> bytes:
    """One seeded mutation; always returns a (possibly empty) blob."""
    data = bytearray(blob)
    op = rng.randrange(8)
    if op == 0 and data:                       # bit flip
        index = rng.randrange(len(data))
        data[index] ^= 1 << rng.randrange(8)
    elif op == 1 and data:                     # byte overwrite
        data[rng.randrange(len(data))] = rng.randrange(256)
    elif op == 2 and data:                     # truncate
        del data[rng.randrange(len(data)):]
    elif op == 3 and len(data) > 1:            # delete slice
        start = rng.randrange(len(data) - 1)
        del data[start:start + rng.randrange(1, len(data) - start + 1)]
    elif op == 4 and data:                     # duplicate slice
        start = rng.randrange(len(data))
        chunk = data[start:start + rng.randrange(1, 9)]
        data[start:start] = chunk
    elif op == 5:                              # insert random bytes
        index = rng.randrange(len(data) + 1)
        data[index:index] = bytes(
            rng.randrange(256) for _ in range(rng.randrange(1, 5)))
    elif op == 6 and len(data) >= 2:           # length-field extremes
        index = rng.randrange(len(data) - 1)
        value = rng.choice((0x0000, 0x0001, 0x7FFF, 0xFFFF))
        data[index:index + 2] = value.to_bytes(2, "big")
    else:                                      # splice two seeds
        other = rng.choice(seeds)
        cut_a = rng.randrange(len(data) + 1)
        cut_b = rng.randrange(len(other) + 1)
        data = bytearray(data[:cut_a] + other[cut_b:])
    return bytes(data)


def _next_mutation(target: FuzzTarget, rng: random.Random) -> bytes:
    """One structure-aware input: a seed blob under 1–3 stacked mutations."""
    blob = rng.choice(target.seeds)
    for _ in range(rng.randrange(1, 4)):
        blob = _mutate(blob, rng, target.seeds)
    return blob


def mutation_stream(target: FuzzTarget, seed: int):
    """Endless deterministic stream of mutated wire blobs for ``target``.

    Shares the mutation engine (and the exact per-target RNG stream,
    ``random.Random(f"{seed}:{target.name}")``) with :func:`run_fuzz`,
    so live adversarial traffic and the offline fuzz campaign draw from
    one corpus: the first N items equal the N inputs ``fuzz_target``
    would execute for the same seed.
    """
    rng = random.Random(f"{seed}:{target.name}")
    while True:
        yield _next_mutation(target, rng)


def _escapes(target: FuzzTarget, blob: bytes) -> Optional[str]:
    """Run one blob; returns the escape description or None."""
    try:
        target.parse(blob)
    except target.allowed:
        return None
    except Exception as exc:
        return f"{type(exc).__name__}: {exc}"
    return None


def minimize(target: FuzzTarget, blob: bytes) -> bytes:
    """Greedy crash minimization preserving *some* contract escape.

    Chunk deletion from large to small, then per-byte zeroing — the
    classic ddmin-flavoured reduction, deterministic by construction.
    """
    current = blob
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        offset = 0
        while offset < len(current):
            candidate = current[:offset] + current[offset + chunk:]
            if candidate != current and _escapes(target, candidate):
                current = candidate
            else:
                offset += chunk
        chunk //= 2
    simplified = bytearray(current)
    for index in range(len(simplified)):
        if simplified[index] == 0:
            continue
        saved = simplified[index]
        simplified[index] = 0
        if not _escapes(target, bytes(simplified)):
            simplified[index] = saved
    return bytes(simplified)


def fuzz_target(target: FuzzTarget, rng: random.Random,
                iterations: int, report: FuzzReport) -> None:
    """Fuzz one target; found crashers are minimized and recorded."""
    seen_errors = set()
    for _ in range(iterations):
        blob = _next_mutation(target, rng)
        report.executions += 1
        try:
            target.parse(blob)
        except target.allowed:
            report.rejections += 1
        except Exception as exc:
            error_key = (target.name, type(exc).__name__)
            if error_key in seen_errors:
                continue                       # one crasher per error type
            seen_errors.add(error_key)
            minimized = minimize(target, blob)
            final_error = _escapes(target, minimized)
            report.crashers.append(CrashRecord(
                target=target.name, blob=minimized,
                error=final_error or f"{type(exc).__name__}: {exc}",
                note="found by seeded mutation fuzzing"))
        else:
            report.accepted += 1


def run_fuzz(seed: int = 2003, iterations: int = 150,
             targets: Optional[List[FuzzTarget]] = None) -> FuzzReport:
    """Run the whole fuzz campaign deterministically.

    ``iterations`` is per target.  Same ``seed`` → byte-identical
    report, including any crashers found.
    """
    targets = targets if targets is not None else default_targets()
    report = FuzzReport(seed=seed, iterations=iterations)
    for target in sorted(targets, key=lambda t: t.name):
        # Independent stream per target: adding a target never
        # perturbs the others' inputs.
        rng = random.Random(f"{seed}:{target.name}")
        fuzz_target(target, rng, iterations, report)
    return report


# ---------------------------------------------------------------------------
# Regression corpus persistence and replay.
# ---------------------------------------------------------------------------


def persist_crashers(crashers: List[CrashRecord],
                     directory: Optional[Path] = None) -> List[Path]:
    """Write minimized crashers as JSON regression vectors."""
    directory = Path(directory) if directory is not None else REGRESSION_DIR
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for crash in crashers:
        digest = sha1(crash.blob + crash.target.encode()).hex()[:10]
        path = directory / f"{crash.target}--{digest}.json"
        path.write_text(json.dumps({
            "target": crash.target,
            "blob": crash.blob.hex(),
            "error": crash.error,
            "note": crash.note,
        }, indent=1) + "\n")
        written.append(path)
    return written


def load_regressions(directory: Optional[Path] = None) -> List[dict]:
    """Load the committed regression corpus, sorted by file name."""
    directory = Path(directory) if directory is not None else REGRESSION_DIR
    if not directory.is_dir():
        return []
    return [json.loads(path.read_text())
            for path in sorted(directory.glob("*.json"))]


def replay_regression(record: dict,
                      targets: Optional[List[FuzzTarget]] = None
                      ) -> Optional[str]:
    """Replay one pinned regression vector against today's parser.

    Returns ``None`` when the parser now honours its contract (accepts
    the blob or refuses it with a declared exception), or the escape
    description when the old bug is back.
    """
    targets = targets if targets is not None else default_targets()
    by_name = {t.name: t for t in targets}
    target = by_name[record["target"]]
    return _escapes(target, bytes.fromhex(record["blob"]))
