"""Differential and property oracles for the from-scratch stacks.

Three oracle families, in descending order of independence:

* **cross-implementation** — our MD5/SHA-1/HMAC against the platform's
  ``hashlib``/``hmac`` (a genuinely independent implementation; this
  module is test tooling, so the no-stdlib-crypto rule for the
  reference modules does not apply here);
* **self-inverse / round-trip** — encrypt→decrypt identity for every
  cipher and mode where no stdlib twin exists (DES, 3DES, AES, RC2,
  RC4, ECB/CBC/CTR), checked *across* dispatch paths: fast-path
  encrypt must be opened by reference decrypt and vice versa;
* **record-layer agreement** — the mini-TLS and WTLS record layers,
  keyed identically, must both round-trip the same payloads on every
  shared cipher suite and must both reject the same tampering with
  :class:`~repro.protocols.alerts.BadRecordMAC` (the shared
  MAC-then-encrypt contract the paper's §3.1 "close resemblance to
  SSL/TLS" implies).

Every oracle returns a list of
:class:`~repro.conformance.vectors.CheckResult` rows so the runner
and the pytest suite consume one shape.  Inputs are deterministic —
derived from fixed seeds, never from the wall clock.
"""

from __future__ import annotations

import hashlib
import hmac as stdlib_hmac
from typing import Callable, Dict, List

from ..crypto import fastpath
from ..crypto.aes import AES
from ..crypto.des import DES
from ..crypto.hmac import hmac
from ..crypto.md5 import MD5, md5
from ..crypto.modes import CBC, CTR, ECB
from ..crypto.rc2 import RC2
from ..crypto.rc4 import RC4
from ..crypto.rng import DeterministicDRBG
from ..crypto.sha1 import SHA1, sha1
from ..crypto.tdes import TripleDES
from ..protocols.alerts import BadRecordMAC
from ..protocols.ciphersuites import ALL_SUITES
from ..protocols.records import (
    CONTENT_APPLICATION,
    RecordDecoder,
    RecordEncoder,
)
from ..protocols.wtls import WTLSRecordDecoder, WTLSRecordEncoder
from .vectors import CheckResult

#: Message lengths spanning compression-block boundaries (0, partial,
#: exactly one block, the 55/56 padding edge, multi-block).
HASH_LENGTHS = (0, 1, 3, 8, 55, 56, 63, 64, 65, 127, 128, 200)

#: (key length, message length) pairs for the HMAC sweep, including
#: keys shorter than, equal to, and longer than the block size.
HMAC_SHAPES = ((0, 17), (1, 0), (16, 50), (20, 64), (64, 13), (65, 13),
               (100, 128))


def _result(oracle: str, case: str, detail: str) -> CheckResult:
    return CheckResult(file=oracle, vector_id=case, path="both",
                       ok=detail == "", detail=detail)


def _material(label: str, length: int) -> bytes:
    """Deterministic bytes for oracle inputs (never wall-clock seeded)."""
    return DeterministicDRBG(f"conformance-oracle:{label}").random_bytes(
        length)


def hash_oracle() -> List[CheckResult]:
    """Our MD5/SHA-1 vs ``hashlib`` over boundary-spanning lengths,
    on both dispatch paths."""
    results = []
    pairs: Dict[str, tuple] = {
        "md5": (md5, lambda d: hashlib.md5(d).digest()),
        "sha1": (sha1, lambda d: hashlib.sha1(d).digest()),
    }
    for name, (ours, theirs) in sorted(pairs.items()):
        for length in HASH_LENGTHS:
            data = _material(f"hash-{length}", length)
            expected = theirs(data)
            for path in ("fast", "reference"):
                with fastpath.force(path == "fast"):
                    got = ours(data)
                detail = ("" if got == expected else
                          f"{name}({length}B) diverges from hashlib "
                          f"on {path} path")
                results.append(_result(
                    "hash-vs-hashlib", f"{name}-{length}-{path}", detail))
    return results


def hmac_oracle() -> List[CheckResult]:
    """Our HMAC vs stdlib ``hmac`` across key/message shapes."""
    results = []
    factories = {"md5": (MD5, "md5"), "sha1": (SHA1, "sha1")}
    for name, (factory, digestmod) in sorted(factories.items()):
        for key_len, msg_len in HMAC_SHAPES:
            key = _material(f"hmac-key-{key_len}", key_len)
            msg = _material(f"hmac-msg-{msg_len}", msg_len)
            expected = stdlib_hmac.new(key, msg, digestmod).digest()
            for path in ("fast", "reference"):
                with fastpath.force(path == "fast"):
                    got = hmac(key, msg, factory)
                detail = ("" if got == expected else
                          f"hmac-{name}(key={key_len},msg={msg_len}) "
                          f"diverges from stdlib on {path} path")
                results.append(_result(
                    "hmac-vs-stdlib",
                    f"{name}-k{key_len}-m{msg_len}-{path}", detail))
    return results


#: Block/stream ciphers with no stdlib twin: name -> (factory, key bytes).
CIPHERS: Dict[str, tuple] = {
    "aes128": (AES, 16),
    "aes192": (AES, 24),
    "aes256": (AES, 32),
    "des": (DES, 8),
    "3des": (TripleDES, 24),
    "rc2": (RC2, 16),
}


def roundtrip_oracle() -> List[CheckResult]:
    """Self-inverse checks where no independent twin exists.

    The cross-path variants are the strongest form: a fast-path
    encryption must decrypt on the reference loops (and vice versa),
    so the two implementations are pinned against each other, not
    merely against themselves.
    """
    results = []
    for name in sorted(CIPHERS):
        factory, key_bytes = CIPHERS[name]
        key = _material(f"cipher-key-{name}", key_bytes)
        cipher = factory(key)
        block = _material(f"cipher-block-{name}", cipher.block_size)
        for enc_path in ("fast", "reference"):
            for dec_path in ("fast", "reference"):
                with fastpath.force(enc_path == "fast"):
                    encrypted = factory(key).encrypt_block(block)
                with fastpath.force(dec_path == "fast"):
                    back = factory(key).decrypt_block(encrypted)
                detail = ("" if back == block else
                          f"{name}: {enc_path}-encrypt not inverted by "
                          f"{dec_path}-decrypt")
                results.append(_result(
                    "cipher-roundtrip",
                    f"{name}-{enc_path}-{dec_path}", detail))
        # Mode round-trips (one representative length per mode).
        data = _material(f"mode-data-{name}", 5 * cipher.block_size + 3)
        iv = _material(f"mode-iv-{name}", cipher.block_size)
        for mode_name in ("ecb", "cbc", "ctr"):
            if mode_name == "ecb":
                aligned = data[:5 * cipher.block_size]  # ECB: aligned only
                encrypted = ECB(factory(key)).encrypt(aligned)
                back = ECB(factory(key)).decrypt(encrypted)
                detail = ("" if back == aligned else
                          f"{name}-ecb: round trip diverged")
                results.append(_result("mode-roundtrip", f"{name}-ecb",
                                       detail))
                continue
            if mode_name == "cbc":
                encrypted = CBC(factory(key), iv).encrypt(data)
                back = CBC(factory(key), iv).decrypt(encrypted)
            else:
                encrypted = CTR(factory(key), iv).process(data)
                back = CTR(factory(key), iv).process(encrypted)
            detail = ("" if back == data else
                      f"{name}-{mode_name}: round trip diverged")
            results.append(_result(
                "mode-roundtrip", f"{name}-{mode_name}", detail))
    # RC4 is its own inverse.
    key = _material("rc4-key", 16)
    data = _material("rc4-data", 301)
    back = RC4(key).process(RC4(key).process(data))
    results.append(_result(
        "cipher-roundtrip", "rc4-self-inverse",
        "" if back == data else "rc4: process∘process is not identity"))
    return results


def _record_pairs(suite, label: str):
    """A (TLS encoder/decoder, WTLS encoder/decoder) quad with shared
    deterministic key material for one suite."""
    rng = DeterministicDRBG(f"conformance-record:{label}:{suite.name}")
    cipher_key = rng.random_bytes(suite.cipher_key_bytes)
    mac_key = rng.random_bytes(suite.mac_key_bytes)
    iv = rng.random_bytes(suite.iv_bytes)
    tls = (RecordEncoder(suite, cipher_key, mac_key, iv),
           RecordDecoder(suite, cipher_key, mac_key, iv))
    wtls = (WTLSRecordEncoder(suite, cipher_key, mac_key, iv),
            WTLSRecordDecoder(suite, cipher_key, mac_key, iv))
    return tls, wtls


def record_layer_oracle() -> List[CheckResult]:
    """TLS↔WTLS agreement on every shared suite.

    Both layers, keyed identically, must (a) round-trip the same
    payload sequence and (b) reject a flipped ciphertext bit with
    :class:`~repro.protocols.alerts.BadRecordMAC` — never by returning
    corrupted plaintext or crashing.
    """
    results = []
    payloads = [_material(f"record-payload-{i}", n)
                for i, n in enumerate((1, 13, 64, 200))]
    for suite in ALL_SUITES:
        (tls_enc, tls_dec), (wtls_enc, wtls_dec) = _record_pairs(
            suite, "agree")
        detail = ""
        for payload in payloads:
            tls_type, tls_payload = tls_dec.decode(
                tls_enc.encode(CONTENT_APPLICATION, payload))
            wtls_seq, wtls_payload = wtls_dec.decode(wtls_enc.encode(payload))
            if tls_payload != payload:
                detail = f"TLS record layer corrupted a {len(payload)}B payload"
                break
            if wtls_payload != payload:
                detail = (f"WTLS record layer corrupted a "
                          f"{len(payload)}B payload")
                break
            if tls_type != CONTENT_APPLICATION:
                detail = "TLS content type not preserved"
                break
        results.append(_result(
            "record-agreement", f"{suite.name}-roundtrip", detail))

        # Tamper rejection must agree too (fresh pairs: the CBC residue
        # chain in TLS makes decoder state matter).
        (tls_enc, tls_dec), (wtls_enc, wtls_dec) = _record_pairs(
            suite, "tamper")
        detail = ""
        for name, encode, decode in (
                ("tls",
                 lambda d=tls_enc: tls_enc.encode(CONTENT_APPLICATION,
                                                  payloads[3]),
                 tls_dec.decode),
                ("wtls",
                 lambda d=wtls_enc: wtls_enc.encode(payloads[3]),
                 wtls_dec.decode)):
            record = bytearray(encode())
            record[-1] ^= 0x01
            try:
                decode(bytes(record))
            except BadRecordMAC:
                continue
            except Exception as exc:
                detail = (f"{name}: tampering raised "
                          f"{type(exc).__name__}, want BadRecordMAC")
                break
            else:
                detail = f"{name}: tampered record accepted"
                break
        results.append(_result(
            "record-agreement", f"{suite.name}-tamper", detail))
    return results


def record_batch_oracle() -> List[CheckResult]:
    """Batched vs single-record framing equivalence (the both-path rule).

    On every suite and both dispatch paths, ``encode_batch`` of N
    payloads must be byte-identical to N sequential ``encode`` calls
    from an identically-keyed codec (so the batch pipeline can never
    drift from the vetted single-record wire format), ``decode_batch``
    must return the same payloads, and the transactional contract must
    hold: a tampered record inside a batch surfaces as
    :class:`~repro.protocols.records_batch.BatchRecordError` with its
    neighbours intact, and a retransmission of the genuine record is
    accepted afterwards.
    """
    from ..protocols.records_batch import BatchRecordError

    results = []
    payloads = [_material(f"batch-payload-{i}", n)
                for i, n in enumerate((0, 1, 64, 333, 1024))]
    for suite in ALL_SUITES:
        for path in ("fast", "reference"):
            with fastpath.force(path == "fast"):
                label = f"batch-{path}"
                (tls_enc, tls_dec), (wtls_enc, wtls_dec) = _record_pairs(
                    suite, label)
                (tls_enc2, tls_dec2), (wtls_enc2, wtls_dec2) = _record_pairs(
                    suite, label)
                singles = b"".join(
                    tls_enc.encode(CONTENT_APPLICATION, payload)
                    for payload in payloads)
                batch = tls_enc2.encode_batch(
                    [(CONTENT_APPLICATION, payload) for payload in payloads])
                detail = ""
                if batch != singles:
                    detail = ("TLS batched encode diverges from "
                              "single-record encode")
                elif [payload for _, payload
                      in tls_dec2.decode_batch(batch)] != payloads:
                    detail = "TLS batched decode corrupted a payload"
                results.append(_result(
                    "record-batch", f"{suite.name}-tls-{path}", detail))

                singles = b"".join(
                    wtls_enc.encode(payload) for payload in payloads)
                batch = wtls_enc2.encode_batch(payloads)
                detail = ""
                if batch != singles:
                    detail = ("WTLS batched encode diverges from "
                              "single-record encode")
                else:
                    records, damaged = wtls_dec2.decode_batch(batch)
                    if [payload for _, payload in records] != payloads:
                        detail = "WTLS batched decode corrupted a payload"
                    elif damaged:
                        detail = "WTLS batched decode flagged intact records"
                results.append(_result(
                    "record-batch", f"{suite.name}-wtls-{path}", detail))

        # Transactional contract: tamper the middle record of a batch.
        (tls_enc, tls_dec), _ = _record_pairs(suite, "batch-tamper")
        records = [tls_enc.encode(CONTENT_APPLICATION, payload)
                   for payload in payloads[:3]]
        tampered = bytearray(records[1])
        tampered[-1] ^= 0x01
        detail = ""
        try:
            tls_dec.decode_batch(records[0] + bytes(tampered) + records[2])
        except BatchRecordError as exc:
            if exc.index != 1:
                detail = f"tampered record flagged at index {exc.index}, want 1"
            elif [payload for _, payload in exc.decoded] != payloads[:1]:
                detail = "records before the tampered one were not delivered"
            elif not isinstance(exc.cause, BadRecordMAC):
                detail = (f"tampering surfaced as {type(exc.cause).__name__},"
                          f" want BadRecordMAC")
            else:
                try:
                    # Retransmission of the genuine records must verify:
                    # the failed record committed no decoder state.
                    recovered = [tls_dec.decode(records[1]),
                                 tls_dec.decode(records[2])]
                except Exception as exc2:  # noqa: BLE001 - oracle boundary
                    detail = (f"decoder poisoned after tampered record: "
                              f"retransmission raised {type(exc2).__name__}")
                else:
                    if [payload for _, payload in recovered] != payloads[1:3]:
                        detail = "retransmitted records decoded incorrectly"
        except Exception as exc:  # noqa: BLE001 - oracle boundary
            detail = (f"tampered batch raised {type(exc).__name__}, "
                      f"want BatchRecordError")
        else:
            detail = "tampered batch accepted"
        results.append(_result(
            "record-batch", f"{suite.name}-transactional", detail))
    return results


def stream_suite_oracle() -> List[CheckResult]:
    """The lightweight-stream-suite contract, across every stream suite.

    Stream suites carry decoder state beyond sequence numbers — the
    keystream position — so they get their own oracle on top of the
    generic record oracles:

    * **three-way agreement** — one ``encode_batch`` call, N sequential
      single-record ``encode`` calls, and a mixed-dispatch-path
      sequence (records alternately fast/reference encoded) must all
      produce byte-identical wire bytes, and each must decode on the
      opposite arrangement: the keystream position advances identically
      whichever API or kernel produced a record;
    * **tamper rejection** with the transactional keystream pin —
      after a damaged mid-stream record raises
      :class:`~repro.protocols.alerts.BadRecordMAC`, a retransmission
      of the *genuine* record must decode, which is only possible if
      the failed attempt rolled the keystream position back exactly;
    * **WTLS damaged-datagram continuation** — with ``skip_damaged``,
      records after a damaged one must still open (the per-record
      ``key XOR sequence`` rekey localises the damage).
    """
    from ..protocols.records_batch import BatchRecordError

    results = []
    stream_suites = [suite for suite in ALL_SUITES
                     if suite.cipher_kind == "stream" and suite.cipher != "NULL"]
    payloads = [_material(f"stream-payload-{i}", n)
                for i, n in enumerate((3, 96, 1, 257))]
    for suite in stream_suites:
        # Three-way agreement: batch == sequential == mixed-path.
        (tls_seq_enc, _), _ = _record_pairs(suite, "stream-3way")
        (tls_batch_enc, _), _ = _record_pairs(suite, "stream-3way")
        (tls_mixed_enc, tls_mixed_dec), _ = _record_pairs(
            suite, "stream-3way")
        with fastpath.force(True):
            sequential = [tls_seq_enc.encode(CONTENT_APPLICATION, payload)
                          for payload in payloads]
            batch = tls_batch_enc.encode_batch(
                [(CONTENT_APPLICATION, payload) for payload in payloads])
        mixed = []
        for i, payload in enumerate(payloads):
            with fastpath.force(i % 2 == 0):
                mixed.append(tls_mixed_enc.encode(CONTENT_APPLICATION,
                                                  payload))
        detail = ""
        if batch != b"".join(sequential):
            detail = "batch encode diverges from sequential encode"
        elif mixed != sequential:
            detail = "mixed-path encode diverges from single-path encode"
        else:
            opened = []
            for i, record in enumerate(sequential):
                with fastpath.force(i % 2 == 1):  # opposite arrangement
                    opened.append(tls_mixed_dec.decode(record)[1])
            if opened != payloads:
                detail = "mixed-path decode corrupted a payload"
        results.append(_result(
            "stream-suite", f"{suite.name}-three-way", detail))

        # Transactional keystream rollback, single-record path: a
        # tampered record must not consume keystream.
        (tls_enc, tls_dec), _ = _record_pairs(suite, "stream-rollback")
        records = [tls_enc.encode(CONTENT_APPLICATION, payload)
                   for payload in payloads]
        tls_dec.decode(records[0])
        tampered = bytearray(records[1])
        tampered[len(tampered) // 2] ^= 0x80
        detail = ""
        for attempt in range(2):  # two failed attempts, then recovery
            try:
                tls_dec.decode(bytes(tampered))
            except BadRecordMAC:
                pass
            except Exception as exc:  # noqa: BLE001 - oracle boundary
                detail = (f"tamper attempt {attempt} raised "
                          f"{type(exc).__name__}, want BadRecordMAC")
                break
            else:
                detail = f"tampered record accepted on attempt {attempt}"
                break
        if not detail:
            try:
                opened = [tls_dec.decode(record)[1]
                          for record in records[1:]]
            except Exception as exc:  # noqa: BLE001 - oracle boundary
                detail = (f"keystream not rolled back: genuine record "
                          f"raised {type(exc).__name__} after tampering")
            else:
                if opened != payloads[1:]:
                    detail = ("keystream position drifted: genuine "
                              "records decoded to wrong plaintext")
        results.append(_result(
            "stream-suite", f"{suite.name}-keystream-rollback", detail))

        # Batched path: the damaged record pins its index and leaves
        # the decoder able to accept the retransmission.
        (tls_enc, tls_dec), (wtls_enc, wtls_dec) = _record_pairs(
            suite, "stream-batch-damage")
        records = [tls_enc.encode(CONTENT_APPLICATION, payload)
                   for payload in payloads[:3]]
        damaged_middle = bytearray(records[1])
        damaged_middle[-1] ^= 0x04
        detail = ""
        try:
            tls_dec.decode_batch(
                records[0] + bytes(damaged_middle) + records[2])
        except BatchRecordError as exc:
            if exc.index != 1:
                detail = f"damage flagged at index {exc.index}, want 1"
            else:
                try:
                    recovered = [tls_dec.decode(record)[1]
                                 for record in records[1:]]
                except Exception as exc2:  # noqa: BLE001 - oracle boundary
                    detail = (f"batched damage poisoned keystream: "
                              f"{type(exc2).__name__}")
                else:
                    if recovered != payloads[1:3]:
                        detail = "post-damage retransmission decoded wrong"
        else:
            detail = "damaged batch accepted"
        results.append(_result(
            "stream-suite", f"{suite.name}-batch-damage", detail))

        # WTLS datagram discipline: damage is localised per record.
        wire = [wtls_enc.encode(payload) for payload in payloads]
        damaged_middle = bytearray(wire[2])
        damaged_middle[-1] ^= 0x40
        opened, damaged = wtls_dec.decode_batch(
            wire[0] + wire[1] + bytes(damaged_middle) + wire[3],
            skip_damaged=True)
        detail = ""
        if [payload for _, payload in opened] != [
                payloads[0], payloads[1], payloads[3]]:
            detail = "WTLS records after the damaged one did not open"
        elif len(damaged) != 1:
            detail = f"{len(damaged)} records flagged damaged, want 1"
        results.append(_result(
            "stream-suite", f"{suite.name}-wtls-damage", detail))
    return results


#: The oracle registry the runner iterates, in report order.
ORACLES: Dict[str, Callable[[], List[CheckResult]]] = {
    "hash-vs-hashlib": hash_oracle,
    "hmac-vs-stdlib": hmac_oracle,
    "cipher-roundtrip": roundtrip_oracle,
    "record-agreement": record_layer_oracle,
    "record-batch": record_batch_oracle,
    "stream-suite": stream_suite_oracle,
}


def run_oracles() -> List[CheckResult]:
    """Run every registered oracle; deterministic result order."""
    results: List[CheckResult] = []
    for name in sorted(ORACLES):
        results.extend(ORACLES[name]())
    return results
