"""The conformance runner: one call, one deterministic report.

Glues the four planes together — official vectors on both dispatch
paths, differential/property oracles, the exhaustive state-machine
check, the seeded fuzz campaign, and the replay of the committed
regression corpus — and renders a byte-stable text report (sorted
iteration everywhere, no wall-clock content), so CI can run it twice
with the same seed and ``cmp`` the outputs, the same discipline the
telemetry job uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .fuzzcorpus import (
    FuzzReport,
    default_targets,
    load_regressions,
    replay_regression,
    run_fuzz,
)
from .statemachine import StateMachineReport, check_model
from .vectors import CheckResult, load_corpus, run_vectors
from .oracles import run_oracles


@dataclass
class ConformanceReport:
    """Everything one conformance run observed."""

    seed: int
    vector_results: List[CheckResult]
    oracle_results: List[CheckResult]
    statemachine: StateMachineReport
    fuzz: FuzzReport
    regressions: List[Tuple[str, Optional[str]]]  # (file label, escape)

    @property
    def ok(self) -> bool:
        """True when every plane is green."""
        return (all(r.ok for r in self.vector_results)
                and all(r.ok for r in self.oracle_results)
                and self.statemachine.ok
                and self.fuzz.ok
                and all(escape is None for _, escape in self.regressions))


def run_conformance(seed: int = 2003, fuzz_iterations: int = 150,
                    statemachine_depth: int = 4) -> ConformanceReport:
    """Run every conformance plane with one seed."""
    targets = default_targets()
    regressions = []
    for record in load_regressions():
        label = f"{record['target']}:{record['blob'][:16]}"
        regressions.append((label, replay_regression(record, targets)))
    return ConformanceReport(
        seed=seed,
        vector_results=run_vectors(load_corpus()),
        oracle_results=run_oracles(),
        statemachine=check_model(depth=statemachine_depth),
        fuzz=run_fuzz(seed=seed, iterations=fuzz_iterations,
                      targets=targets),
        regressions=regressions,
    )


def _summarize(results: List[CheckResult]) -> List[str]:
    lines = []
    by_file: dict = {}
    for result in results:
        by_file.setdefault(result.file, []).append(result)
    for name in sorted(by_file):
        rows = by_file[name]
        failures = [r for r in rows if not r.ok]
        status = "ok" if not failures else f"{len(failures)} FAILED"
        lines.append(f"  {name:<24} {len(rows):>4} checks  {status}")
        for failure in failures:
            lines.append(f"    FAIL {failure.vector_id} [{failure.path}]: "
                         f"{failure.detail}")
    return lines


def format_report(report: ConformanceReport) -> str:
    """Render the deterministic text report (byte-stable per seed)."""
    corpus = load_corpus()
    lines = []
    lines.append("=" * 20 + f" conformance report (seed {report.seed}) "
                 + "=" * 20)
    lines.append(f"corpus: {len(corpus.files)} files, "
                 f"{corpus.vector_count} official vectors")
    lines.append("")
    lines.append("-- official vectors (both dispatch paths) " + "-" * 20)
    lines.extend(_summarize(report.vector_results))
    lines.append("")
    lines.append("-- differential / property oracles " + "-" * 27)
    lines.extend(_summarize(report.oracle_results))
    lines.append("")
    lines.append("-- handshake state machine " + "-" * 35)
    sm = report.statemachine
    lines.append(f"  depth {sm.depth}: {sm.sequences} sequences, "
                 f"{sm.steps} steps, {sm.alerts} alerts, "
                 f"{sm.transitions_covered} transitions covered")
    for mismatch in sm.mismatches:
        lines.append(f"    MISMATCH at {mismatch.sequence!r} step "
                     f"{mismatch.step}: ({mismatch.state}, "
                     f"{mismatch.symbol}) expected {mismatch.expected}, "
                     f"observed {mismatch.observed}")
    lines.append("")
    lines.append("-- seeded wire-format fuzzing " + "-" * 32)
    fuzz = report.fuzz
    lines.append(f"  {fuzz.iterations} iterations x "
                 f"{len(default_targets())} targets: "
                 f"{fuzz.executions} executions, {fuzz.accepted} accepted, "
                 f"{fuzz.rejections} cleanly rejected, "
                 f"{len(fuzz.crashers)} contract escapes")
    for crash in fuzz.crashers:
        lines.append(f"    CRASH {crash.target}: {crash.error} "
                     f"(blob {crash.blob.hex()})")
    lines.append("")
    lines.append("-- regression corpus replay " + "-" * 34)
    if not report.regressions:
        lines.append("  (no committed regression vectors)")
    for label, escape in report.regressions:
        status = "ok" if escape is None else f"REGRESSED: {escape}"
        lines.append(f"  {label:<42} {status}")
    lines.append("")
    lines.append(f"RESULT: {'PASS' if report.ok else 'FAIL'}")
    return "\n".join(lines) + "\n"
