"""Declarative test-vector registry backed by the JSON corpus.

The paper's core claim (§2–§3.1) is that a mobile appliance must run
*the same* algorithms as the wired Internet — interoperability is the
security property.  This module is the proof obligation: every named
primitive is pinned against its official published vectors (FIPS 197
Appendix C, the FIPS 46-3 validation set, RFC 6229 RC4 keystreams,
RFC 2268 RC2, RFC 1321 MD5, FIPS 180-1/RFC 3174 SHA-1, RFC 2202 HMAC,
plus frozen RSA/DH known pairs), and every vector is executed through
**both** dispatch paths — the readable reference loops and the
precomputed fast-path kernels (:mod:`repro.crypto.fastpath`) — so the
accelerated implementation can never silently diverge from the one the
tests were written against.

Corpus layout: one JSON file per source document under
``tests/vectors/``, each ``{source, algorithm, kind, vectors: [...]}``
with hex-encoded fields.  ``kind`` selects the runner: ``block``,
``stream``, ``hash``, ``hmac``, or ``asymmetric``.  Vectors flagged
``fast_only`` (the million-'a' digests) are skipped on the reference
path to keep wall clock bounded.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from ..crypto import fastpath
from ..crypto.a51 import A51
from ..crypto.aes import AES
from ..crypto.des import DES
from ..crypto.grain import Grain
from ..crypto.hmac import hmac
from ..crypto.md5 import md5
from ..crypto.modmath import modexp, modexp_ladder, modexp_sqm
from ..crypto.rc2 import RC2
from ..crypto.rc4 import RC4
from ..crypto.rsa import RSAPrivateKey, RSAPublicKey
from ..crypto.sha1 import sha1
from ..crypto.trivium import Trivium

#: Default corpus location: ``<repo>/tests/vectors``.
CORPUS_DIR = Path(__file__).resolve().parents[3] / "tests" / "vectors"

#: Dispatch paths every (non-``fast_only``) vector runs through.
PATHS = ("fast", "reference")

_CACHE: Dict[str, "VectorCorpus"] = {}


@dataclass(frozen=True)
class VectorFile:
    """One corpus file: a source document and its vectors."""

    name: str
    source: str
    algorithm: str
    kind: str
    vectors: tuple


@dataclass(frozen=True)
class VectorCorpus:
    """The loaded corpus: corpus files keyed by stem name."""

    directory: str
    files: Dict[str, VectorFile]

    @property
    def vector_count(self) -> int:
        """Total vectors across all files."""
        return sum(len(f.vectors) for f in self.files.values())


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one vector on one dispatch path."""

    file: str
    vector_id: str
    path: str
    ok: bool
    detail: str = ""


def load_corpus(directory: Optional[Path] = None) -> VectorCorpus:
    """Load (and cache, per directory) every JSON corpus file.

    The cache makes the session-scoped pytest fixture free after the
    first test touches it — the corpus is parsed from disk exactly once
    per process.
    """
    path = Path(directory) if directory is not None else CORPUS_DIR
    key = str(path.resolve())
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    files: Dict[str, VectorFile] = {}
    for json_path in sorted(path.glob("*.json")):
        raw = json.loads(json_path.read_text())
        files[json_path.stem] = VectorFile(
            name=json_path.stem,
            source=raw["source"],
            algorithm=raw["algorithm"],
            kind=raw["kind"],
            vectors=tuple(raw["vectors"]),
        )
    corpus = VectorCorpus(directory=key, files=files)
    _CACHE[key] = corpus
    return corpus


def clear_cache() -> None:
    """Drop the corpus cache (tests that point at scratch dirs)."""
    _CACHE.clear()


# ---------------------------------------------------------------------------
# Per-kind vector runners.  Each returns a failure detail string or ""
# for success; they never raise for a mismatch (the report carries it).
# ---------------------------------------------------------------------------


def _block_ciphers(vector: dict, algorithm: str):
    key = bytes.fromhex(vector["key"])
    if algorithm == "AES":
        return AES(key)
    if algorithm == "DES":
        return DES(key)
    if algorithm == "RC2":
        return RC2(key, effective_bits=vector.get("effective_bits", 0))
    raise ValueError(f"unknown block algorithm {algorithm!r}")


def _check_block(vector: dict, algorithm: str) -> str:
    cipher = _block_ciphers(vector, algorithm)
    plaintext = bytes.fromhex(vector["plaintext"])
    ciphertext = bytes.fromhex(vector["ciphertext"])
    got = cipher.encrypt_block(plaintext)
    if got != ciphertext:
        return f"encrypt: got {got.hex()}, want {ciphertext.hex()}"
    back = cipher.decrypt_block(ciphertext)
    if back != plaintext:
        return f"decrypt: got {back.hex()}, want {plaintext.hex()}"
    return ""


_STREAM_FACTORIES = {
    "RC4": RC4, "A51": A51, "GRAIN": Grain, "TRIVIUM": Trivium,
}


def _check_stream(vector: dict, algorithm: str) -> str:
    try:
        factory = _STREAM_FACTORIES[algorithm]
    except KeyError:
        raise ValueError(f"unknown stream algorithm {algorithm!r}") from None
    key = bytes.fromhex(vector["key"])
    if "a_to_b" in vector:
        # The A5/1 GSM frame discipline: 228-bit dual burst for one
        # (key, frame) pair — the published pedagogical vector's shape.
        a_to_b, b_to_a = A51.burst(key, int(vector["frame"], 16))
        expected_ab = bytes.fromhex(vector["a_to_b"])
        expected_ba = bytes.fromhex(vector["b_to_a"])
        if a_to_b != expected_ab:
            return f"a_to_b: got {a_to_b.hex()}, want {expected_ab.hex()}"
        if b_to_a != expected_ba:
            return f"b_to_a: got {b_to_a.hex()}, want {expected_ba.hex()}"
        return ""
    if "keystream" in vector:
        offset = vector.get("offset", 0)
        expected = bytes.fromhex(vector["keystream"])
        got = factory(key).keystream(offset + len(expected))[offset:]
        if got != expected:
            return (f"keystream@{offset}: got {got.hex()}, "
                    f"want {expected.hex()}")
        return ""
    plaintext = bytes.fromhex(vector["plaintext"])
    ciphertext = bytes.fromhex(vector["ciphertext"])
    got = factory(key).process(plaintext)
    if got != ciphertext:
        return f"encrypt: got {got.hex()}, want {ciphertext.hex()}"
    back = factory(key).process(ciphertext)
    if back != plaintext:
        return f"decrypt: got {back.hex()}, want {plaintext.hex()}"
    return ""


def _hash_message(vector: dict) -> bytes:
    return bytes.fromhex(vector["message"]) * vector.get("repeat", 1)


def _check_hash(vector: dict, algorithm: str) -> str:
    func = {"MD5": md5, "SHA1": sha1}[algorithm]
    got = func(_hash_message(vector))
    expected = bytes.fromhex(vector["digest"])
    if got != expected:
        return f"digest: got {got.hex()}, want {expected.hex()}"
    return ""


def _check_hmac(vector: dict, algorithm: str) -> str:
    from ..crypto.md5 import MD5
    from ..crypto.sha1 import SHA1

    factory = {"MD5": MD5, "SHA1": SHA1}[vector["hash"]]
    got = hmac(bytes.fromhex(vector["key"]),
               bytes.fromhex(vector["message"]), factory)
    expected = bytes.fromhex(vector["digest"])
    if got != expected:
        return f"hmac: got {got.hex()}, want {expected.hex()}"
    return ""


def _check_rsa(vector: dict) -> str:
    n = int(vector["n"], 16)
    e = int(vector["e"], 16)
    message = bytes.fromhex(vector["message"])
    signature = bytes.fromhex(vector["signature"])
    public = RSAPublicKey(n, e)
    try:
        public.verify(message, signature)
    except Exception as exc:  # mismatch is data, not control flow
        return f"frozen signature rejected: {exc}"
    private = RSAPrivateKey(
        n=n, e=e, d=int(vector["d"], 16),
        p=int(vector["p"], 16), q=int(vector["q"], 16),
    )
    got = private.sign(message)
    if got != signature:
        return f"sign: got {got.hex()}, want {signature.hex()}"
    # Independent arithmetic cross-check: the library's modexp ladder
    # family must agree with the builtin pow on the frozen pair.
    sig_int = int(vector["signature"], 16)
    if modexp(sig_int, e, n) != pow(sig_int, e, n):
        return "modexp disagrees with builtin pow"
    return ""


def _check_dh(vector: dict) -> str:
    p = int(vector["p"], 16)
    g = vector["g"]
    xa = int(vector["xa"], 16)
    xb = int(vector["xb"], 16)
    ya = int(vector["ya"], 16)
    yb = int(vector["yb"], 16)
    shared = int(vector["shared"], 16)
    if modexp(g, xa, p) != ya:
        return "ya mismatch"
    if modexp(g, xb, p) != yb:
        return "yb mismatch"
    if modexp(yb, xa, p) != shared:
        return "shared secret mismatch (A side)"
    if modexp(ya, xb, p) != shared:
        return "shared secret mismatch (B side)"
    # The side-channel-instrumented exponentiation variants must
    # compute the same value as the production modexp.
    small_p = 0xFFFFFFFB  # keep the per-bit instrumented loops cheap
    base, exponent = ya % small_p, xa & 0xFFFF
    want = pow(base, exponent, small_p)
    for variant in (modexp_sqm, modexp_ladder):
        if variant(base, exponent, small_p) != want:
            return f"{variant.__name__} disagrees with builtin pow"
    return ""


def _check_asymmetric(vector: dict) -> str:
    if vector["type"] == "rsa":
        return _check_rsa(vector)
    if vector["type"] == "dh":
        return _check_dh(vector)
    return f"unknown asymmetric vector type {vector['type']!r}"


_RUNNERS = {
    "block": _check_block,
    "stream": _check_stream,
    "hash": _check_hash,
    "hmac": _check_hmac,
}


def check_vector(file: VectorFile, vector: dict, path: str) -> CheckResult:
    """Run one vector on one dispatch path; never raises on mismatch."""
    with fastpath.force(path == "fast"):
        try:
            if file.kind == "asymmetric":
                detail = _check_asymmetric(vector)
            else:
                detail = _RUNNERS[file.kind](vector, file.algorithm)
        except Exception as exc:  # corpus bug or implementation crash
            detail = f"raised {type(exc).__name__}: {exc}"
    return CheckResult(
        file=file.name, vector_id=vector["id"], path=path,
        ok=detail == "", detail=detail,
    )


def run_vectors(corpus: Optional[VectorCorpus] = None) -> List[CheckResult]:
    """Run the whole corpus through both dispatch paths.

    ``fast_only`` vectors (bulk digests) run only on the fast path.
    Results come back in deterministic (file, vector, path) order.
    """
    corpus = corpus if corpus is not None else load_corpus()
    results: List[CheckResult] = []
    for name in sorted(corpus.files):
        file = corpus.files[name]
        for vector in file.vectors:
            paths = ("fast",) if vector.get("fast_only") else PATHS
            for path in paths:
                results.append(check_vector(file, vector, path))
    return results
