"""Side-channel laboratory: mount the §3.4 attacks, then defend.

Runs the paper's three headline implementation attacks against this
library's own instrumented crypto and shows each paired countermeasure
winning:

1. Kocher/Dhem timing attack on square-and-multiply RSA
   -> defeated by base blinding;
2. CPA (correlation power analysis) on AES round 1
   -> defeated by first-order masking;
3. Bellcore fault attack on RSA-CRT signatures
   -> defeated by result verification.

Run:  python examples/side_channel_lab.py   (~15 s, all deterministic)
"""

from repro.attacks.countermeasures import BlindedRSA, verified_crt_sign
from repro.attacks.fault import FaultInjector, bellcore_attack
from repro.attacks.power import MaskedAES, acquire_aes_traces, cpa_attack_aes
from repro.attacks.timing import TimingAttack, measure_sqm, rsa_verifier
from repro.crypto.errors import SignatureError
from repro.crypto.modmath import OperationTimer
from repro.crypto.primes import generate_prime
from repro.crypto.rng import DeterministicDRBG
from repro.crypto.rsa import RSAPrivateKey, generate_keypair


def timing_attack_demo() -> None:
    print("== 1. timing attack on RSA square-and-multiply ==")
    rng = DeterministicDRBG(77)
    p, q = generate_prime(32, rng), generate_prime(32, rng)
    n = p * q
    d = rng.randrange(1 << 47, 1 << 48)
    probe = (12345 % n, pow(12345, d, n))

    naive = TimingAttack(n, lambda base: measure_sqm(base, d, n),
                         rsa_verifier(n, 65537, probe))
    result = naive.run(exponent_bits=48, samples=800)
    print(f"  naive implementation: recovered d? {result.succeeded} "
          f"(retries={result.retries_used})")
    assert result.recovered_exponent == d

    key = RSAPrivateKey(n=n, e=65537, d=d, p=p, q=q)
    blinded = BlindedRSA(key, DeterministicDRBG("lab-blind"))

    def blinded_oracle(base: int) -> float:
        timer = OperationTimer()
        blinded.decrypt_raw(base, timer=timer)
        return float(timer.total)

    defended = TimingAttack(n, blinded_oracle,
                            rsa_verifier(n, 65537, probe))
    result = defended.run(exponent_bits=48, samples=800, max_retries=4)
    print(f"  with base blinding:   recovered d? {result.succeeded}")
    assert not result.succeeded


def power_attack_demo() -> None:
    print("== 2. correlation power analysis on AES ==")
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    naive = cpa_attack_aes(acquire_aes_traces(key, 150, seed=1))
    print(f"  unprotected AES: key recovered? {naive.key == key} "
          f"(min |r| = {min(naive.correlations):.2f})")
    assert naive.key == key

    masked = cpa_attack_aes(
        acquire_aes_traces(key, 150, seed=1, cipher_factory=MaskedAES))
    correct_bytes = sum(a == b for a, b in zip(masked.key, key))
    print(f"  first-order masked: key recovered? {masked.key == key} "
          f"({correct_bytes}/16 bytes by chance)")
    assert masked.key != key


def fault_attack_demo() -> None:
    print("== 3. Bellcore fault attack on RSA-CRT ==")
    key = generate_keypair(512, DeterministicDRBG("lab-rsa"))
    message = b"sign this purchase order"

    faulty = key.sign(message, use_crt=True,
                      fault_hook=FaultInjector(target="p", seed=1))
    factors = bellcore_attack(key.public, message, faulty)
    print(f"  one glitched signature factors n? {factors is not None}")
    assert factors is not None and factors[0] * factors[1] == key.n

    try:
        verified_crt_sign(key, message, fault_hook=FaultInjector(seed=2))
        outcome = "signature leaked!"
    except SignatureError:
        outcome = "faulty signature withheld"
    print(f"  with CRT verification: {outcome}")


def main() -> None:
    timing_attack_demo()
    power_attack_demo()
    fault_attack_demo()
    print("\nall three attacks succeed naive, all three countermeasures hold.")


if __name__ == "__main__":
    main()
