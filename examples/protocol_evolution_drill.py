"""Protocol-evolution drill: surviving the Figure 2 churn in the field.

Section 3.1's challenge is that security standards change under a
deployed handset: new algorithms (TLS adds AES, June 2002), new
protocols, withdrawn ciphers.  This drill walks one device through
three years of churn using every flexibility mechanism the library
implements:

1. **registry rollout** — AES arrives by firmware update and becomes
   negotiable immediately;
2. **engine reprogramming** — the MOSES-style microcoded engine loads
   a program for a brand-new packet format, no silicon change;
3. **session resumption** — the deployed fix when the RSA handshake
   outgrows a latency budget;
4. **suite deprecation** — RC2 is retired and negotiation stops
   offering it.

Run:  python examples/protocol_evolution_drill.py
"""

from repro.crypto.registry import aes_rollout, default_registry
from repro.crypto.rng import DeterministicDRBG
from repro.hardware.cycles import handshake_cost, handshake_mips_demand
from repro.hardware.engine_program import (
    EngineContext,
    Instruction,
    Microprogram,
    stock_engine,
)
from repro.hardware.processors import STRONGARM_SA1100
from repro.protocols.certificates import CertificateAuthority
from repro.protocols.ciphersuites import suites_for_registry
from repro.protocols.handshake import ClientConfig, ServerConfig
from repro.protocols.resumption import (
    CachedSession,
    SessionCache,
    cache_session,
    resume,
)
from repro.protocols.tls import connect


def main() -> None:
    registry = default_registry()
    print("== 2001: device ships ==")
    names = [suite.name for suite in suites_for_registry(registry)]
    print(f"negotiable suites ({len(names)}): {', '.join(sorted(names))}")

    print("\n== June 2002: TLS adds AES (Figure 2's event) ==")
    aes_rollout(registry)
    after = {suite.name for suite in suites_for_registry(registry)}
    print(f"firmware update registers AES -> "
          f"{sorted(after - set(names))} now negotiable")

    ca = CertificateAuthority("DrillCA", DeterministicDRBG("drill-ca"))
    server_key, server_cert = ca.issue(
        "service.example", DeterministicDRBG("drill-srv"))
    aes_suites = [suite for suite in suites_for_registry(registry)
                  if suite.cipher == "AES"]
    client = ClientConfig(rng=DeterministicDRBG("drill-c"), ca=ca,
                          suites=aes_suites)
    server = ServerConfig(rng=DeterministicDRBG("drill-s"),
                          certificate=server_cert, private_key=server_key)
    conn_c, conn_s = connect(client, server)
    conn_c.send(b"first AES-protected message")
    conn_s.receive()
    print(f"negotiated: {conn_c.suite_name}")

    print("\n== 2003: a new packet format needs engine support ==")
    engine = stock_engine()
    new_program = Microprogram(
        name="newfmt-2003",
        description="hypothetical post-WEP link format: CRC + emit",
        instructions=(Instruction("crc_append"), Instruction("emit")),
    )
    engine.load_program(new_program)
    report = engine.run("newfmt-2003", EngineContext(payload=b"frame"))
    print(f"engine reprogrammed in the field: program "
          f"{report.program!r} runs in {report.cycles:.0f} cycles "
          f"({report.time_s * 1e6:.2f} us)")

    print("\n== latency budget tightens to 0.1 s ==")
    full_demand = handshake_mips_demand(0.1)
    resumed_demand = handshake_cost(resumed=True).total_mi / 0.1
    print(f"full handshake at 0.1 s: {full_demand:.0f} MIPS "
          f"(SA-1100 has {STRONGARM_SA1100.mips:.0f}) -> infeasible")
    print(f"resumed handshake at 0.1 s: {resumed_demand:.0f} MIPS "
          f"-> feasible")
    client_cache, server_cache = SessionCache(), SessionCache()
    session_id = cache_session(client_cache, conn_c.session,
                               DeterministicDRBG("drill-sid"))
    server_cache.store(CachedSession(
        session_id=session_id, suite_name=conn_s.session.suite.name,
        master=conn_s.session.master))
    resumed_c, _ = resume(client, server, client_cache, server_cache,
                          session_id)
    print(f"abbreviated handshake completed in "
          f"{resumed_c.handshake_messages} messages (full: "
          f"{conn_c.session.handshake_messages})")

    print("\n== RC2 is retired ==")
    registry.deprecate("RC2")
    remaining = [
        suite.name for suite in suites_for_registry(registry)
        if not registry.get(suite.cipher).deprecated
    ]
    print(f"negotiable after deprecations: {len(remaining)} suites, "
          f"RC2 gone: {all('RC2' not in name for name in remaining)}")


if __name__ == "__main__":
    main()
