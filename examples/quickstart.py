"""Quickstart: provision a secure mobile appliance and transact.

Walks the library's core loop in ~60 lines: factory-provision a
handset (keys, boot chain, enrolled user), boot it through measured
boot, unlock it biometrically, open a mini-TLS session to a server,
exchange application data, and watch the battery pay for it — the
paper's Figure 1 concerns exercised end to end.

Run:  python examples/quickstart.py
"""

from repro.core.appliance import provision_appliance
from repro.crypto.rng import DeterministicDRBG
from repro.protocols.certificates import CertificateAuthority
from repro.protocols.handshake import ServerConfig
from repro.protocols.tls import connect


def main() -> None:
    # A certificate authority both sides trust.
    ca = CertificateAuthority("QuickstartCA", DeterministicDRBG("qs-ca"))
    server_key, server_cert = ca.issue(
        "bank.example", DeterministicDRBG("qs-server"))

    # Factory-provision the appliance: vendor-signed boot chain, device
    # keys in the secure key store, owner's fingerprint enrolled.
    device = provision_appliance(device_id="demo-handset", seed=7, ca=ca)

    report = device.boot()
    print(f"measured boot: {report.stages_verified} "
          f"-> measurement {report.measurement.hex()[:16]}…")

    owner_sample = device._finger_simulator.read("owner")
    print(f"biometric unlock: {device.unlock('owner', owner_sample)}")

    # Open a mini-TLS session (suite negotiation, certificate check,
    # RSA key exchange, Finished binding) and transact.
    server = ServerConfig(rng=DeterministicDRBG("qs-srv-rng"),
                          certificate=server_cert, private_key=server_key)
    client_cfg = device.tls_client_config(ca, expected_server="bank.example")
    handset_conn, bank_conn = connect(client_cfg, server)
    print(f"negotiated suite: {handset_conn.suite_name}")

    handset_conn.send(b"BALANCE?")
    print(f"bank received:   {bank_conn.receive().decode()}")
    bank_conn.send(b"BALANCE 1234.56 EUR")
    print(f"handset received: {handset_conn.receive().decode()}")

    # Charge the workload to the hardware model (the Figure 4 path).
    before = device.platform.battery.remaining_j
    execution = device.run_secure_transaction(kilobytes=1.0)
    spent_mj = (before - device.platform.battery.remaining_j) * 1000.0
    print(f"one secure 1-KB transaction: {execution.time_s * 1000:.2f} ms "
          f"compute on {execution.engine}, {spent_mj:.1f} mJ total "
          f"(battery at {device.platform.battery.fraction_remaining:.4%})")


if __name__ == "__main__":
    main()
