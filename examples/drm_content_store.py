"""Content security (Figure 1's seventh concern): a DRM content store.

A provider packages a track, issues a 3-play no-copy license bound to
one handset, and the device's secure-world DRM agent enforces every
rule: plays are metered, export is refused, a tampered license is
rejected, and a second handset cannot use the first one's license.

Run:  python examples/drm_content_store.py
"""

from repro.core.drm import (
    ContentProvider,
    DRMAgent,
    License,
    LicenseInvalid,
    RightsViolation,
    UsageRules,
)
from repro.core.keystore import SecureKeyStore
from repro.crypto.rng import DeterministicDRBG
from repro.crypto.rsa import generate_keypair


def make_device(device_id: str, seed: str, provider_public):
    keystore = SecureKeyStore.provision(device_id)
    device_key = generate_keypair(512, DeterministicDRBG(seed))
    DRMAgent.provision_device_key(keystore, device_key)
    agent = DRMAgent(device_id=device_id, keystore=keystore,
                     provider_public=provider_public)
    return agent, device_key


def main() -> None:
    provider_key = generate_keypair(512, DeterministicDRBG("label-key"))
    provider = ContentProvider(signing_key=provider_key,
                               rng=DeterministicDRBG("label-rng"))

    track = provider.package("track-001", b"\x52\x49\x46\x46 fake audio " * 32)
    print(f"packaged {track.content_id}: "
          f"{len(track.ciphertext)} encrypted bytes")

    handset, handset_key = make_device("handset-A", "dev-a",
                                       provider_key.public)
    license_ = provider.issue_license(
        "track-001", "handset-A", handset_key.public,
        UsageRules(max_plays=3, allow_export=False))
    print(f"license issued to handset-A: 3 plays, no export")

    for play in range(1, 4):
        audio = handset.play(track, license_)
        print(f"  play {play}: {len(audio)} bytes decoded, "
              f"{handset.plays_remaining(license_)} plays left")

    try:
        handset.play(track, license_)
    except RightsViolation as exc:
        print(f"  play 4 refused: {exc}")

    try:
        handset.export_copy(track, license_)
    except RightsViolation as exc:
        print(f"  export refused: {exc}")

    # Attacker tampering: upgrade the play count in the signed license.
    forged = License(
        content_id=license_.content_id, device_id=license_.device_id,
        wrapped_content_key=license_.wrapped_content_key,
        rules=UsageRules(max_plays=999_999), signature=license_.signature)
    try:
        handset.play(track, forged)
    except LicenseInvalid as exc:
        print(f"  forged license rejected: {exc}")

    # A second device cannot use handset-A's license.
    other, _ = make_device("handset-B", "dev-b", provider_key.public)
    try:
        other.play(track, license_)
    except LicenseInvalid as exc:
        print(f"  handset-B rejected: {exc}")


if __name__ == "__main__":
    main()
