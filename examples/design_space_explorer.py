"""Design-space exploration: the §3.2/§3.3 sweeps a system architect runs.

Uses the calibrated cost models to answer the questions Figure 3 and
Figure 4 pose: which (data rate, latency) points can each processor
serve?  How much does each §4.2 architecture option buy?  How many
secure transactions does a battery fund, and how does that evolve?

Run:  python examples/design_space_explorer.py
"""

from repro.analysis.report import format_series, format_table
from repro.analysis.sweep import sweep
from repro.core.battery_life import battery_gap_series, figure4_report
from repro.core.gap import compute_surface, max_sustainable_rate_mbps
from repro.hardware.accelerators import architecture_ladder
from repro.hardware.processors import (
    ARM7,
    DRAGONBALL,
    PENTIUM4,
    STRONGARM_SA1100,
)
from repro.hardware.workloads import (
    BulkWorkload,
    HandshakeWorkload,
    SessionWorkload,
)


def processing_gap() -> None:
    print("== the wireless security processing gap (Figure 3) ==")
    surface = compute_surface()
    rows = []
    for processor in (DRAGONBALL, ARM7, STRONGARM_SA1100, PENTIUM4):
        rows.append((
            processor.name,
            processor.mips,
            f"{surface.feasible_fraction(processor):.0%}",
            f"{max_sustainable_rate_mbps(processor, 0.5):.2f}",
        ))
    print(format_table(
        ("processor", "MIPS", "feasible fraction",
         "max Mbps @0.5s setup"), rows))


def architecture_options() -> None:
    print("\n== what each architecture option buys (§4.2) ==")
    workload = SessionWorkload(
        handshake=HandshakeWorkload(),
        bulk=BulkWorkload(kilobytes=128.0, packets=100))
    baseline = None
    rows = []
    for engine in architecture_ladder(STRONGARM_SA1100):
        report = engine.execute(workload)
        baseline = baseline or report.time_s
        rows.append((
            engine.name,
            f"{report.time_s * 1000:.2f}",
            f"{report.energy_mj:.3f}",
            f"{baseline / report.time_s:.1f}x",
            f"{engine.flexibility:.1f}",
        ))
    print(format_table(
        ("option", "time_ms", "energy_mJ", "speedup", "flexibility"), rows))


def battery_planning() -> None:
    print("\n== battery planning (Figure 4 and the §3.3 trend) ==")
    report = figure4_report()
    print(f"plain transactions on 26 KJ:  {report.plain_transactions:,}")
    print(f"secure transactions on 26 KJ: {report.secure_transactions:,} "
          f"(ratio {report.ratio:.2f} -> less than half: "
          f"{report.less_than_half})")
    series = [(year, int(count))
              for year, count in battery_gap_series(years=6)]
    print(format_series(
        "secure transactions per charge, 6.5 %/yr battery growth vs "
        "25 %/yr workload growth", series, "year", "transactions"))


def suite_cost_sweep() -> None:
    print("\n== per-suite compute cost on the SA-1100 ==")
    from repro.hardware.accelerators import SoftwareEngine

    engine = SoftwareEngine(STRONGARM_SA1100)

    def cost(cipher: str, mac: str) -> float:
        workload = BulkWorkload(cipher=cipher, mac=mac, kilobytes=64.0)
        return engine.execute(workload).time_s * 1000.0

    result = sweep(cost, cipher=["RC4", "DES", "AES", "3DES"],
                   mac=["MD5", "SHA1"])
    rows = [(c, m, f"{t:.2f}") for c, m, t in result.rows]
    print(format_table(("cipher", "mac", "time_ms per 64KB"), rows))


def main() -> None:
    processing_gap()
    architecture_options()
    battery_planning()
    suite_cost_sweep()


if __name__ == "__main__":
    main()
