"""SET-style dual-signature payment — application-layer security (§2).

A cardholder buys through a merchant and a payment gateway.  The dual
signature lets each party verify its half of the transaction while
seeing only what it needs: the merchant never sees the card number,
the gateway never sees what was bought, and an arbiter can later prove
exactly what the cardholder authorised (non-repudiation — the §2
functionality transport-layer security cannot provide).

Run:  python examples/secure_payment.py
"""

from repro.crypto.rng import DeterministicDRBG
from repro.protocols.certificates import CertificateAuthority
from repro.protocols.payment import (
    Merchant,
    OrderInfo,
    PaymentError,
    PaymentGateway,
    PaymentInfo,
    create_payment,
    non_repudiation_evidence,
)


def main() -> None:
    ca = CertificateAuthority("PaymentsCA", DeterministicDRBG("pay-ca"))
    card_key, card_cert = ca.issue("alice.cardholder",
                                   DeterministicDRBG("pay-alice"))

    order = OrderInfo(merchant="music.example",
                      description="album: embedded beats",
                      amount_cents=1299, order_id="ORD-2003-07")
    payment = PaymentInfo(card_number="4111111111111111", expiry="12/05",
                          amount_cents=1299, order_id="ORD-2003-07")
    purchase = create_payment(order, payment, card_key, card_cert)
    print("cardholder created a dual-signed purchase request")

    merchant = Merchant(name="music.example", ca=ca)
    subject = merchant.process(purchase.merchant_view())
    print(f"merchant verified order from {subject} "
          f"(card number never seen)")

    gateway = PaymentGateway(ca=ca)
    code = gateway.process(purchase.gateway_view())
    print(f"gateway authorised payment, code {code} "
          f"(order contents never seen)")

    evidence = non_repudiation_evidence(purchase, ca)
    print(f"arbiter evidence: {evidence}")

    # A dishonest merchant inflates the amount and re-presents:
    inflated = OrderInfo(merchant="music.example",
                         description="album: embedded beats",
                         amount_cents=129_900, order_id="ORD-2003-07")
    try:
        merchant.process((inflated, purchase.payment_digest,
                          purchase.dual_signature,
                          purchase.cardholder_certificate))
    except PaymentError as exc:
        print(f"inflated order rejected: {exc}")


if __name__ == "__main__":
    main()
