"""M-commerce over the WAP architecture — and the WAP gap.

The paper's §2 scenario: a handset speaks WTLS to a WAP gateway, which
translates to TLS toward the origin server.  This example runs a
purchase through the full three-party stack, then *shows* the gap (the
gateway's plaintext log), then closes it with application-layer
encryption, reproducing the paper's conclusion that bearer/transport
security "needs to be complemented through the use of security
mechanisms at higher protocol layers".

Run:  python examples/wap_m_commerce.py
"""

from repro.crypto.aes import AES
from repro.crypto.modes import CBC
from repro.protocols.wap import build_wap_world


def main() -> None:
    print("== phase 1: plain WAP (WTLS to gateway, TLS to origin) ==")
    handset, gateway, _ = build_wap_world(
        seed=99, handler=lambda request: b"CONFIRMED:" + request)

    handset.send(b"BUY ringtone-42 CARD=4111111111111111")
    gateway.forward("origin.example")
    reply = handset.receive()
    print(f"handset got: {reply.decode()}")

    print("gateway plaintext log (the WAP gap!):")
    for item in gateway.plaintext_log:
        print(f"  - {item.decode()}")

    print("\n== phase 2: application-layer security closes the gap ==")
    end_to_end_key = bytes(range(16))  # shared with the origin (SET-style)

    def seal(data: bytes) -> bytes:
        return CBC(AES(end_to_end_key), bytes(16)).encrypt(data)

    def open_(blob: bytes) -> bytes:
        return CBC(AES(end_to_end_key), bytes(16)).decrypt(blob)

    def secure_origin(request: bytes) -> bytes:
        return seal(b"CONFIRMED:" + open_(request))

    handset2, gateway2, _ = build_wap_world(seed=100, handler=secure_origin)
    handset2.send(seal(b"BUY ringtone-42 CARD=4111111111111111"))
    gateway2.forward("origin.example")
    reply2 = open_(handset2.receive())
    print(f"handset got: {reply2.decode()}")

    leaked = any(b"4111111111111111" in item
                 for item in gateway2.plaintext_log)
    print(f"card number visible at gateway: {leaked}")
    assert not leaked


if __name__ == "__main__":
    main()
